"""Tests for decoupled interfaces, wire sorts, monitors, and pause buffers.

The centrepiece reproduces the paper's Figure 3: gating a producer's clock
while its ``valid`` is held high makes a naively-connected consumer see
spurious duplicate transactions; interposing the pause buffer removes the
hazard entirely.
"""

import pytest

from repro.errors import ElaborationError
from repro.interfaces import (
    REQUESTER,
    RESPONDER,
    DecoupledMonitor,
    WireSort,
    add_decoupled_sink,
    add_decoupled_source,
    classify_interface,
    composable,
    make_pause_buffer,
)
from repro.interfaces.decoupled import interfaces_of
from repro.interfaces.wire_sorts import pause_buffer_applicable
from repro.rtl import ModuleBuilder, Simulator, elaborate, mux
from repro.rtl.flatten import set_clock_map


def make_producer():
    """Sends an incrementing sequence number; valid is always high."""
    b = ModuleBuilder("producer")
    valid, ready, data = add_decoupled_source(b, "out", 8)
    seq = b.reg("seq", 8)
    fire = b.sig("out_ready")
    b.next(seq, mux(fire, seq + 1, seq))
    b.assign(valid, b.const(1, 1))
    b.assign(data, seq)
    return b.build()


def make_registered_consumer():
    """Registers ready (TO_SYNC): toggles ready every cycle."""
    b = ModuleBuilder("consumer")
    valid, ready, data = add_decoupled_sink(b, "in", 8)
    tog = b.reg("tog", 1)
    b.next(tog, ~tog)
    b.assign(ready, tog)
    b.output_expr("sink", mux(valid, data, b.const(0, 8)))
    return b.build()


def make_comb_consumer():
    """Combinational ready (TO_COMB): ready echoes valid."""
    b = ModuleBuilder("comb_consumer")
    valid, ready, data = add_decoupled_sink(b, "in", 8)
    b.assign(ready, valid)
    b.output_expr("sink", data)
    return b.build()


class TestDecoupledDeclarations:
    def test_source_declares_ports_and_metadata(self):
        module = make_producer()
        iface = interfaces_of(module)[0]
        assert iface.role == REQUESTER
        assert iface.signal_names() == ("out_valid", "out_ready", "out_data")
        assert module.ports["out_valid"].direction == "output"
        assert module.ports["out_ready"].direction == "input"

    def test_sink_declares_mirrored_directions(self):
        module = make_registered_consumer()
        iface = interfaces_of(module)[0]
        assert iface.role == RESPONDER
        assert module.ports["in_valid"].direction == "input"
        assert module.ports["in_ready"].direction == "output"

    def test_duplicate_interface_rejected(self):
        b = ModuleBuilder("m")
        add_decoupled_source(b, "ch", 8)
        with pytest.raises(ElaborationError):
            add_decoupled_source(b, "ch", 8)


class TestWireSorts:
    def test_registered_ready_is_to_sync(self):
        module = make_registered_consumer()
        sorts = classify_interface(module, interfaces_of(module)[0])
        assert sorts.forward is WireSort.TO_SYNC
        assert pause_buffer_applicable(sorts)

    def test_combinational_ready_is_to_comb(self):
        module = make_comb_consumer()
        sorts = classify_interface(module, interfaces_of(module)[0])
        assert sorts.forward is WireSort.TO_COMB
        assert not pause_buffer_applicable(sorts)

    def test_constant_valid_is_to_const(self):
        module = make_producer()
        sorts = classify_interface(module, interfaces_of(module)[0])
        assert sorts.forward is WireSort.TO_CONST

    def test_composability_rule(self):
        comb = classify_interface(
            make_comb_consumer(), interfaces_of(make_comb_consumer())[0])
        sync = classify_interface(
            make_registered_consumer(),
            interfaces_of(make_registered_consumer())[0])
        assert composable(sync, sync)
        assert composable(sync, comb)
        assert not composable(comb, comb)


class TestPauseBufferModule:
    def test_depth_below_two_rejected(self):
        with pytest.raises(ElaborationError):
            make_pause_buffer("pb", 8, depth=1)

    def make_sim(self, depth=2):
        sim = Simulator(elaborate(make_pause_buffer("pb", 8, depth=depth)))
        sim.poke("enq_live", 1)
        sim.poke("deq_live", 1)
        return sim

    def test_zero_latency_passthrough(self):
        """Property 3: empty buffer adds no latency."""
        sim = self.make_sim()
        sim.poke("enq_valid", 1)
        sim.poke("enq_data", 0x5A)
        sim.poke("deq_ready", 1)
        assert sim.peek("deq_valid") == 1
        assert sim.peek("deq_data") == 0x5A
        sim.step(1)
        # The item passed straight through: buffer still empty.
        assert sim.peek("count") == 0

    def test_buffers_when_consumer_stalls(self):
        sim = self.make_sim()
        sim.poke("enq_valid", 1)
        sim.poke("enq_data", 1)
        sim.poke("deq_ready", 0)
        sim.step(1)
        sim.poke("enq_data", 2)
        sim.step(1)
        assert sim.peek("count") == 2
        assert sim.peek("enq_ready") == 0  # full
        sim.poke("enq_valid", 0)
        sim.poke("deq_ready", 1)
        assert sim.peek("deq_data") == 1
        sim.step(1)
        assert sim.peek("deq_data") == 2
        sim.step(1)
        assert sim.peek("count") == 0

    def test_delivers_during_producer_pause(self):
        """Property 1: accepted transactions flow out while paused."""
        sim = self.make_sim()
        sim.poke("enq_valid", 1)
        sim.poke("enq_data", 7)
        sim.poke("deq_ready", 0)
        sim.step(1)  # buffer accepts the item
        sim.poke("enq_live", 0)  # producer pauses; its valid stays high
        sim.poke("deq_ready", 1)
        assert sim.peek("deq_valid") == 1
        assert sim.peek("deq_data") == 7
        sim.step(1)
        # Delivered exactly once; the frozen producer's valid must not
        # enqueue a second copy.
        assert sim.peek("count") == 0
        assert sim.peek("deq_valid") == 0

    def test_frozen_producer_makes_no_new_transactions(self):
        """Property 2: a paused requester's stuck valid is inert."""
        sim = self.make_sim()
        sim.poke("enq_valid", 1)
        sim.poke("enq_data", 9)
        sim.poke("enq_live", 0)
        sim.poke("deq_ready", 1)
        assert sim.peek("deq_valid") == 0
        sim.step(5)
        assert sim.peek("count") == 0

    def test_frozen_consumer_sees_transaction_restarted(self):
        """Property 2, consumer side: deq restarts after resume."""
        sim = self.make_sim()
        sim.poke("enq_valid", 1)
        sim.poke("enq_data", 3)
        sim.poke("deq_ready", 1)
        sim.poke("deq_live", 0)  # consumer frozen at the handshake cycle
        sim.step(1)
        assert sim.peek("count") == 1  # item waited in the buffer
        sim.poke("enq_valid", 0)
        sim.poke("deq_live", 1)
        assert sim.peek("deq_valid") == 1
        assert sim.peek("deq_data") == 3
        sim.step(1)
        assert sim.peek("count") == 0

    def test_deeper_buffer(self):
        sim = self.make_sim(depth=4)
        sim.poke("enq_valid", 1)
        sim.poke("deq_ready", 0)
        for index in range(4):
            sim.poke("enq_data", 10 + index)
            sim.step(1)
        assert sim.peek("enq_ready") == 0
        sim.poke("enq_valid", 0)
        sim.poke("deq_ready", 1)
        seen = []
        for _ in range(4):
            assert sim.peek("deq_valid") == 1
            seen.append(sim.peek("deq_data"))
            sim.step(1)
        assert seen == [10, 11, 12, 13]


def _build_direct_top():
    """Producer (gated domain) wired straight to the observation point."""
    producer = make_producer()
    b = ModuleBuilder("direct_top")
    ready = b.input("cons_ready", 1)
    refs = b.instantiate(producer, "prod", inputs={"out_ready": ready})
    b.output_expr("valid", refs["out_valid"])
    b.output_expr("data", refs["out_data"])
    top = b.build()
    set_clock_map(top.instances["prod"], {"clk": "mut_clk"})
    return elaborate(top)


def _build_buffered_top():
    """Producer behind a pause buffer; buffer runs on the free clock."""
    producer = make_producer()
    buffer = make_pause_buffer("pb", 8)
    b = ModuleBuilder("buffered_top")
    ready = b.input("cons_ready", 1)
    live = b.input("prod_live", 1)
    buf_refs = b.instantiate(buffer, "pb", inputs={
        "enq_valid": b.wire("prod_valid", 1),
        "enq_data": b.wire("prod_data", 8),
        "deq_ready": ready,
        "enq_live": live,
        "deq_live": b.const(1, 1),
    })
    b.instantiate(producer, "prod",
                  inputs={"out_ready": buf_refs["enq_ready"]},
                  outputs={"out_valid": "prod_valid",
                           "out_data": "prod_data"})
    b.output_expr("valid", buf_refs["deq_valid"])
    b.output_expr("data", buf_refs["deq_data"])
    top = b.build()
    set_clock_map(top.instances["prod"], {"clk": "mut_clk"})
    return elaborate(top)


class TestFigure3Hazard:
    """Reproduces the paper's Figure 3 and its fix."""

    def test_direct_connection_duplicates_on_pause(self):
        sim = Simulator(_build_direct_top(),
                        clocks={"clk": 1000, "mut_clk": 1000})
        monitor = DecoupledMonitor(
            sim, valid="valid", ready="cons_ready", data="data",
            domain="clk").attach()
        sim.poke("cons_ready", 1)
        sim.step(3)
        # Pause the producer exactly as in Figure 3: valid freezes high.
        sim.set_clock_gate("mut_clk", True)
        sim.step(4)
        sim.set_clock_gate("mut_clk", False)
        sim.step(3)
        data = monitor.transaction_data
        # The frozen producer's data was "accepted" repeatedly: duplicates.
        assert len(data) != len(set(data)), data

    def test_pause_buffer_removes_duplicates(self):
        sim = Simulator(_build_buffered_top(),
                        clocks={"clk": 1000, "mut_clk": 1000})
        monitor = DecoupledMonitor(
            sim, valid="valid", ready="cons_ready", data="data",
            domain="clk").attach()
        sim.poke("cons_ready", 1)
        sim.poke("prod_live", 1)
        sim.step(3)
        sim.set_clock_gate("mut_clk", True)
        sim.poke("prod_live", 0)
        sim.step(4)
        sim.set_clock_gate("mut_clk", False)
        sim.poke("prod_live", 1)
        sim.step(3)
        data = monitor.transaction_data
        assert data == sorted(set(data)), data
        assert monitor.ok()

    def test_buffered_stream_is_gapless_sequence(self):
        sim = Simulator(_build_buffered_top(),
                        clocks={"clk": 1000, "mut_clk": 1000})
        monitor = DecoupledMonitor(
            sim, valid="valid", ready="cons_ready", data="data",
            domain="clk").attach()
        sim.poke("cons_ready", 1)
        sim.poke("prod_live", 1)
        for pause_len in (1, 3, 2):
            sim.step(2)
            sim.set_clock_gate("mut_clk", True)
            sim.poke("prod_live", 0)
            sim.step(pause_len)
            sim.set_clock_gate("mut_clk", False)
            sim.poke("prod_live", 1)
        sim.step(2)
        data = monitor.transaction_data
        assert data == list(range(len(data)))


class TestMonitorChecks:
    def test_unstable_data_detected(self):
        b = ModuleBuilder("bad")
        count = b.reg("count", 8)
        b.next(count, count + 1)
        b.output_expr("valid", b.const(1, 1))
        b.output_expr("data", count)  # changes while stalled: violation
        top = b.build()
        sim = Simulator(elaborate(top))
        sim2 = Simulator(elaborate(_ready_low_wrapper(top)))
        monitor = DecoupledMonitor(
            sim2, valid="valid", ready="ready", data="data").attach()
        sim2.step(3)
        kinds = {v.kind for v in monitor.violations}
        assert "unstable-data" in kinds

    def test_irrevocable_drop_detected(self):
        b = ModuleBuilder("revoker")
        count = b.reg("count", 2)
        b.next(count, count + 1)
        b.output_expr("valid", count.eq(0))  # pulses, drops without ready
        b.output_expr("data", b.const(5, 8))
        top = b.build()
        sim = Simulator(elaborate(_ready_low_wrapper(top)))
        monitor = DecoupledMonitor(
            sim, valid="valid", ready="ready", data="data",
            irrevocable=True).attach()
        sim.step(4)
        kinds = {v.kind for v in monitor.violations}
        assert "revoked-valid" in kinds


def _ready_low_wrapper(inner):
    """Wrap a module adding a constant-low ready signal for monitors."""
    b = ModuleBuilder(f"{inner.name}_wrapped")
    refs = b.instantiate(inner, "u", inputs={})
    for port_name, ref in refs.items():
        b.output_expr(port_name, ref)
    b.output_expr("ready", b.const(0, 1))
    return b.build()
