"""Tests for the seeded RTL mutation engine.

The contract: every operator applied to every stock design yields a
netlist that still compiles and runs through the fused-codegen
simulator; the same ``(design, operator, site, seed)`` always rebuilds
the structurally identical mutant; a mutant never collides with its
parent in the plan cache (each operator must move
``Netlist.fingerprint()``, and the parent must not move at all); and
the seeded equivalence probe tells behavior-preserving mutants apart
from real bugs.
"""

import pytest

from repro.designs import (
    make_beehive_stack,
    make_cluster,
    make_cohort_soc,
    make_counter,
    make_serv_core,
)
from repro.errors import MutationError
from repro.rtl import (
    OPERATORS,
    ModuleBuilder,
    Simulator,
    apply_mutation,
    clear_plan_cache,
    default_stimulus,
    differential_probe,
    elaborate,
    enumerate_sites,
    generate_mutants,
    mux,
    set_plan_cache_dir,
)
from repro.rtl import plan_store

DESIGN_BUILDERS = {
    "counters": lambda: make_counter(width=8),
    "cohort": lambda: make_cohort_soc(with_bug=False),
    "serv": make_serv_core,
    "beehive": make_beehive_stack,
    "manycore": lambda: make_cluster(cores=2, imem_depth=64),
}


@pytest.fixture(scope="module")
def goldens():
    return {name: elaborate(build())
            for name, build in DESIGN_BUILDERS.items()}


def _exercise(netlist, cycles=8):
    """Build through fused codegen and run a few cycles with live
    inputs — the validity bar every mutant must clear."""
    sim = Simulator(netlist)
    widths = {name: netlist.signals[name] for name in netlist.inputs}
    for name, value in default_stimulus(widths, 1, 0, 0).items():
        sim.poke(name, value)
    sim.step(cycles)
    return sim


class TestOperatorValidity:
    @pytest.mark.parametrize("design", sorted(DESIGN_BUILDERS))
    def test_every_operator_compiles_on_every_design(self, goldens,
                                                     design):
        golden = goldens[design]
        sites = enumerate_sites(golden)
        assert any(sites.values()), f"no mutation sites on {design}"
        for operator in OPERATORS:
            pool = sites[operator]
            if not pool:
                continue  # inapplicable (e.g. mem_addr on counters)
            # First and last site bound the slot enumeration order.
            for site in {pool[0], pool[-1]}:
                mutant = apply_mutation(golden, site, seed=3)
                assert mutant is not golden
                _exercise(mutant)

    def test_memoryless_design_has_no_memory_sites(self, goldens):
        sites = enumerate_sites(goldens["counters"])
        assert sites["mem_addr"] == []
        with pytest.raises(MutationError):
            generate_mutants(goldens["counters"], "counters", 1, 7,
                             operators=("mem_addr",))

    def test_unknown_operator_rejected(self, goldens):
        with pytest.raises(MutationError):
            enumerate_sites(goldens["counters"], operators=("typo",))


class TestDeterminism:
    def test_corpus_is_reproducible(self, goldens):
        golden = goldens["cohort"]
        first = generate_mutants(golden, "cohort", 10, 7)
        second = generate_mutants(golden, "cohort", 10, 7)
        assert [m.mutant_id for m in first] == \
            [m.mutant_id for m in second]
        assert [m.netlist.fingerprint() for m in first] == \
            [m.netlist.fingerprint() for m in second]

    def test_mutant_id_encodes_identity(self, goldens):
        mutant = generate_mutants(goldens["cohort"], "cohort", 1, 7)[0]
        assert mutant.mutant_id == (
            f"cohort:{mutant.operator}:{mutant.site.key}:{mutant.seed}")
        rebuilt = apply_mutation(goldens["cohort"], mutant.site,
                                 mutant.seed)
        assert rebuilt.fingerprint() == mutant.netlist.fingerprint()

    def test_different_seeds_differ(self, goldens):
        a = generate_mutants(goldens["cohort"], "cohort", 5, 7)
        b = generate_mutants(goldens["cohort"], "cohort", 5, 8)
        assert [m.mutant_id for m in a] != [m.mutant_id for m in b]


class TestFingerprintSeparation:
    """Satellite: mutants must not collide with their parent in the
    plan cache — every operator moves the fingerprint, the parent's
    own fingerprint never moves."""

    def test_every_operator_moves_the_fingerprint(self, goldens):
        parents = {name: net.fingerprint()
                   for name, net in goldens.items()}
        for operator in OPERATORS:
            applied = False
            for name in sorted(goldens):
                golden = goldens[name]
                pool = enumerate_sites(golden, (operator,))[operator]
                if not pool:
                    continue
                applied = True
                mutant = apply_mutation(golden, pool[0], seed=3)
                assert mutant.fingerprint() != parents[name], \
                    f"{operator} collided with parent on {name}"
            assert applied, f"{operator} applies to no stock design"
        # ... and no parent was touched by any of them.
        for name, golden in goldens.items():
            assert golden.fingerprint() == parents[name]

    def test_clone_isolates_mutable_state(self, goldens):
        """The historical hazard: Register/Memory dataclasses shared
        between parent and derived netlists alias mutations back."""
        golden = goldens["cohort"]
        parent_fp = golden.fingerprint()
        clone = golden.clone()
        name, reg = next(iter(clone.registers.items()))
        reg.reset_value = (reg.reset_value or 0) ^ 1
        assert golden.registers[name].reset_value != reg.reset_value
        assert golden.fingerprint() == parent_fp
        assert clone.fingerprint() != parent_fp

    def test_parent_and_mutant_get_distinct_plan_entries(self, goldens,
                                                         tmp_path):
        saved = (plan_store._STORE, plan_store._RESOLVED)
        store = set_plan_cache_dir(tmp_path / "plans")
        clear_plan_cache()
        try:
            golden = goldens["counters"]
            mutant = generate_mutants(golden, "counters", 1, 7)[0]
            _exercise(golden)
            _exercise(mutant.netlist)
            fingerprints = {path.stem for path in
                            store.root.glob("*.plan")}
            assert golden.fingerprint() in fingerprints
            assert mutant.netlist.fingerprint() in fingerprints
            assert len(fingerprints) == 2
        finally:
            plan_store._STORE, plan_store._RESOLVED = saved
            clear_plan_cache()


class TestEquivalenceProbe:
    def _dead_arm_module(self):
        b = ModuleBuilder("deadarm")
        en = b.input("en", 1)
        count = b.reg("count", 8)
        # The false arm of the outer mux is unreachable: its constant
        # can be corrupted without changing behavior.
        b.next(count, mux(b.const(1, 1),
                          mux(en, count + 1, count),
                          count + 0x55))
        b.output_expr("out", count)
        return b.build()

    def test_probe_separates_equivalent_from_buggy(self):
        golden = elaborate(self._dead_arm_module())
        sites = enumerate_sites(golden)["const_replace"]
        verdicts = []
        for site in sites:
            mutant = apply_mutation(golden, site, seed=3)
            probe = differential_probe(golden, mutant, seed=7,
                                       cycles=128, lanes=4)
            verdicts.append(probe is not None)
        assert any(verdicts), "no site produced an observable bug"
        assert not all(verdicts), \
            "dead-arm mutation was wrongly flagged as divergent"

    def test_probe_reports_first_divergence(self, goldens):
        golden = goldens["counters"]
        mutant = generate_mutants(golden, "counters", 1, 7)[0]
        probe = differential_probe(golden, mutant.netlist, seed=7,
                                   cycles=64, lanes=4, exact=True)
        assert probe is not None
        assert probe.cycle >= 1
        assert probe.golden != probe.mutant
        again = differential_probe(golden, mutant.netlist, seed=7,
                                   cycles=64, lanes=4, exact=True)
        assert (probe.cycle, probe.lane, probe.signal) == \
            (again.cycle, again.lane, again.signal)
