"""Differential and lane-isolation tests for batched simulation.

The contract under test: every lane of a K-batched run is bit-identical
to a scalar run fed the same stimulus — across the paper's designs
(counter, Cohort SoC, multi-SLR cluster), randomized multi-clock
netlists, gating, per-domain stepping, force(), and snapshot/restore
mid-batch. Lane isolation is additionally fuzzed on an operator zoo
with adversarial neighbour lanes (all-ones next door, sign-bit
boundaries) to catch any carry/borrow/shift bleeding across lanes.
"""

import random

import pytest

from repro.designs import make_cluster, make_cohort_soc, make_counter
from repro.errors import SimulationError
from repro.obs import get_registry
from repro.rtl import (
    BatchSimulator,
    BinaryOp,
    Const,
    ModuleBuilder,
    Mux,
    Repl,
    Simulator,
    Slice,
    UnaryOp,
    cat,
    clear_plan_cache,
    elaborate,
    reduce_and,
    reduce_or,
    reduce_xor,
)
from repro.rtl import plan_store

from tests.test_differential_fused import _rand_design


@pytest.fixture(autouse=True)
def _memory_only_plan_cache():
    """Hermetic caching: no disk tier, fresh in-memory plan cache."""
    saved = (plan_store._STORE, plan_store._RESOLVED)
    plan_store.set_plan_cache_dir(None)
    clear_plan_cache()
    yield
    plan_store._STORE, plan_store._RESOLVED = saved
    clear_plan_cache()


# ---------------------------------------------------------------------------
# lockstep driving: one scalar simulator per lane
# ---------------------------------------------------------------------------

def _assert_lanes_match(batch, scalars):
    for lane, sim in enumerate(scalars):
        assert batch.extract_lane(lane) == sim.snapshot(), f"lane {lane}"


def _lane_signals(batch, lane):
    batch._settle()
    return {name: batch._get_lane(name, lane)
            for name in batch.netlist.signals}


def _lockstep(net, lanes, steps, rng, clocks=None):
    """Drive a batch and per-lane scalar twins with identical random
    stimulus (per-lane pokes/forces, shared gating and stepping),
    asserting bit-identity after every action."""
    scalars = [Simulator(net, clocks=clocks) for _ in range(lanes)]
    batch = BatchSimulator(net, lanes, clocks=clocks)
    inputs = sorted(net.inputs)
    registers = sorted(net.registers)
    domains = sorted(batch.domains)
    for _ in range(steps):
        act = rng.random()
        if act < 0.5:
            name = rng.choice(inputs)
            for lane, sim in enumerate(scalars):
                value = rng.getrandbits(net.width(name))
                sim.poke(name, value)
                batch.poke(name, value, lane=lane)
        elif act < 0.6 and registers:
            name = rng.choice(registers)
            for lane, sim in enumerate(scalars):
                value = rng.getrandbits(net.registers[name].width)
                sim.force(name, value)
                batch.force(name, value, lane=lane)
        elif act < 0.7:
            domain = rng.choice(domains)
            gate = rng.random() < 0.5
            for sim in scalars:
                sim.set_clock_gate(domain, gate)
            batch.set_clock_gate(domain, gate)
        if rng.random() < 0.3:
            domain = rng.choice(domains)
            n = rng.randrange(1, 4)
            for sim in scalars:
                sim.step(n, domain=domain)
            batch.step(n, domain=domain)
        else:
            n = rng.randrange(1, 5)
            for sim in scalars:
                sim.step(n)
            batch.step(n)
        _assert_lanes_match(batch, scalars)
    for domain in domains:
        for sim in scalars:
            sim.set_clock_gate(domain, False)
        batch.set_clock_gate(domain, False)
    return batch, scalars


# ---------------------------------------------------------------------------
# the paper's designs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("maker", [
    lambda: make_counter(8),
    lambda: make_cohort_soc(with_bug=False),
    make_cluster,
], ids=["counter", "cohort-soc", "slr-cluster"])
def test_batched_lanes_match_scalar(maker):
    net = elaborate(maker())
    rng = random.Random(2024)
    batch, scalars = _lockstep(net, 4, 30, rng)
    # Every combinational signal matches too, not just architectural state.
    for lane, sim in enumerate(scalars):
        assert _lane_signals(batch, lane) == \
            {name: sim.peek(name) for name in net.signals}


@pytest.mark.parametrize("seed", range(8))
def test_randomized_multiclock_differential(seed):
    net = _rand_design(seed)
    clocks = {"clk": 1000, "aux": 1000 if seed % 2 == 0 else 700}
    _lockstep(net, 4, 25, random.Random(seed * 37 + 5), clocks=clocks)


def test_snapshot_restore_mid_batch():
    """Batch-native snapshot taken mid-run restores all lanes exactly:
    post-restore replay stays lane-identical to scalar twins that were
    restored to the same point."""
    net = _rand_design(3)
    rng = random.Random(99)
    batch, scalars = _lockstep(net, 4, 10, rng)
    batch_snap = batch.snapshot()
    scalar_snaps = [sim.snapshot() for sim in scalars]
    _lockstep_continue = random.Random(100)
    for sim in scalars:
        sim.step(17)
    batch.step(17)
    del _lockstep_continue
    batch.restore(batch_snap)
    for sim, snap in zip(scalars, scalar_snaps):
        sim.restore(snap)
    _assert_lanes_match(batch, scalars)
    for sim in scalars:
        sim.step(9)
    batch.step(9)
    _assert_lanes_match(batch, scalars)


def test_restore_rejects_mismatched_shape():
    net = elaborate(make_counter(8))
    snap = BatchSimulator(net, 4).snapshot()
    with pytest.raises(SimulationError):
        BatchSimulator(net, 8).restore(snap)


def test_extract_lane_resumes_on_scalar_simulator():
    """A lane pulled out of a batch resumes bit-exact on a scalar
    Simulator — the debug path for zooming into one run of a campaign."""
    net = _rand_design(6)
    batch = BatchSimulator(net, 4)
    rng = random.Random(7)
    for lane in range(4):
        for name in sorted(net.inputs):
            batch.poke(name, rng.getrandbits(net.width(name)), lane=lane)
    batch.step(21)
    scalar = Simulator(net)
    scalar.restore(batch.extract_lane(2))
    assert scalar.snapshot() == batch.extract_lane(2)
    for _ in range(10):
        value = rng.getrandbits(net.width("in0"))
        scalar.poke("in0", value)
        batch.poke("in0", value, lane=2)
        scalar.step(2)
        batch.step(2)
        assert scalar.snapshot() == batch.extract_lane(2)


def test_to_batch_fans_out_a_scalar_run():
    """Simulator.to_batch broadcasts the current state (and clock
    bookkeeping) into every lane; lanes then diverge independently."""
    net = elaborate(make_counter(8))
    sim = Simulator(net)
    sim.poke("en", 1)
    sim.step(13)
    batch = sim.to_batch(4)
    for lane in range(4):
        assert batch.extract_lane(lane) == sim.snapshot()
    # Diverge: lane i counts iff i is odd.
    for lane in range(4):
        batch.poke("en", lane % 2, lane=lane)
    batch.step(5)
    for lane in range(4):
        assert batch.peek("count", lane) == (13 + 5 * (lane % 2)) % 256
    assert batch.cycles("clk") == 18


def test_inject_lane_roundtrip():
    net = _rand_design(4)
    scalar = Simulator(net)
    scalar.poke("in0", 5)
    scalar.step(11)
    snap = scalar.snapshot()
    batch = BatchSimulator(net, 3)
    batch.inject_lane(1, snap)
    out = batch.extract_lane(1)
    for section in ("registers", "memories", "inputs", "read_ports"):
        assert out[section] == snap[section]


def test_gated_domain_holds_on_every_lane():
    net = _rand_design(77)
    batch = BatchSimulator(net, 4)
    rng = random.Random(1)
    for lane in range(4):
        for name in sorted(net.inputs):
            batch.poke(name, rng.getrandbits(net.width(name)), lane=lane)
    batch.step(5)
    aux_regs = [name for name, reg in net.registers.items()
                if reg.clock == "aux"]
    before = {(name, lane): batch.peek(name, lane)
              for name in aux_regs for lane in range(4)}
    batch.set_clock_gate("aux", True)
    batch.step(20)
    for (name, lane), value in before.items():
        assert batch.peek(name, lane) == value
    assert batch.cycles("aux") == 5
    assert batch.domains["aux"].edges_seen == 25


# ---------------------------------------------------------------------------
# lane-isolation fuzz: the operator zoo
# ---------------------------------------------------------------------------

_ZOO_WIDTH = 8


def _op_zoo_module():
    """Every operator the emitter handles, as one module: any cross-lane
    carry, borrow, or shift bleed shows up as a wrong output lane."""
    b = ModuleBuilder("op_zoo")
    a = b.input("a", _ZOO_WIDTH)
    c = b.input("c", _ZOO_WIDTH)
    sh = b.input("sh", 4)
    acc = b.reg("acc", _ZOO_WIDTH, clock="clk",
                reset=a.eq(c), reset_value=0xA5, enable=c.bit(0))
    b.next("acc", acc + a)
    outs = {
        "o_add": a + c,
        "o_sub": a - c,
        "o_mul": a * c,
        "o_neg": UnaryOp("-", a),
        "o_not": ~a,
        "o_lnot": UnaryOp("!", a),
        "o_and": a & c,
        "o_or": a | c,
        "o_xor": a ^ c,
        "o_eq": a.eq(c),
        "o_ne": a.ne(c),
        "o_ltu": a.lt(c),
        "o_gtu": a.gt(c),
        "o_leu": a.le(c),
        "o_geu": a.ge(c),
        "o_lts": a.slt(c),
        "o_gts": a.sgt(c),
        "o_les": BinaryOp("<=s", a, c),
        "o_ges": BinaryOp(">=s", a, c),
        "o_shl": BinaryOp("<<", a, sh),
        "o_shr": BinaryOp(">>", a, sh),
        "o_sra": BinaryOp(">>>", a, sh),
        "o_shlc": BinaryOp("<<", a, Const(3, 3)),
        "o_shrc": BinaryOp(">>", a, Const(3, 3)),
        "o_shlc_big": BinaryOp("<<", a, Const(9, 4)),
        "o_rand": reduce_and(a),
        "o_ror": reduce_or(a),
        "o_rxor": reduce_xor(a),
        "o_mux": Mux(a.lt(c), a + c, a - c),
        "o_mux_wide_sel": Mux(a ^ c, a, c),
        "o_land": a.lt(c).logical_and(a.bit(0)),
        "o_lor": a.lt(c).logical_or(a.bit(7)),
        "o_cat": Slice(cat(a, c), 11, 4),
        "o_repl": Slice(Repl(Slice(a, 3, 0), 3), 9, 2),
    }
    for name, expr in outs.items():
        b.output_expr(name, expr)
    return elaborate(b.build()), sorted(outs)


#: Adversarial per-lane operand values: zero, all-ones, the signed
#: boundary, and its neighbours — the values carry/borrow/sign bugs love.
_BOUNDARY = [0, 1, 0xFF, 0x80, 0x7F, 0x81, 0xFE]


def test_lane_isolation_fuzz():
    """Random per-lane stimuli over the operator zoo: every output lane
    must equal its scalar twin on every op, including signed compares
    and overflow wrap, with hostile values in the neighbouring lanes."""
    net, out_names = _op_zoo_module()
    lanes = 8
    rng = random.Random(4242)
    scalars = [Simulator(net) for _ in range(lanes)]
    batch = BatchSimulator(net, lanes)

    def pick():
        return (rng.choice(_BOUNDARY) if rng.random() < 0.5
                else rng.getrandbits(_ZOO_WIDTH))

    for round_no in range(120):
        for lane, sim in enumerate(scalars):
            if round_no < len(_BOUNDARY) * 2:
                # Targeted rounds: one boundary lane, all-ones neighbours
                # (maximum carry/borrow pressure on adjacent lanes).
                a = _BOUNDARY[round_no % len(_BOUNDARY)] \
                    if lane == round_no % lanes else 0xFF
                c = 0xFF if lane != round_no % lanes else \
                    _BOUNDARY[(round_no // 2) % len(_BOUNDARY)]
            else:
                a, c = pick(), pick()
            shv = rng.randrange(16)
            for name, value in (("a", a), ("c", c), ("sh", shv)):
                sim.poke(name, value)
                batch.poke(name, value, lane=lane)
        batch.step(1)
        for sim in scalars:
            sim.step(1)
        for lane, sim in enumerate(scalars):
            for name in out_names:
                assert batch.peek(name, lane) == sim.peek(name), \
                    f"op {name} bled across lanes (lane {lane})"
            assert batch.peek("acc", lane) == sim.peek("acc")


# ---------------------------------------------------------------------------
# API edges and metrics
# ---------------------------------------------------------------------------

def test_lane_and_argument_validation():
    net = elaborate(make_counter(8))
    with pytest.raises(SimulationError):
        BatchSimulator(net, 0)
    batch = BatchSimulator(net, 2)
    with pytest.raises(SimulationError):
        batch.poke("en", 1, lane=2)
    with pytest.raises(SimulationError):
        batch.poke("count", 1)  # not an input
    with pytest.raises(SimulationError):
        batch.force("en", 1)  # not state
    with pytest.raises(SimulationError):
        batch.step(-1)


def test_batch_lanes_gauge_and_tick_counter():
    net = elaborate(make_counter(8))
    registry = get_registry()
    before = registry.counter("sim.batch.lane_ticks").value
    batch = BatchSimulator(net, 16)
    assert registry.gauge("sim.batch_lanes").value == 16
    batch.step(10)
    assert registry.counter("sim.batch.lane_ticks").value == before + 160


def test_broadcast_poke_and_peek_all_lanes():
    net = elaborate(make_counter(8))
    batch = BatchSimulator(net, 3)
    batch.poke("en", 1)  # broadcast
    batch.step(4)
    assert batch.peek("count") == [4, 4, 4]
