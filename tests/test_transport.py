"""The verified JTAG transport: fault injection, CRC verification
against the golden channel, and the bounded retry policy.

The differential guard the transport must honour: with fault injection
disabled it is a bit-identical pass-through (same read words, same
modeled seconds as the raw ring); with a seeded FaultPlan active,
corrupted batches are always *detected* — never silently consumed — and
operations complete via retry with the damage visible in the stats.
"""

import pytest

from repro import Zoomie, ZoomieProject
from repro.bitstream.assembler import BitstreamAssembler
from repro.bitstream.crc import crc32_stream
from repro.config import FaultPlan, RetryPolicy
from repro.config.transport import HOP_PULSE_WORD
from repro.designs import make_cluster
from repro.errors import CorruptReadbackError, TransportError


@pytest.fixture()
def session():
    project = ZoomieProject(
        design=make_cluster(cores=2, imem_depth=64), device="TEST2",
        clocks={"clk": 100.0}, watch=["retired_count"])
    session = Zoomie(project).launch()
    session.poke_input("en", 1)
    session.run(30)
    session.debugger.pause()
    return session


def capture_read_program(fabric, slr, frames):
    """A capture + FDRO readback program, as read_slr assembles it."""
    asm = BitstreamAssembler(fabric.device)
    asm.preamble()
    hops = asm.hops_to(slr)
    for _ in range(hops):
        asm.write_register("BOUT", [])
    if hops:
        asm.dummy(4)
    asm.clear_mask()
    asm.capture()
    asm.read_frames(frames[0], len(frames))
    asm.command("DESYNC").dummy(2)
    return asm.words


class TestCleanChannel:
    def test_transact_is_bit_identical_to_raw_ring(self, session):
        """Differential guard: no plan -> pass-through, zero overhead."""
        fabric = session.fabric
        frames = session.debugger.engine.all_frames_of_slr(0)[:8]
        direct = fabric.jtag.run(capture_read_program(fabric, 0, frames))
        routed = fabric.transact(capture_read_program(fabric, 0, frames))
        assert routed.read_words == direct.read_words
        assert routed.seconds == direct.seconds
        assert routed.read_crc == direct.read_crc

    def test_golden_channel_crc_matches_read_words(self, session):
        fabric = session.fabric
        frames = session.debugger.engine.all_frames_of_slr(0)[:4]
        result = fabric.transact(capture_read_program(fabric, 0, frames))
        assert result.read_crc == crc32_stream(result.read_words)

    def test_stats_count_clean_batches(self, session):
        fabric = session.fabric
        stats = fabric.transport.stats
        before = stats.as_dict()
        session.debugger.read_state()
        after = stats.as_dict()
        assert after["batches"] > before["batches"]
        assert after["attempts"] - before["attempts"] \
            == after["batches"] - before["batches"]
        assert after["retries"] == before["retries"]
        assert after["corrupt_detected"] == before["corrupt_detected"]
        assert after["seconds_in_retry"] == before["seconds_in_retry"]

    def test_ring_counts_batches(self, session):
        fabric = session.fabric
        before = fabric.jtag.batches
        session.debugger.read_state(allow_running=True)
        assert fabric.jtag.batches > before


class TestFaultPlan:
    def test_same_seed_same_faults(self):
        words = list(range(64))
        a = FaultPlan(seed=7, read_flip_rate=0.5, truncate_rate=0.3)
        b = FaultPlan(seed=7, read_flip_rate=0.5, truncate_rate=0.3)
        for _ in range(16):
            assert a.deliver_response(list(words)) \
                == b.deliver_response(list(words))

    def test_reset_rewinds_the_stream(self):
        words = list(range(64))
        plan = FaultPlan(seed=3, read_flip_rate=0.7)
        first = [plan.deliver_response(list(words)) for _ in range(8)]
        plan.reset()
        again = [plan.deliver_response(list(words)) for _ in range(8)]
        assert first == again

    def test_drop_hop_removes_exactly_one_pulse(self):
        plan = FaultPlan(seed=1, drop_hop_rate=1.0)
        words = [HOP_PULSE_WORD, HOP_PULSE_WORD, 0x123, HOP_PULSE_WORD]
        delivered = plan.deliver_commands(list(words))
        assert len(delivered) == len(words) - 1
        assert delivered.count(HOP_PULSE_WORD) == 2
        assert 0x123 in delivered

    def test_no_pulses_nothing_to_drop(self):
        plan = FaultPlan(seed=1, drop_hop_rate=1.0)
        words = [0x123, 0x456]
        assert plan.deliver_commands(list(words)) == words

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=8, backoff_seconds=0.01,
                             backoff_multiplier=2.0,
                             max_backoff_seconds=0.05)
        waits = [policy.backoff_for(n) for n in range(1, 6)]
        assert waits == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_zero_jitter_is_bit_identical_to_plain_backoff(self):
        plain = RetryPolicy(max_attempts=8, backoff_seconds=0.01,
                            backoff_multiplier=2.0,
                            max_backoff_seconds=0.05)
        zeroed = RetryPolicy(max_attempts=8, backoff_seconds=0.01,
                             backoff_multiplier=2.0,
                             max_backoff_seconds=0.05,
                             jitter=0.0, jitter_seed=99)
        for failure in range(1, 9):
            assert plain.backoff_for(failure) \
                == zeroed.backoff_for(failure)

    def test_jitter_is_deterministic_per_seed_and_bounded(self):
        def waves(seed):
            policy = RetryPolicy(max_attempts=8, backoff_seconds=0.01,
                                 backoff_multiplier=2.0,
                                 max_backoff_seconds=0.05,
                                 jitter=0.3, jitter_seed=seed)
            return [policy.backoff_for(n) for n in range(1, 9)]

        assert waves(7) == waves(7)  # replayable
        assert waves(7) != waves(8)  # but seed-dependent
        plain = RetryPolicy(max_attempts=8, backoff_seconds=0.01,
                            backoff_multiplier=2.0,
                            max_backoff_seconds=0.05)
        for failure, wait in enumerate(waves(7), start=1):
            base = plain.backoff_for(failure)
            assert base * 0.7 <= wait <= min(base * 1.3, 0.05)

    def test_jitter_fraction_is_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestFaultDetectionAndRetry:
    def test_bit_flips_always_detected_never_silent(self, session):
        """Across seeds: every corrupted batch is caught by CRC and the
        retried result is exact against simulator truth."""
        fabric, dbg = session.fabric, session.debugger
        stats = fabric.transport.stats
        tripped = False
        for seed in range(40):
            fabric.enable_fault_injection(
                FaultPlan(seed=seed, read_flip_rate=0.5),
                RetryPolicy(max_attempts=12))
            before = stats.corrupt_detected
            state = dbg.read_state()
            for name, value in state.values.items():
                assert value == fabric.sim.peek(name), (
                    f"seed={seed}: silently corrupt value for {name}")
            if stats.corrupt_detected > before:
                tripped = True
                break
        assert tripped, "no corruption triggered across 40 seeds"
        assert stats.retries > 0
        assert stats.seconds_in_retry > 0.0

    def test_persistent_corruption_raises_typed_error(self, session):
        fabric, dbg = session.fabric, session.debugger
        fabric.enable_fault_injection(
            FaultPlan(seed=2, read_flip_rate=1.0),
            RetryPolicy(max_attempts=3))
        with pytest.raises(CorruptReadbackError) as info:
            dbg.read_state()
        assert info.value.attempts == 3
        assert fabric.transport.stats.exhausted == 1

    def test_truncated_burst_detected(self, session):
        fabric, dbg = session.fabric, session.debugger
        fabric.enable_fault_injection(
            FaultPlan(seed=4, truncate_rate=1.0),
            RetryPolicy(max_attempts=2))
        with pytest.raises(CorruptReadbackError) as info:
            dbg.read_state()
        assert info.value.kind == "truncated"

    def test_dropped_hop_rejected_before_execution(self, session):
        """A batch whose hop group lost a pulse must never execute —
        it would read (or write!) the wrong SLR."""
        fabric, dbg = session.fabric, session.debugger
        engine = dbg.engine
        secondary = (fabric.device.primary_slr + 1) \
            % fabric.device.slr_count
        frames = engine.all_frames_of_slr(secondary)[:4]
        logs_before = [list(mc.command_log) for mc in fabric.mcs]
        fabric.enable_fault_injection(
            FaultPlan(seed=3, drop_hop_rate=1.0),
            RetryPolicy(max_attempts=3))
        with pytest.raises(TransportError) as info:
            engine.read_slr(secondary, frames)
        assert info.value.kind == "command"
        assert [list(mc.command_log) for mc in fabric.mcs] == logs_before
        assert fabric.transport.stats.command_faults_detected == 3

    def test_stuck_secondary_recovers_with_backoff(self, session):
        fabric, dbg = session.fabric, session.debugger
        engine = dbg.engine
        secondary = (fabric.device.primary_slr + 1) \
            % fabric.device.slr_count
        frames = engine.all_frames_of_slr(secondary)[:4]
        clean = engine.read_slr(secondary, frames)

        plan = FaultPlan(seed=0)
        plan.stick(secondary, attempts=2)
        fabric.enable_fault_injection(plan, RetryPolicy(max_attempts=6))
        stats = fabric.transport.stats
        wasted_before = stats.seconds_in_retry
        faulted = engine.read_slr(secondary, frames)

        assert stats.stuck_detected == 2
        assert stats.retries == 2
        assert faulted.values == clean.values
        wasted = stats.seconds_in_retry - wasted_before
        assert faulted.seconds == pytest.approx(clean.seconds + wasted)
        assert faulted.seconds > clean.seconds

    def test_stuck_controller_only_affects_batches_targeting_it(
            self, session):
        fabric, dbg = session.fabric, session.debugger
        engine = dbg.engine
        secondary = (fabric.device.primary_slr + 1) \
            % fabric.device.slr_count
        plan = FaultPlan(seed=0)
        plan.stick(secondary, attempts=1)
        fabric.enable_fault_injection(plan)
        stats = fabric.transport.stats
        frames = engine.all_frames_of_slr(fabric.device.primary_slr)[:4]
        engine.read_slr(fabric.device.primary_slr, frames)
        assert stats.stuck_detected == 0  # primary batch sails through


class TestRetryIdempotentOperations:
    def test_write_state_exact_under_faults(self, session):
        fabric, dbg = session.fabric, session.debugger
        fabric.enable_fault_injection(
            FaultPlan(seed=5, read_flip_rate=0.4),
            RetryPolicy(max_attempts=12))
        dbg.write_state({"core0.acc": 3})
        assert fabric.sim.peek("core0.acc") == 3

    def test_write_memory_exact_under_faults(self, session):
        fabric, dbg = session.fabric, session.debugger
        mem = fabric.db.netlist.memories["imem"]
        words = [(index * 7 + 1) % (1 << mem.width)
                 for index in range(mem.depth)]
        fabric.enable_fault_injection(
            FaultPlan(seed=6, read_flip_rate=0.4, drop_hop_rate=0.2),
            RetryPolicy(max_attempts=12))
        dbg.write_memory("imem", words)
        assert list(fabric.sim.memories["imem"]) == words

    def test_snapshot_restore_roundtrip_under_faults(self, session):
        fabric, dbg = session.fabric, session.debugger
        fabric.enable_fault_injection(
            FaultPlan(seed=8, read_flip_rate=0.25, truncate_rate=0.1),
            RetryPolicy(max_attempts=12))
        snap = dbg.snapshot(label="before")
        dbg.resume()
        dbg.run(17)
        dbg.pause()
        dbg.restore(snap)
        for name, value in snap.values.items():
            if name in fabric.db.netlist.registers:
                assert fabric.sim.peek(name) == value, name
        for name, words in snap.memories.items():
            assert list(fabric.sim.memories[name]) == words, name

    def test_disable_returns_to_clean_channel(self, session):
        fabric, dbg = session.fabric, session.debugger
        fabric.enable_fault_injection(FaultPlan(seed=1, read_flip_rate=1.0),
                                      RetryPolicy(max_attempts=2))
        with pytest.raises(TransportError):
            dbg.read_state()
        fabric.disable_fault_injection()
        retries_before = fabric.transport.stats.retries
        state = dbg.read_state()
        assert fabric.transport.stats.retries == retries_before
        assert state["core0.acc"] == fabric.sim.peek("core0.acc")
