"""Tests for elaboration and the multi-clock, gateable simulator."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    CombinationalLoopError,
    SimulationError,
    UnknownSignalError,
)
from repro.rtl import ModuleBuilder, Simulator, Trace, elaborate, mux, write_vcd
from repro.rtl.flatten import set_clock_map


def make_counter(width=8, clock="clk"):
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.reg("count", width, clock=clock)
    b.next(count, mux(en, count + 1, count))
    b.output_expr("out", count)
    return b.build()


def counter_sim(width=8):
    sim = Simulator(elaborate(make_counter(width)))
    sim.poke("en", 1)
    return sim


class TestBasicExecution:
    def test_counter_counts(self):
        sim = counter_sim()
        sim.step(5)
        assert sim.peek("out") == 5

    def test_enable_stops_counting(self):
        sim = counter_sim()
        sim.step(3)
        sim.poke("en", 0)
        sim.step(3)
        assert sim.peek("out") == 3

    def test_wrap_around(self):
        sim = counter_sim(width=4)
        sim.step(17)
        assert sim.peek("out") == 1

    def test_peek_unknown_raises(self):
        sim = counter_sim()
        with pytest.raises(UnknownSignalError):
            sim.peek("bogus")

    def test_poke_non_input_raises(self):
        sim = counter_sim()
        with pytest.raises(SimulationError):
            sim.poke("count", 3)

    def test_negative_step_rejected(self):
        sim = counter_sim()
        with pytest.raises(SimulationError):
            sim.step(-1)

    def test_interpreted_and_compiled_agree(self):
        net = elaborate(make_counter())
        fast = Simulator(net, compiled=True)
        slow = Simulator(net, compiled=False)
        for sim in (fast, slow):
            sim.poke("en", 1)
            sim.step(7)
        assert fast.peek("out") == slow.peek("out") == 7


class TestRegisterSemantics:
    def test_registers_sample_before_commit(self):
        # Swap circuit: a <= b, b <= a must exchange values each cycle.
        b = ModuleBuilder("swap")
        ra = b.reg("a", 8, init=1)
        rb = b.reg("b", 8, init=2)
        b.next(ra, rb)
        b.next(rb, ra)
        b.output_expr("oa", ra)
        module = b.build()
        sim = Simulator(elaborate(module))
        sim.step(1)
        assert (sim.peek("a"), sim.peek("b")) == (2, 1)
        sim.step(1)
        assert (sim.peek("a"), sim.peek("b")) == (1, 2)

    def test_synchronous_reset(self):
        b = ModuleBuilder("m")
        rst = b.input("rst", 1)
        count = b.reg("count", 8, reset=rst, reset_value=9)
        b.next(count, count + 1)
        b.output_expr("o", count)
        sim = Simulator(elaborate(b.build()))
        sim.poke("rst", 0)
        sim.step(3)
        assert sim.peek("o") == 3
        sim.poke("rst", 1)
        sim.step(1)
        assert sim.peek("o") == 9

    def test_register_enable(self):
        b = ModuleBuilder("m")
        en = b.input("en", 1)
        count = b.reg("count", 8, enable=en)
        b.next(count, count + 1)
        b.output_expr("o", count)
        sim = Simulator(elaborate(b.build()))
        sim.poke("en", 0)
        sim.step(5)
        assert sim.peek("o") == 0
        sim.poke("en", 1)
        sim.step(2)
        assert sim.peek("o") == 2

    def test_init_values(self):
        b = ModuleBuilder("m")
        r = b.reg("r", 8, init=0xAB)
        b.output_expr("o", r)
        sim = Simulator(elaborate(b.build()))
        assert sim.peek("o") == 0xAB


class TestCombinationalChecks:
    def test_comb_loop_detected(self):
        b = ModuleBuilder("loop")
        b.wire("a", 1)
        b.wire("c", 1)
        b.assign("a", b.sig("c"))
        b.assign("c", b.sig("a"))
        b.output_expr("o", b.sig("a"))
        module = b.build()
        with pytest.raises(CombinationalLoopError):
            Simulator(elaborate(module))

    def test_deep_comb_chain_settles(self):
        b = ModuleBuilder("chain")
        x = b.input("x", 8)
        prev = x
        for i in range(50):
            prev = b.wire_expr(f"w{i}", prev + 1)
        b.output_expr("o", prev)
        sim = Simulator(elaborate(b.build()))
        sim.poke("x", 0)
        assert sim.peek("o") == 50


class TestClockGating:
    def test_gated_domain_freezes(self):
        sim = counter_sim()
        sim.step(2)
        sim.set_clock_gate("clk", True)
        sim.step(10)
        assert sim.peek("out") == 2
        assert sim.cycles("clk") == 2

    def test_ungate_resumes_exactly(self):
        sim = counter_sim()
        sim.step(2)
        sim.set_clock_gate("clk", True)
        sim.step(10)
        sim.set_clock_gate("clk", False)
        sim.step(1)
        assert sim.peek("out") == 3
        assert sim.cycles("clk") == 3

    def test_unknown_domain_raises(self):
        sim = counter_sim()
        with pytest.raises(SimulationError):
            sim.set_clock_gate("nope", True)


class TestMultiClock:
    def make_two_domain(self):
        b = ModuleBuilder("m")
        fast = b.reg("fast", 16, clock="fast_clk")
        slow = b.reg("slow", 16, clock="slow_clk")
        b.next(fast, fast + 1)
        b.next(slow, slow + 1)
        b.output_expr("of", fast)
        b.output_expr("os", slow)
        return elaborate(b.build())

    def test_period_ratio(self):
        sim = Simulator(self.make_two_domain(),
                        clocks={"fast_clk": 1000, "slow_clk": 4000})
        sim.run_to_time(16_000)
        assert sim.peek("of") == 16
        assert sim.peek("os") == 4

    def test_per_domain_step(self):
        sim = Simulator(self.make_two_domain())
        sim.step(3, domain="fast_clk")
        assert sim.peek("of") == 3
        assert sim.peek("os") == 0

    def test_gating_one_domain_leaves_other_running(self):
        sim = Simulator(self.make_two_domain(),
                        clocks={"fast_clk": 1000, "slow_clk": 1000})
        sim.set_clock_gate("slow_clk", True)
        sim.step(5)
        assert sim.peek("of") == 5
        assert sim.peek("os") == 0

    def test_simultaneous_cross_domain_transfer(self):
        # Register in domain B samples a register in domain A; when both
        # domains tick at the same instant the transfer uses pre-edge values.
        b = ModuleBuilder("m")
        src = b.reg("src", 8, clock="a")
        dst = b.reg("dst", 8, clock="b")
        b.next(src, src + 1)
        b.next(dst, src)
        b.output_expr("o", dst)
        sim = Simulator(elaborate(b.build()),
                        clocks={"a": 1000, "b": 1000})
        sim.step(1)
        assert sim.peek("src") == 1
        assert sim.peek("dst") == 0
        sim.step(1)
        assert sim.peek("dst") == 1


class TestMemories:
    def make_mem_sim(self):
        b = ModuleBuilder("memtest")
        waddr = b.input("waddr", 4)
        wdata = b.input("wdata", 8)
        we = b.input("we", 1)
        raddr = b.input("raddr", 4)
        memory = b.memory("mem", 8, 16, init={0: 5})
        rd = b.read_port(memory, "rdata", raddr, sync=False)
        rs = b.read_port(memory, "rdata_s", raddr, sync=True)
        b.write_port(memory, waddr, wdata, we)
        b.output_expr("q", rd)
        b.output_expr("qs", rs)
        return Simulator(elaborate(b.build()))

    def test_init_contents(self):
        sim = self.make_mem_sim()
        sim.poke("raddr", 0)
        assert sim.peek("q") == 5

    def test_write_then_async_read(self):
        sim = self.make_mem_sim()
        sim.poke("waddr", 3)
        sim.poke("wdata", 77)
        sim.poke("we", 1)
        sim.step(1)
        sim.poke("we", 0)
        sim.poke("raddr", 3)
        assert sim.peek("q") == 77

    def test_sync_read_lags_one_cycle(self):
        sim = self.make_mem_sim()
        sim.poke("raddr", 0)
        assert sim.peek("qs") == 0
        sim.step(1)
        assert sim.peek("qs") == 5

    def test_read_before_write_on_same_cycle(self):
        sim = self.make_mem_sim()
        sim.poke("waddr", 0)
        sim.poke("wdata", 99)
        sim.poke("we", 1)
        sim.poke("raddr", 0)
        sim.step(1)
        # Sync read port returns the pre-write word for same-cycle access.
        assert sim.peek("qs") == 5
        sim.step(1)
        assert sim.peek("qs") == 99

    def test_direct_memory_access(self):
        sim = self.make_mem_sim()
        sim.write_memory("mem", 7, 123)
        assert sim.read_memory("mem", 7) == 123

    def test_memory_bounds_checked(self):
        sim = self.make_mem_sim()
        with pytest.raises(SimulationError):
            sim.read_memory("mem", 16)
        with pytest.raises(UnknownSignalError):
            sim.read_memory("nope", 0)


class TestStateManipulation:
    def test_force_register(self):
        sim = counter_sim()
        sim.step(2)
        sim.force("count", 100)
        sim.step(1)
        assert sim.peek("out") == 101

    def test_force_truncates(self):
        sim = counter_sim(width=4)
        sim.force("count", 0x1F)
        assert sim.peek("out") == 0xF

    def test_force_non_register_raises(self):
        sim = counter_sim()
        with pytest.raises(SimulationError):
            sim.force("en", 1)

    def test_snapshot_restore_roundtrip(self):
        sim = self_contained = counter_sim()
        self_contained.step(4)
        snap = sim.snapshot()
        sim.step(10)
        sim.restore(snap)
        assert sim.peek("out") == 4
        assert sim.cycles("clk") == 4
        sim.step(1)
        assert sim.peek("out") == 5

    def test_snapshot_includes_memories(self):
        b = ModuleBuilder("m")
        addr = b.input("addr", 2)
        memory = b.memory("mem", 8, 4)
        rd = b.read_port(memory, "rd", addr)
        b.write_port(memory, addr, b.input("wd", 8), b.input("we", 1))
        b.output_expr("o", rd)
        sim = Simulator(elaborate(b.build()))
        sim.write_memory("mem", 1, 42)
        snap = sim.snapshot()
        sim.write_memory("mem", 1, 0)
        sim.restore(snap)
        assert sim.read_memory("mem", 1) == 42


class TestClockMap:
    def test_instance_clock_renaming(self):
        counter = make_counter()
        b = ModuleBuilder("top")
        en = b.input("en", 1)
        refs = b.instantiate(counter, "mut", inputs={"en": en})
        b.output_expr("o", refs["out"])
        top = b.build()
        set_clock_map(top.instances["mut"], {"clk": "mut_clk"})
        net = elaborate(top)
        assert net.registers["mut.count"].clock == "mut_clk"
        sim = Simulator(net, clocks={"mut_clk": 1000})
        sim.poke("en", 1)
        sim.set_clock_gate("mut_clk", True)
        sim.step(5)
        assert sim.peek("o") == 0


class TestTrace:
    def test_trace_records_series(self):
        sim = counter_sim()
        trace = Trace(sim, signals=["out"], depth=None).attach()
        sim.step(3)
        assert trace.series("out") == [0, 1, 2, 3]

    def test_depth_limits_window(self):
        sim = counter_sim()
        trace = Trace(sim, signals=["out"], depth=2).attach()
        sim.step(5)
        assert trace.series("out") == [4, 5]

    def test_detach_stops_recording(self):
        sim = counter_sim()
        trace = Trace(sim, signals=["out"]).attach()
        sim.step(1)
        trace.detach()
        sim.step(5)
        assert len(trace) == 2

    def test_unknown_signal_rejected(self):
        sim = counter_sim()
        with pytest.raises(SimulationError):
            Trace(sim, signals=["nope"])

    def test_vcd_export(self):
        sim = counter_sim()
        trace = Trace(sim, signals=["out", "en"]).attach()
        sim.step(3)
        out = io.StringIO()
        write_vcd(trace, out)
        text = out.getvalue()
        assert "$enddefinitions" in text
        assert "b11 " in text  # out reaches 3


@settings(max_examples=25)
@given(st.lists(st.booleans(), min_size=1, max_size=40))
def test_counter_matches_reference_model(enables):
    """Property: RTL counter tracks a trivial software model exactly."""
    sim = Simulator(elaborate(make_counter()))
    expected = 0
    for enable in enables:
        sim.poke("en", int(enable))
        sim.step(1)
        expected = (expected + int(enable)) & 0xFF
        assert sim.peek("out") == expected


@settings(max_examples=20)
@given(st.integers(1, 30), st.integers(1, 30))
def test_gating_is_transparent_to_resumed_execution(before, after):
    """Pausing then resuming must equal never pausing (same cycle count)."""
    paused = Simulator(elaborate(make_counter()))
    straight = Simulator(elaborate(make_counter()))
    for sim in (paused, straight):
        sim.poke("en", 1)
    paused.step(before)
    paused.set_clock_gate("clk", True)
    paused.step(13)
    paused.set_clock_gate("clk", False)
    paused.step(after)
    straight.step(before + after)
    assert paused.peek("out") == straight.peek("out")
