"""VCD export correctness and the hook-based Trace data structures.

The VCD tests parse what :func:`write_vcd` emits with a small
independent parser and check the properties the seed got wrong: the
timestamps must be the *recorded cycles* (not row indices — a wrapped
ring or a late attach otherwise compresses the time axis), the header
must carry true widths for env-only names (BRAM output latches), the
first timestamp must carry a ``$dumpvars`` initial-value section, and
later timestamps must emit changes only.
"""

import io
import re

import pytest

from repro.designs import make_counter
from repro.errors import SimulationError
from repro.rtl import (
    ModuleBuilder,
    Simulator,
    StreamingTrace,
    Trace,
    elaborate,
    write_vcd,
)


def counter_sim():
    sim = Simulator(elaborate(make_counter(8)))
    sim.poke("en", 1)
    return sim


def parse_vcd(text: str):
    """Tiny VCD reader: header vars + per-timestamp value changes."""
    variables = {}  # ident -> (name, width)
    for match in re.finditer(
            r"\$var wire (\d+) (\S+) (\S+) \$end", text):
        width, ident, name = match.groups()
        variables[ident] = (name, int(width))
    body = text.split("$enddefinitions $end\n", 1)[1]
    changes = []  # (timestamp, {name: value})
    current = None
    in_dumpvars = False
    saw_dumpvars = False
    for line in body.splitlines():
        if line.startswith("#"):
            current = (int(line[1:]), {})
            changes.append(current)
        elif line == "$dumpvars":
            in_dumpvars = True
            saw_dumpvars = True
        elif line == "$end":
            in_dumpvars = False
        elif line.startswith("b"):
            value, ident = line[1:].split()
            name, _ = variables[ident]
            current[1][name] = int(value, 2)
        elif line:
            ident = line[1:]
            name, _ = variables[ident]
            current[1][name] = int(line[0])
    assert not in_dumpvars
    return variables, changes, saw_dumpvars


def reconstruct(variables, changes):
    """Replay the change stream into full per-timestamp rows."""
    state = {}
    rows = []
    for timestamp, delta in changes:
        state.update(delta)
        rows.append((timestamp, dict(state)))
    return rows


class TestVcdExport:
    def test_wrapped_ring_keeps_true_cycle_timestamps(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count", "out"], depth=4)
        trace.run(20)
        trace.stop()
        assert trace.cycles_recorded() == [17, 18, 19, 20]
        buf = io.StringIO()
        write_vcd(trace, buf)
        _, changes, saw_dumpvars = parse_vcd(buf.getvalue())
        assert saw_dumpvars
        assert [timestamp for timestamp, _ in changes] == [17, 18, 19, 20]
        # The seed emitted the row index (#0..#3) here.
        assert changes[0][0] != 0

    def test_dumpvars_carries_every_signal(self):
        sim = counter_sim()
        trace = Trace(sim, ["count", "out", "en"]).attach()
        sim.step(5)
        trace.detach()
        buf = io.StringIO()
        write_vcd(trace, buf)
        _, changes, saw_dumpvars = parse_vcd(buf.getvalue())
        assert saw_dumpvars
        first_timestamp, initial = changes[0]
        assert first_timestamp == 0
        assert set(initial) == {"count", "out", "en"}

    def test_change_only_emission(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count", "en"], depth=None)
        trace.run(6)
        trace.stop()
        buf = io.StringIO()
        write_vcd(trace, buf)
        _, changes, _ = parse_vcd(buf.getvalue())
        # 'en' is constant: it appears in $dumpvars and never again.
        assert "en" in changes[0][1]
        assert all("en" not in delta for _, delta in changes[1:])
        assert all("count" in delta for _, delta in changes[1:])

    def test_constant_trace_emits_single_timestamp(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["en"], depth=None)
        trace.run(8)
        trace.stop()
        buf = io.StringIO()
        write_vcd(trace, buf)
        _, changes, _ = parse_vcd(buf.getvalue())
        # Timestamps with no value changes are skipped entirely.
        assert len(changes) == 1

    def test_round_trip_values_match_series(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count", "out"], depth=8)
        trace.run(25)
        trace.stop()
        buf = io.StringIO()
        write_vcd(trace, buf)
        variables, changes, _ = parse_vcd(buf.getvalue())
        rows = reconstruct(variables, changes)
        assert [cycle for cycle, _ in rows] == trace.cycles_recorded()
        assert [row["count"] for _, row in rows] == trace.series("count")

    def test_bram_output_latch_gets_true_width(self):
        b = ModuleBuilder("memtest")
        raddr = b.input("raddr", 4)
        memory = b.memory("mem", 8, 16, init={i: i * 3 for i in range(16)})
        rs = b.read_port(memory, "rdata_s", raddr, sync=True)
        b.output_expr("qs", rs)
        netlist = elaborate(b.build())
        sim = Simulator(netlist)
        assert netlist.sync_read_outputs()["rdata_s"] == 8
        sim.poke("raddr", 5)
        trace = StreamingTrace(sim, ["rdata_s"], depth=None)
        trace.run(3)
        trace.stop()
        assert trace.widths["rdata_s"] == 8
        buf = io.StringIO()
        write_vcd(trace, buf)
        variables, changes, _ = parse_vcd(buf.getvalue())
        widths = {name: width for name, width in variables.values()}
        # The seed fell back to netlist.signals.get(name, 1).
        assert widths["rdata_s"] == 8
        assert changes[-1][1]["rdata_s"] == 15

    def test_signal_widths_unions_latch_metadata(self):
        """Even for a netlist that records a sync-read latch only in
        the port metadata (not its signal table), the trace layer must
        recover the true width — the seed's 1-bit fallback corrupted
        multi-bit values in viewers."""
        from repro.rtl.waveform import signal_widths

        class StubNetlist:
            signals = {"bus": 4}

            def sync_read_outputs(self):
                return {"latch": 8}

        assert signal_widths(StubNetlist()) == {"bus": 4, "latch": 8}

    def test_viewless_trace_serializes_with_own_widths(self):
        """write_vcd must not reach for trace.simulator (lane views and
        synthetic traces have none) — widths come from the view."""
        class RowsOnly:
            signals = ["a", "b"]
            widths = {"a": 1, "b": 8}

            def iter_rows(self):
                return iter([(4, {"a": 0, "b": 200}),
                             (5, {"a": 1, "b": 201})])

        buf = io.StringIO()
        write_vcd(RowsOnly(), buf)
        variables, changes, saw_dumpvars = parse_vcd(buf.getvalue())
        widths = {name: width for name, width in variables.values()}
        assert widths == {"a": 1, "b": 8}
        assert saw_dumpvars
        assert changes[0] == (4, {"a": 0, "b": 200})

    def test_multi_domain_trace_round_trips(self):
        b = ModuleBuilder("m")
        fast = b.reg("fast", 16, clock="fast_clk")
        slow = b.reg("slow", 16, clock="slow_clk")
        b.next(fast, fast + 1)
        b.next(slow, slow + 1)
        b.output_expr("of", fast)
        b.output_expr("os", slow)
        sim = Simulator(elaborate(b.build()),
                        clocks={"fast_clk": 1000, "slow_clk": 4000})
        trace = StreamingTrace(sim, ["of", "os"], domain="fast_clk",
                               depth=8)
        trace.run(20)  # skewed schedule: per-event capture path
        trace.stop()
        buf = io.StringIO()
        write_vcd(trace, buf)
        variables, changes, _ = parse_vcd(buf.getvalue())
        rows = reconstruct(variables, changes)
        assert [cycle for cycle, _ in rows] == trace.cycles_recorded()
        assert [row["of"] for _, row in rows] == trace.series("of")
        assert [row["os"] for _, row in rows] == trace.series("os")


class TestHookTraceStructures:
    def test_depth_eviction_keeps_newest_rows(self):
        sim = counter_sim()
        trace = Trace(sim, ["count"], depth=3).attach()
        sim.step(10)
        assert len(trace) == 3
        assert trace.cycles_recorded() == [8, 9, 10]
        assert trace.rows.maxlen == 3

    def test_value_at_lookup_and_eviction(self):
        sim = counter_sim()
        trace = Trace(sim, ["count"], depth=3).attach()
        sim.step(10)
        assert trace.value_at(9, "count") == 9
        with pytest.raises(SimulationError):
            trace.value_at(2, "count")  # evicted
        with pytest.raises(SimulationError):
            trace.value_at(99, "count")  # never recorded

    def test_unbounded_value_at(self):
        sim = counter_sim()
        trace = Trace(sim, ["count"]).attach()
        sim.step(6)
        for cycle in range(7):
            assert trace.value_at(cycle, "count") == cycle
