"""Flight-recorder trigger paths, end to end.

One test per wired trigger class — command-watchdog/deadline timeout,
circuit-breaker OPEN, unhandled debugger-command exception, journal
corruption — each asserting a dump landed with the triggering event as
the *final* record of the ring (the contract post-mortem readers rely
on). Plus a chaos-campaign run asserting every injected fault class
shows up in the flight recorder's sticky event ring.
"""

import pytest

from repro.chaos import CircuitBreaker, get_supervisor
from repro.errors import (
    DebugTimeoutError,
    JournalCorruptError,
    SimulationError,
)
from repro.obs import get_registry
from repro.obs.flight import FlightRecorder, get_flight_recorder


@pytest.fixture(autouse=True)
def clean_flight():
    """The recorder is process-global; leave it as other tests expect."""
    flight = get_flight_recorder()
    flight.enabled = True
    flight.clear()
    flight.on_dump.clear()
    flight.dump_dir = None
    yield flight
    flight.enabled = True
    flight.clear()
    flight.on_dump.clear()
    flight.dump_dir = None


def _session():
    """A compiled pipeline session, the way the doctor builds one."""
    from repro.chaos.campaign import _design_builders, _fresh_session
    compiled = _design_builders()["pipeline"]()
    return _fresh_session(compiled)


class TestTriggerDumps:
    def test_deadline_timeout_dumps_with_trigger_last(self, clean_flight):
        supervisor = get_supervisor()
        error = supervisor.deadline_hit("journal.sync", 1.25, 0.5)
        assert isinstance(error, DebugTimeoutError)
        dump = clean_flight.last_dump
        assert dump is not None and dump["trigger"]["name"] == "debug.timeout"
        assert dump["trigger"]["site"] == "journal.sync"
        assert dump["records"][-1] is dump["trigger"]
        assert clean_flight.dump_count == 1

    def test_breaker_open_transition_dumps_once(self, clean_flight):
        breaker = CircuitBreaker(lambda: 0.0, threshold=2,
                                 cooldown_seconds=10.0, name="flight-br")
        breaker.record_failure()
        assert clean_flight.last_dump is None  # still CLOSED
        breaker.record_failure()
        dump = clean_flight.last_dump
        assert dump is not None and dump["trigger"]["name"] == "breaker.open"
        assert dump["trigger"]["breaker"] == "flight-br"
        assert dump["records"][-1] is dump["trigger"]
        # Failures while already OPEN must not re-dump.
        breaker.record_failure()
        assert clean_flight.dump_count == 1
        breaker.reset()

    def test_unhandled_command_exception_dumps(self, clean_flight):
        fabric, debugger = _session()
        with pytest.raises(SimulationError):
            debugger.record_input("no_such_pin", 1)
        dump = clean_flight.last_dump
        assert dump is not None
        assert dump["trigger"]["name"] == "debug.exception"
        assert dump["trigger"]["verb"] == "poke_input"
        assert dump["trigger"]["error"] == "SimulationError"
        assert dump["records"][-1] is dump["trigger"]
        # The command note that preceded the crash is in the ring too.
        kinds = [(r["kind"], r["name"]) for r in dump["records"]]
        assert ("command", "poke_input") in kinds

    def test_journal_corruption_dumps(self, clean_flight, tmp_path):
        from repro.debug.journal import read_journal
        path = tmp_path / "j.log"
        path.write_text("not-a-journal\n")
        with pytest.raises(JournalCorruptError):
            read_journal(path)
        dump = clean_flight.last_dump
        assert dump is not None
        assert dump["trigger"]["name"] == "journal.corrupt"
        assert dump["trigger"]["line"] == 1
        assert str(path) in dump["trigger"]["path"]
        assert dump["records"][-1] is dump["trigger"]
        assert get_registry().get("flight.dumps.journal.corrupt")


class TestRecorderMechanics:
    def test_disabled_recorder_notes_and_dumps_nothing(self):
        flight = FlightRecorder()
        flight.enabled = False
        assert flight.note("command", "run") is None
        assert flight.trigger("debug.timeout") is None
        assert not flight.records and flight.last_dump is None

    def test_sticky_events_survive_batch_chatter(self):
        flight = FlightRecorder(capacity=16, events_capacity=16)
        flight.note("chaos", "device_hang", site="transport.batch")
        for _ in range(64):  # 4x the record ring
            flight.note("transport", "batch", retries=0)
        assert all(r["kind"] == "transport" for r in flight.records)
        assert [e["name"] for e in flight.events] == ["device_hang"]
        dump = flight.snapshot()
        assert dump["events"][0]["name"] == "device_hang"

    def test_dump_written_to_dump_dir(self, clean_flight, tmp_path):
        import json
        clean_flight.dump_dir = tmp_path
        clean_flight.note("command", "step")
        dump = clean_flight.trigger("debug.timeout", site="unit")
        on_disk = json.loads(open(dump["path"]).read())
        assert on_disk["format"] == "zoomie-flight"
        assert on_disk["records"][-1]["name"] == "debug.timeout"

    def test_on_dump_callbacks_collect_dumps(self, clean_flight):
        collected = []
        clean_flight.on_dump.append(collected.append)
        clean_flight.trigger("debug.timeout", site="a")
        clean_flight.trigger("breaker.open", breaker="b")
        assert [d["trigger"]["name"] for d in collected] \
            == ["debug.timeout", "breaker.open"]


class TestCampaignFlightCoverage:
    def test_every_injected_fault_class_lands_in_flight(self, clean_flight,
                                                        tmp_path):
        from repro.chaos.campaign import CampaignConfig, run_campaign
        registry = get_registry()
        prefix = "chaos.faults_injected."

        def per_kind():
            return {name[len(prefix):]: registry.get(name).value
                    for name in registry.names()
                    if name.startswith(prefix)}

        before = per_kind()
        config = CampaignConfig(schedules=3, seed=7,
                                designs=("pipeline",))
        report = run_campaign(config, tmp_path)
        assert sum(o.faults_injected for o in report.outcomes) > 0

        injected = {kind for kind, value in per_kind().items()
                    if value > before.get(kind, 0)}
        assert injected, "campaign injected no faults to check against"
        seen = {e["name"] for e in clean_flight.events
                if e["kind"] == "chaos"}
        missing = injected - seen
        assert not missing, (
            f"fault class(es) {sorted(missing)} were injected but never "
            f"landed in the flight recorder's sticky ring")
