"""Tests for the bounded model checker and pause buffer verification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormalError
from repro.formal import (
    BoundedChecker,
    PauseBufferModel,
    check_pause_buffer,
    check_pause_buffer_scenarios,
)
from repro.formal.bmc import check_equivalence
from repro.interfaces import make_pause_buffer
from repro.rtl import ModuleBuilder, Simulator, elaborate, mux


def make_saturating_counter(limit=5):
    b = ModuleBuilder("sat")
    en = b.input("en", 1)
    count = b.reg("count", 4)
    at_limit = count.eq(limit)
    b.next(count, mux(en.logical_and(at_limit.logical_not()),
                      count + 1, count))
    b.output_expr("out", count)
    return elaborate(b.build())


class TestBoundedChecker:
    def test_invariant_holds(self):
        checker = BoundedChecker(make_saturating_counter())

        def invariant(sim, step):
            return None if sim.peek("out") <= 5 else \
                f"count exceeded limit: {sim.peek('out')}"

        states = checker.assert_holds(
            alphabet={"en": [0, 1]}, depth=8, invariant=invariant)
        # 2 + 4 + ... + 2^8 edges explored.
        assert states == sum(2 ** k for k in range(1, 9))

    def test_counterexample_found_with_trace(self):
        checker = BoundedChecker(make_saturating_counter())

        def invariant(sim, step):
            return None if sim.peek("out") < 3 else "reached 3"

        cex = checker.run(
            alphabet={"en": [0, 1]}, depth=8, invariant=invariant)
        assert cex is not None
        # The shortest path needs three enabled cycles.
        enabled = [step["en"] for step in cex.steps]
        assert sum(enabled) == 3
        assert "reached 3" in str(cex)

    def test_unknown_input_rejected(self):
        checker = BoundedChecker(make_saturating_counter())
        with pytest.raises(FormalError):
            checker.run(alphabet={"nope": [0, 1]}, depth=1,
                        invariant=lambda s, i: None)

    def test_fixed_inputs_applied(self):
        checker = BoundedChecker(make_saturating_counter())

        def invariant(sim, step):
            return None if sim.peek("out") == 0 else "moved"

        # With en fixed low and nothing else enumerated, count stays 0.
        checker.assert_holds(
            alphabet={}, depth=4, invariant=invariant,
            fixed_inputs={"en": 0})

    def test_equivalence_of_identical_designs(self):
        left = make_saturating_counter()
        right = make_saturating_counter()
        cex = check_equivalence(
            left, right, alphabet={"en": [0, 1]},
            outputs=["out"], depth=4)
        assert cex is None

    def test_equivalence_catches_divergence(self):
        left = make_saturating_counter(limit=5)
        right = make_saturating_counter(limit=3)
        cex = check_equivalence(
            left, right, alphabet={"en": [0, 1]},
            outputs=["out"], depth=6)
        assert cex is not None


class TestPauseBufferModel:
    def test_passthrough_when_empty(self):
        model = PauseBufferModel()
        model.step(enq_valid=True, enq_data=7, deq_ready=True,
                   enq_live=True, deq_live=True)
        assert model.delivered == [7]
        assert model.queue == []

    def test_frozen_producer_makes_no_transaction(self):
        model = PauseBufferModel()
        model.step(enq_valid=True, enq_data=7, deq_ready=True,
                   enq_live=False, deq_live=True)
        assert model.delivered == []
        assert model.accepted == []

    def test_delivery_during_producer_pause(self):
        model = PauseBufferModel()
        model.step(True, 7, False, True, True)   # accept into queue
        model.step(True, 8, True, False, True)   # producer paused
        assert model.delivered == [7]
        assert model.accepted == [7]

    def test_consumer_pause_restarts(self):
        model = PauseBufferModel()
        model.step(True, 7, True, True, False)   # consumer frozen
        assert model.delivered == []
        assert model.queue == [7]
        model.step(False, 0, True, True, True)
        assert model.delivered == [7]

    def test_conservation_invariant(self):
        model = PauseBufferModel()
        import random
        rng = random.Random(7)
        for step in range(200):
            model.step(rng.random() < 0.7, step, rng.random() < 0.6,
                       rng.random() < 0.8, rng.random() < 0.8)
            assert model.accepted == model.delivered + model.queue


class TestPauseBufferVerification:
    def test_exhaustive_bound_4_all_inputs(self):
        """Every (valid, ready, enq_live, deq_live) sequence of length 4."""
        states = check_pause_buffer(bound=4)
        assert states == sum(16 ** k for k in range(1, 5))

    def test_scenario_sweep(self):
        results = check_pause_buffer_scenarios()
        assert set(results) == {
            "free-running", "producer-pauses", "consumer-pauses"}
        assert all(count > 0 for count in results.values())

    def test_detects_seeded_bug(self):
        """A buffer that ignores enq_live must fail verification.

        This guards the verification harness itself: if the checker cannot
        see the Figure 3 bug, it proves nothing.
        """
        from repro.formal import properties as props
        from repro.rtl.flatten import elaborate as _elab

        good = make_pause_buffer
        try:
            def bad_buffer(name, width, depth=2):
                module = good(name, width, depth=depth)
                # Sabotage: rebuild deq_valid to ignore enq_live, the
                # exact Figure 3 failure mode.
                from repro.rtl.expr import BinaryOp, Const, Ref, UnaryOp
                count_ref = Ref("count", 2)
                empty = BinaryOp("==", count_ref, Const(0, 2))
                module.assigns["deq_valid_w"] = BinaryOp(
                    "||", UnaryOp("!", empty), Ref("enq_valid", 1))
                return module

            props.make_pause_buffer = bad_buffer
            with pytest.raises(FormalError):
                check_pause_buffer(bound=3)
        finally:
            props.make_pause_buffer = good


@settings(max_examples=15, deadline=None)
@given(st.lists(
    st.tuples(st.booleans(), st.booleans(), st.booleans(), st.booleans()),
    min_size=1, max_size=60))
def test_rtl_matches_model_on_random_deep_sequences(steps):
    """Randomized depth far beyond the exhaustive bound."""
    sim = Simulator(elaborate(make_pause_buffer("pb", 8)))
    model = PauseBufferModel()
    for index, (valid, ready, enq_live, deq_live) in enumerate(steps):
        data = (index + 1) & 0xFF
        sim.poke("enq_valid", int(valid))
        sim.poke("enq_data", data)
        sim.poke("deq_ready", int(ready))
        sim.poke("enq_live", int(enq_live))
        sim.poke("deq_live", int(deq_live))
        assert bool(sim.peek("enq_ready")) == model.enq_ready()
        want_valid = model.deq_valid(valid, enq_live)
        assert bool(sim.peek("deq_valid")) == want_valid
        if want_valid:
            assert sim.peek("deq_data") == model.deq_data(data)
        model.step(valid, data, ready, enq_live, deq_live)
        sim.step(1)
