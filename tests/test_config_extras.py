"""Tests for configuration-plane utilities: logic location files,
program builders, frame addressing, and the analytic cost helpers."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.config import LLEntry, LogicLocationFile
from repro.config.program import (
    build_full_bitstream,
    build_partial_bitstream,
    build_state_write,
    slr_config_order,
)
from repro.errors import DebugError, DeviceError
from repro.fpga import (
    FRAME_WORDS,
    ConfigMemory,
    FrameAddress,
    FrameSpace,
    make_test_device,
    make_u200,
    make_u250,
)
from repro.fpga.frames import BLOCK_BRAM, BLOCK_MAIN, CAPTURE_MINOR


class TestFrameAddress:
    def test_pack_unpack_roundtrip(self):
        address = FrameAddress(block_type=1, region=5, column=99, minor=14)
        assert FrameAddress.from_word(address.to_word()) == address

    @given(st.integers(0, 7), st.integers(0, 127),
           st.integers(0, 1023), st.integers(0, 127))
    def test_roundtrip_property(self, block, region, column, minor):
        address = FrameAddress(block, region, column, minor)
        assert FrameAddress.from_word(address.to_word()) == address

    def test_ordering_is_far_order(self):
        a = FrameAddress(0, 0, 0, 1)
        b = FrameAddress(0, 0, 1, 0)
        c = FrameAddress(1, 0, 0, 0)
        assert a < b < c

    def test_str_is_readable(self):
        assert "main" in str(FrameAddress(BLOCK_MAIN, 0, 3, 15))
        assert "bram" in str(FrameAddress(BLOCK_BRAM, 0, 3, 15))


class TestFrameSpace:
    def test_frame_count_matches_enumeration(self):
        space = FrameSpace(make_test_device().slr(0))
        assert space.frame_count() == len(list(space.frames()))

    def test_u200_slr_frame_count_scale(self):
        space = FrameSpace(make_u200().slr(0))
        # Main block: 103 CLB cols x 16 + 8 BRAM cols x 6, x 8 regions.
        # Content block: 8 BRAM cols x 128 + 51 SLICEM cols x 12, x 8
        # (103 logic columns alternate CLB/CLBM starting with CLB).
        expected = (103 * 16 + 8 * 6) * 8 \
            + (8 * 128 + 51 * 12) * 8
        assert space.frame_count() == expected

    def test_validate_rejects_bad_minor(self):
        space = FrameSpace(make_test_device().slr(0))
        with pytest.raises(DeviceError):
            space.validate(FrameAddress(BLOCK_MAIN, 0, 0, 99))

    def test_ff_location_is_stable_and_unique(self):
        space = FrameSpace(make_test_device().slr(0))
        seen = set()
        for row in range(10):
            for slot in range(16):
                frame, bit = space.ff_location(0, row, slot)
                assert (frame, bit) not in seen
                seen.add((frame, bit))
                assert frame.minor == CAPTURE_MINOR


class TestConfigMemory:
    def make(self):
        return ConfigMemory(FrameSpace(make_test_device().slr(0)))

    def test_unwritten_frames_read_zero(self):
        memory = self.make()
        address = FrameAddress(BLOCK_MAIN, 0, 0, 0)
        assert memory.read_frame(address) == [0] * FRAME_WORDS

    def test_write_read_roundtrip(self):
        memory = self.make()
        address = FrameAddress(BLOCK_MAIN, 0, 0, 1)
        words = list(range(FRAME_WORDS))
        memory.write_frame(address, words)
        assert memory.read_frame(address) == words

    def test_bit_access(self):
        memory = self.make()
        address = FrameAddress(BLOCK_MAIN, 0, 0, CAPTURE_MINOR)
        memory.set_bit(address, 40, 1)
        assert memory.get_bit(address, 40) == 1
        memory.set_bit(address, 40, 0)
        assert memory.get_bit(address, 40) == 0

    def test_dirty_tracking(self):
        memory = self.make()
        address = FrameAddress(BLOCK_MAIN, 0, 0, 0)
        memory.write_frame(address, [0] * FRAME_WORDS)
        assert address in memory.dirty
        taken = memory.take_dirty()
        assert taken == {address}
        assert not memory.dirty


class TestLogicLocationFile:
    def make_entry(self, name="a.b.reg", bit=3, slr=1):
        return LLEntry(name=name, bit=bit, slr=slr,
                       frame=FrameAddress(BLOCK_MAIN, 2, 7, CAPTURE_MINOR),
                       offset=123)

    def test_line_roundtrip(self):
        entry = self.make_entry()
        assert LLEntry.from_line(entry.to_line()) == entry

    def test_malformed_line_rejected(self):
        with pytest.raises(DebugError):
            LLEntry.from_line("garbage line")

    def test_dump_parse_roundtrip(self):
        ll = LogicLocationFile([
            self.make_entry("x.r", bit, slr=0) for bit in range(8)
        ])
        out = io.StringIO()
        ll.dump(out)
        parsed = LogicLocationFile.parse(io.StringIO(out.getvalue()))
        assert len(parsed) == 8
        assert parsed.by_register()["x.r"][0].bit == 0

    def test_prefix_filtering(self):
        ll = LogicLocationFile([
            self.make_entry("core.lsu.q"),
            self.make_entry("core.mmu.tlb"),
            self.make_entry("corex.other"),
        ])
        names = {e.name for e in ll.entries_under("core")}
        assert names == {"core.lsu.q", "core.mmu.tlb"}

    def test_queries(self):
        ll = LogicLocationFile([self.make_entry(slr=2)])
        assert ll.slrs_used() == {2}
        assert ll.columns_used(2) == {7}
        assert ll.regions_used(2) == {2}
        assert ll.columns_used(0) == set()


def _tiny_db():
    from repro.config import DesignDatabase
    from repro.designs import make_counter
    from repro.rtl import elaborate

    device = make_test_device()
    netlist = elaborate(make_counter(8))
    ll = LogicLocationFile()
    space = FrameSpace(device.slr(0))
    for bit in range(8):
        frame, offset = space.ff_location(0, 0, bit)
        ll.add(LLEntry(name="count", bit=bit, slr=0,
                       frame=frame, offset=offset))
    return DesignDatabase(
        name="tiny", device=device, netlist=netlist, ll=ll,
        clocks={"clk": 1000},
        frame_image={0: {}, 1: {}})


class TestProgramBuilders:
    def test_config_order_starts_at_primary(self):
        db = _tiny_db()
        order = slr_config_order(db)
        assert order[0] == db.device.primary_slr
        assert sorted(order) == list(range(db.device.slr_count))

    def test_full_bitstream_structure(self):
        from repro.bitstream import analyze_bitstream
        db = _tiny_db()
        words = build_full_bitstream(db)
        analysis = analyze_bitstream(words)
        # One section per SLR plus the wrap-back for startup.
        assert len(analysis.sections) == db.device.slr_count + 1
        assert "START" in analysis.sections[-1].commands

    def test_partial_bitstream_has_shutdown_and_mask(self):
        from repro.bitstream import analyze_bitstream
        db = _tiny_db()
        frame = FrameAddress(BLOCK_MAIN, 0, 0, 0)
        words = build_partial_bitstream(
            db, 0, {frame: [0] * FRAME_WORDS}, region_mask=0b1)
        analysis = analyze_bitstream(words)
        commands = [c for s in analysis.sections for c in s.commands]
        assert "SHUTDOWN" in commands
        assert "START" in commands
        registers = [r for s in analysis.sections
                     for r in s.registers_written]
        assert "MASK" in registers

    def test_state_write_sequence(self):
        from repro.bitstream import analyze_bitstream
        db = _tiny_db()
        frame = FrameAddress(BLOCK_MAIN, 0, 0, CAPTURE_MINOR)
        words = build_state_write(db, 0, {frame: [0] * FRAME_WORDS})
        analysis = analyze_bitstream(words)
        commands = [c for s in analysis.sections for c in s.commands]
        assert "GRESTORE" in commands
        assert "WCFG" in commands


class TestDeviceCatalog:
    def test_u200_and_u250_slr_counts(self):
        assert make_u200().slr_count == 3
        assert make_u250().slr_count == 4

    def test_u200_totals_near_official(self):
        totals = make_u200().totals()
        assert abs(totals["LUT"] - 1_182_240) / 1_182_240 < 0.02
        assert abs(totals["FF"] - 2_364_480) / 2_364_480 < 0.02
        assert abs(totals["BRAM"] - 2_160) / 2_160 < 0.08

    def test_catalog_lookup(self):
        from repro.fpga import get_device
        assert get_device("U200").name == "U200"
        assert get_device("TEST3").slr_count == 3
        with pytest.raises(DeviceError):
            get_device("NOPE")

    def test_utilization_rejects_unknown_kind(self):
        with pytest.raises(DeviceError):
            make_u200().utilization({"URAM": 5})

    def test_primary_is_middle_slr(self):
        # Table 3: "SLR 1, which controls the other two SLRs".
        assert make_u200().primary_slr == 1
