"""Behavioural tests for the evaluation designs themselves."""

import pytest

from repro.designs import (
    make_ariane_core,
    make_beehive_stack,
    make_cluster,
    make_cohort_soc,
    make_counter,
    make_manycore_soc,
    make_pipeline,
    make_serv_core,
)
from repro.designs.ariane import (
    CAUSE_ECALL,
    CAUSE_INSTR_FAULT,
    IMEM_WORDS,
    OP_ADD,
    OP_ECALL,
    hang_program,
    healthy_program,
)
from repro.rtl import Simulator, elaborate


class TestServCore:
    def make_sim(self):
        sim = Simulator(elaborate(make_serv_core()))
        sim.poke("done_ready", 1)
        return sim

    def test_fetch_execute_retire_cycle(self):
        sim = self.make_sim()
        sim.poke("imem_valid", 1)
        sim.poke("imem_data", 5)
        # FETCH accepts, then 16 EXEC cycles, then RETIRE.
        sim.step(1)
        assert sim.peek("state") == 1  # executing
        sim.step(16)
        assert sim.peek("state") == 2  # retiring
        assert sim.peek("done_valid") == 1
        sim.step(1)
        assert sim.peek("state") == 0
        assert sim.peek("instret") == 1

    def test_serial_accumulation(self):
        sim = self.make_sim()
        total = 0
        for word in (5, 7, 100):
            total = (total + word) & 0xFFFF
            sim.poke("imem_valid", 1)
            sim.poke("imem_data", word)
            sim.step(1)          # fetch
            sim.poke("imem_valid", 0)
            sim.step(16)         # serial execute
            assert sim.peek("done_data") == total
            sim.step(1)          # retire

    def test_retirement_writes_register_file(self):
        sim = self.make_sim()
        sim.poke("imem_valid", 1)
        sim.poke("imem_data", 42)
        sim.step(18)
        assert sim.read_memory("rf", 0) == 42

    def test_backpressure_holds_retire(self):
        sim = self.make_sim()
        sim.poke("done_ready", 0)
        sim.poke("imem_valid", 1)
        sim.poke("imem_data", 1)
        sim.step(25)
        assert sim.peek("state") == 2  # stuck in retire
        sim.poke("done_ready", 1)
        sim.step(1)
        assert sim.peek("state") == 0


class TestManycore:
    def test_cluster_distributes_and_counts(self):
        cluster = make_cluster(cores=2, imem_depth=64)
        sim = Simulator(elaborate(cluster))
        sim.poke("en", 1)
        sim.step(120)
        assert sim.peek("retired_count") >= 2
        assert sim.peek("busy_any") == 1

    def test_soc_runs_and_retires(self):
        soc = make_manycore_soc(4, 2, imem_depth=64)
        sim = Simulator(elaborate(soc))
        sim.poke("en", 1)
        sim.step(150)
        assert sim.peek("tile0.retired") >= 2
        assert sim.peek("any_busy") == 1

    def test_invalid_core_split_rejected(self):
        with pytest.raises(ValueError):
            make_manycore_soc(10, 3)

    def test_definitions_are_shared(self):
        soc = make_manycore_soc(5400)
        assert len(soc.submodules()) == 2  # cluster + core


class TestAriane:
    def run_core(self, program, cycles=100):
        sim = Simulator(elaborate(make_ariane_core(imem_init=program)))
        sim.poke("resetn", 0)
        sim.step(2)
        sim.poke("resetn", 1)
        sim.step(cycles)
        return sim

    def test_straight_line_execution(self):
        sim = self.run_core(((0, (3 << 8) | OP_ADD),
                             (1, (4 << 8) | OP_ADD)), cycles=10)
        assert sim.peek("acc_out") == 7
        assert sim.peek("instret_out") >= 2

    def test_ecall_takes_exception_with_cause(self):
        sim = self.run_core(((0, OP_ECALL),), cycles=6)
        assert sim.peek("mcause_out") == CAUSE_ECALL
        assert sim.peek("exception_out") in (0, 1)

    def test_fetch_fault_cause(self):
        # Jump beyond imem: instruction access fault.
        from repro.designs.ariane import OP_JUMP
        sim = self.run_core(
            ((0, (0x1F0 << 8) | OP_JUMP),), cycles=8)
        assert sim.peek("mcause_out") == CAUSE_INSTR_FAULT

    def test_hang_program_reaches_deep_nesting(self):
        sim = self.run_core(hang_program(), cycles=60)
        assert sim.peek("MIE") == 0
        assert sim.peek("MPIE") == 0
        assert sim.peek("pc_out") == sim.peek("mepc_out")
        assert sim.peek("pc_out") >= IMEM_WORDS

    def test_healthy_program_keeps_retiring(self):
        sim = self.run_core(healthy_program(), cycles=120)
        assert sim.peek("instret_out") > 40
        assert sim.peek("MPIE") == 1

    def test_ballast_scales_resources(self):
        from repro.vendor import synthesize
        lean = synthesize(make_ariane_core(attach_assertions=False),
                          opt="none").totals
        full = synthesize(
            make_ariane_core(attach_assertions=False, ballast_lanes=164),
            opt="none").totals
        assert full.lut > 30 * lean.lut / 2
        assert 30_000 <= full.lut <= 55_000
        assert 3_000 <= full.ff <= 8_000

    def test_bundled_assertions_hold_during_normal_run(self):
        """The 7 synthesizable SVAs must not fire on healthy software."""
        from repro.sva import SoftwareChecker
        core = make_ariane_core(imem_init=healthy_program())
        netlist = elaborate(core)
        sim = Simulator(netlist)
        checkers = [
            SoftwareChecker(text, sim, prefix=prefix).attach()
            for prefix, text in netlist.assertions
        ]
        sim.poke("resetn", 0)
        sim.step(2)
        sim.poke("resetn", 1)
        sim.step(150)
        for checker in checkers:
            assert checker.ok(), checker.property.name


class TestCohort:
    def test_fixed_soc_streams_results(self):
        sim = Simulator(elaborate(make_cohort_soc(with_bug=False)))
        sim.poke("en", 1)
        sim.step(200)
        assert sim.peek("results") > 20

    def test_buggy_soc_hangs_after_partial_result(self):
        sim = Simulator(elaborate(make_cohort_soc(with_bug=True)))
        sim.poke("en", 1)
        sim.step(200)
        assert sim.peek("results") == 1  # part of the result, then hang
        stuck = sim.peek("issued")
        sim.step(100)
        assert sim.peek("issued") == stuck

    def test_bug_signature_in_state(self):
        sim = Simulator(elaborate(make_cohort_soc(with_bug=True)))
        sim.poke("en", 1)
        sim.step(200)
        # The MMU served the store channel (tlb_sel_r == 1) but the
        # store queue still waits: the dropped id term.
        assert sim.peek("mmu.tlb_sel_r") == 1
        assert sim.peek("lsu.store_pending") == 1


class TestBeehive:
    def drive_frame(self, sim, frame_id, beats=4, gap=2):
        for beat in range(beats):
            sim.poke("phy_valid", 1)
            sim.poke("phy_data", (frame_id << 8) | beat)
            sim.poke("phy_last", int(beat == beats - 1))
            sim.poke("phy_err", 0)
            sim.step(1)
        sim.poke("phy_valid", 0)
        sim.step(gap)

    def test_frames_flow_end_to_end(self):
        sim = Simulator(elaborate(make_beehive_stack()))
        sim.poke("app_ready", 1)
        for frame in range(6):
            self.drive_frame(sim, frame)
        sim.step(5)
        assert sim.peek("frames") == 6
        assert sim.peek("drops") == 0

    def test_stalled_app_drops_whole_frames(self):
        sim = Simulator(elaborate(make_beehive_stack()))
        sim.poke("app_ready", 0)
        for frame in range(8):
            self.drive_frame(sim, frame, gap=0)
        assert sim.peek("drops") >= 1
        delivered_before = sim.peek("frames")
        # Un-stall: remaining buffered frames drain, dropped ones are
        # gone for good.
        sim.poke("app_ready", 1)
        sim.step(30)
        assert sim.peek("frames") > delivered_before
        assert sim.peek("frames") + sim.peek("drops") <= 8

    def test_error_beats_counted(self):
        sim = Simulator(elaborate(make_beehive_stack()))
        sim.poke("app_ready", 1)
        sim.poke("phy_valid", 1)
        sim.poke("phy_data", 1)
        sim.poke("phy_err", 1)
        sim.poke("phy_last", 1)
        sim.step(1)
        sim.poke("phy_valid", 0)
        sim.step(6)
        assert sim.peek("errors") == 1


class TestSmallDesigns:
    def test_counter_assertion_attached(self):
        counter = make_counter(8)
        assert len(counter.assertions) == 1

    def test_pipeline_depth_adds_stage_indices(self):
        sim = Simulator(elaborate(make_pipeline(depth=3, width=16)))
        sim.poke("in_valid", 1)
        sim.poke("in_data", 10)
        sim.poke("out_ready", 1)
        sim.step(5)
        assert sim.peek("out_data") == 10 + 1 + 2 + 3

    def test_pipeline_stalls_without_ready(self):
        sim = Simulator(elaborate(make_pipeline(depth=2)))
        sim.poke("in_valid", 1)
        sim.poke("in_data", 1)
        sim.poke("out_ready", 0)
        sim.step(10)
        assert sim.peek("out_valid") == 1
        assert sim.peek("in_ready") == 0  # full, backpressure
