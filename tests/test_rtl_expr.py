"""Unit and property tests for the RTL expression AST."""

import pytest
from hypothesis import given, strategies as st

from repro._bits import mask, to_signed, truncate
from repro.errors import WidthError
from repro.rtl import (
    BinaryOp, Concat, Const, Mux, Ref, Repl, Slice, UnaryOp,
    cat, mux, reduce_and, reduce_or, reduce_xor,
)
from repro.rtl._codegen import compile_expr


def c(value, width=8):
    return Const(value, width)


def r(name, width=8):
    return Ref(name, width)


class TestConst:
    def test_truncates_to_width(self):
        assert Const(0x1FF, 8).value == 0xFF

    def test_zero_width_rejected(self):
        with pytest.raises(WidthError):
            Const(1, 0)

    def test_eval_ignores_env(self):
        assert c(42).eval({}) == 42


class TestArithmetic:
    def test_add_wraps(self):
        expr = c(200) + c(100)
        assert expr.eval({}) == (300 & 0xFF)

    def test_sub_wraps(self):
        expr = c(1) - c(2)
        assert expr.eval({}) == 0xFF

    def test_mul_truncates(self):
        expr = c(16) * c(16)
        assert expr.eval({}) == 0

    def test_int_literal_coercion(self):
        expr = r("a") + 1
        assert expr.eval({"a": 5}) == 6

    def test_width_mismatch_rejected(self):
        with pytest.raises(WidthError):
            BinaryOp("+", c(1, 8), c(1, 4))

    def test_neg(self):
        assert UnaryOp("-", c(1)).eval({}) == 0xFF


class TestBitwise:
    def test_and_or_xor(self):
        assert (c(0b1100) & c(0b1010)).eval({}) == 0b1000
        assert (c(0b1100) | c(0b1010)).eval({}) == 0b1110
        assert (c(0b1100) ^ c(0b1010)).eval({}) == 0b0110

    def test_invert_masks(self):
        assert (~c(0, 4)).eval({}) == 0xF

    def test_shifts(self):
        assert (c(1) << 3).eval({}) == 8
        assert (c(8) >> 3).eval({}) == 1

    def test_oversized_shift_gives_zero(self):
        assert (c(1) << 9).eval({}) == 0
        assert (c(0x80) >> 9).eval({}) == 0

    def test_arithmetic_shift_preserves_sign(self):
        expr = BinaryOp(">>>", c(0x80), Const(2, 3))
        assert expr.eval({}) == 0xE0


class TestComparisons:
    def test_eq_ne(self):
        assert c(5).eq(5).eval({}) == 1
        assert c(5).ne(5).eval({}) == 0

    def test_unsigned_order(self):
        assert c(0xFF).gt(c(1)).eval({}) == 1

    def test_signed_order(self):
        # 0xFF is -1 signed, so it is less than 1.
        assert c(0xFF).slt(c(1)).eval({}) == 1
        assert c(0xFF).sgt(c(1)).eval({}) == 0

    def test_compare_width_is_one(self):
        assert c(5).eq(5).width == 1


class TestLogical:
    def test_and_or_not(self):
        t, f = Const(1, 1), Const(0, 1)
        assert t.logical_and(f).eval({}) == 0
        assert t.logical_or(f).eval({}) == 1
        assert t.logical_not().eval({}) == 0

    def test_requires_one_bit(self):
        with pytest.raises(WidthError):
            BinaryOp("&&", c(1, 8), c(1, 8))


class TestStructural:
    def test_slice(self):
        assert Slice(c(0b1101_0110), 5, 2).eval({}) == 0b0101

    def test_slice_out_of_range(self):
        with pytest.raises(WidthError):
            Slice(c(0), 8, 0)

    def test_getitem_sugar(self):
        expr = r("a")
        assert expr[7:4].eval({"a": 0xAB}) == 0xA
        assert expr[0].eval({"a": 1}) == 1

    def test_concat_order(self):
        # First part is most significant.
        expr = cat(Const(0xA, 4), Const(0xB, 4))
        assert expr.eval({}) == 0xAB
        assert expr.width == 8

    def test_repl(self):
        assert Repl(Const(0b10, 2), 3).eval({}) == 0b101010

    def test_mux(self):
        expr = mux(Ref("sel", 1), c(10), c(20))
        assert expr.eval({"sel": 1}) == 10
        assert expr.eval({"sel": 0}) == 20

    def test_mux_arm_width_mismatch(self):
        with pytest.raises(WidthError):
            Mux(Const(1, 1), c(1, 8), c(1, 4))


class TestReductions:
    def test_reduce_and(self):
        assert reduce_and(c(0xFF)).eval({}) == 1
        assert reduce_and(c(0xFE)).eval({}) == 0

    def test_reduce_or(self):
        assert reduce_or(c(0)).eval({}) == 0
        assert reduce_or(c(1)).eval({}) == 1

    def test_reduce_xor_parity(self):
        assert reduce_xor(c(0b0111)).eval({}) == 1
        assert reduce_xor(c(0b0110)).eval({}) == 0


class TestTreeUtilities:
    def test_signals_collects_refs(self):
        expr = (r("a") + r("b")).eq(r("c"))
        assert expr.signals() == {"a", "b", "c"}

    def test_substitute_renames(self):
        expr = r("a") + r("b")
        renamed = expr.substitute(lambda ref: Ref("x." + ref.name, ref.width))
        assert renamed.signals() == {"x.a", "x.b"}
        # Original is untouched (expressions are immutable values).
        assert expr.signals() == {"a", "b"}

    def test_substitute_identity_returns_same_object(self):
        expr = r("a") + r("b")
        assert expr.substitute(lambda ref: None) is expr

    def test_node_count(self):
        assert (r("a") + r("b")).node_count() == 3


# ---------------------------------------------------------------------------
# Property tests: compiled evaluation must match AST evaluation exactly.
# ---------------------------------------------------------------------------

_WIDTH = 8


@st.composite
def expr_trees(draw, depth=0):
    """Random well-formed expression trees over signals a, b (8-bit)."""
    if depth > 3 or draw(st.booleans()):
        leaf = draw(st.sampled_from(["const", "a", "b"]))
        if leaf == "const":
            return Const(draw(st.integers(0, 255)), _WIDTH)
        return Ref(leaf, _WIDTH)
    kind = draw(st.sampled_from(
        ["add", "sub", "mul", "and", "or", "xor", "eq", "lt", "slt",
         "shl", "shr", "sra", "not", "neg", "rand", "ror", "rxor",
         "mux", "slice", "concat", "repl"]))
    a = draw(expr_trees(depth=depth + 1))
    if kind in ("not",):
        return ~a
    if kind == "neg":
        return UnaryOp("-", a)
    if kind in ("rand", "ror", "rxor"):
        fn = {"rand": reduce_and, "ror": reduce_or, "rxor": reduce_xor}[kind]
        return Concat((Const(0, _WIDTH - 1), fn(a)))
    if kind == "slice":
        high = draw(st.integers(0, a.width - 1))
        low = draw(st.integers(0, high))
        sliced = Slice(a, high, low)
        # Keep widths uniform so parents can combine results.
        pad = _WIDTH - sliced.width
        return Concat((Const(0, pad), sliced)) if pad else sliced
    if kind == "repl":
        return Slice(Repl(a, 2), _WIDTH - 1, 0)
    b = draw(expr_trees(depth=depth + 1))
    if kind == "concat":
        return Slice(Concat((a, b)), _WIDTH - 1, 0)
    if kind == "mux":
        sel = draw(expr_trees(depth=depth + 1))
        return Mux(sel.as_bool(), a, b)
    ops = {"add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|",
           "xor": "^", "shl": "<<", "shr": ">>", "sra": ">>>"}
    cmp_ops = {"eq": "==", "lt": "<", "slt": "<s"}
    if kind in cmp_ops:
        bit = BinaryOp(cmp_ops[kind], a, b)
        return Concat((Const(0, _WIDTH - 1), bit))
    if kind in ("shl", "shr", "sra"):
        amount = Const(draw(st.integers(0, 9)), 4)
        return BinaryOp(ops[kind], a, amount)
    return BinaryOp(ops[kind], a, b)


@given(expr_trees(), st.integers(0, 255), st.integers(0, 255))
def test_compiled_eval_matches_ast_eval(expr, a, b):
    env = {"a": a, "b": b}
    assert compile_expr(expr)(env) == expr.eval(env)


@given(expr_trees(), st.integers(0, 255), st.integers(0, 255))
def test_eval_stays_in_width(expr, a, b):
    env = {"a": a, "b": b}
    assert 0 <= expr.eval(env) <= mask(expr.width)


@given(st.integers(0, 255), st.integers(0, 255))
def test_signed_compare_matches_python(a, b):
    expr = BinaryOp("<s", Ref("a", 8), Ref("b", 8))
    expected = 1 if to_signed(a, 8) < to_signed(b, 8) else 0
    assert expr.eval({"a": a, "b": b}) == expected


@given(st.integers(-1000, 1000), st.integers(1, 16))
def test_truncate_roundtrip(value, width):
    assert truncate(truncate(value, width), width) == truncate(value, width)
