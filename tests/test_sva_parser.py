"""Tests for the SVA lexer, parser, and feature analysis (Table 4)."""

import pytest

from repro.errors import SvaSyntaxError, UnsynthesizableError
from repro.sva import analyze_features, parse_assertion
from repro.sva.ast import (
    BoolBinary,
    BoolCall,
    BoolId,
    BoolIndex,
    BoolNum,
    PropImplication,
    PropSeq,
    SeqBinary,
    SeqBool,
    SeqDelay,
    SeqRepeat,
)
from repro.sva.features import SUPPORT_TABLE, assert_synthesizable, support_level
from repro.sva.lexer import tokenize


class TestLexer:
    def test_operators_longest_first(self):
        kinds = [t.text for t in tokenize("a |-> b |=> c ## d")[:-1]]
        assert "|->" in kinds and "|=>" in kinds and "##" in kinds

    def test_based_literals(self):
        token = tokenize("8'hFF")[0]
        assert token.value == 255
        assert token.width == 8

    def test_binary_literal(self):
        token = tokenize("4'b1010")[0]
        assert token.value == 10

    def test_four_state_literal_rejected(self):
        with pytest.raises(SvaSyntaxError):
            tokenize("4'b10xz")

    def test_hierarchical_identifier(self):
        token = tokenize("core.lsu.valid")[0]
        assert token.text == "core.lsu.valid"

    def test_system_function_name(self):
        tokens = tokenize("$past(a, 2)")
        assert tokens[0].text == "$past"

    def test_comments_skipped(self):
        tokens = tokenize("a // comment\n /* block */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_junk_rejected(self):
        with pytest.raises(SvaSyntaxError):
            tokenize("a ` b")


class TestParserShapes:
    def test_paper_running_example(self):
        prop = parse_assertion(
            "ack_valid: assert property "
            "(@(posedge clk) disable iff (!resetn) valid |-> ##1 ack);")
        assert prop.name == "ack_valid"
        assert prop.clock == "clk"
        assert prop.clock_edge == "posedge"
        assert prop.disable is not None
        body = prop.body
        assert isinstance(body, PropImplication)
        assert body.overlapping
        assert isinstance(body.antecedent, SeqBool)
        delay = body.consequent
        assert isinstance(delay, SeqDelay)
        assert delay.left is None and delay.lo == 1 and delay.hi == 1

    def test_paper_single_hash_spelling(self):
        # The paper's snippet writes "#1" for the delay; we accept it.
        prop = parse_assertion(
            "assert property (@(posedge clk) valid |-> #1 ack);")
        assert isinstance(prop.body, PropImplication)

    def test_immediate_assertion(self):
        prop = parse_assertion("assert (A == B);")
        assert prop.immediate
        body = prop.body
        assert isinstance(body, PropSeq)
        assert isinstance(body.seq.expr, BoolBinary)

    def test_nonoverlapping_implication(self):
        prop = parse_assertion("assert property (req |=> gnt);")
        assert isinstance(prop.body, PropImplication)
        assert not prop.body.overlapping

    def test_fixed_delay(self):
        prop = parse_assertion("assert property (a ##2 b);")
        seq = prop.body.seq
        assert isinstance(seq, SeqDelay)
        assert seq.lo == seq.hi == 2

    def test_delay_range(self):
        prop = parse_assertion("assert property (a ##[1:3] b);")
        seq = prop.body.seq
        assert seq.lo == 1 and seq.hi == 3

    def test_empty_delay_range_rejected(self):
        with pytest.raises(SvaSyntaxError):
            parse_assertion("assert property (a ##[3:1] b);")

    def test_consecutive_repetition(self):
        prop = parse_assertion("assert property ((a ##1 b)[*2] |-> c);")
        rep = prop.body.antecedent
        assert isinstance(rep, SeqRepeat)
        assert rep.lo == rep.hi == 2
        assert rep.kind == "consecutive"

    def test_sequence_and(self):
        prop = parse_assertion("assert property (a and b |-> c);")
        assert isinstance(prop.body.antecedent, SeqBinary)
        assert prop.body.antecedent.op == "and"

    def test_bit_select(self):
        prop = parse_assertion("assert property (mcause[63] == 0 |-> x);")
        atom = prop.body.antecedent.expr
        assert isinstance(atom, BoolBinary)
        assert isinstance(atom.left, BoolIndex)
        assert atom.left.high == 63

    def test_past_call(self):
        prop = parse_assertion("assert property ($past(a, 2) |-> b);")
        call = prop.body.antecedent.expr
        assert isinstance(call, BoolCall)
        assert call.func == "$past"
        assert isinstance(call.args[1], BoolNum)

    def test_label_optional(self):
        prop = parse_assertion("assert property (a |-> b);")
        assert prop.name is None

    def test_trailing_junk_rejected(self):
        with pytest.raises(SvaSyntaxError):
            parse_assertion("assert property (a |-> b); extra")

    def test_local_variable_rejected(self):
        with pytest.raises(UnsynthesizableError) as info:
            parse_assertion(
                "assert property (valid ##1 x = data |-> done);")
        assert info.value.feature == "local-variable"

    def test_async_reset_clocking_rejected(self):
        with pytest.raises(UnsynthesizableError) as info:
            parse_assertion(
                "assert property (@(posedge clk or posedge rst) a |-> b);")
        assert info.value.feature == "async-reset"

    def test_first_match_parses(self):
        prop = parse_assertion(
            "assert property (first_match(a ##[1:2] b) |-> c);")
        assert "first-match" in prop.features()

    def test_unbounded_delay_parses_with_feature(self):
        prop = parse_assertion("assert property (a ##[1:$] b |-> c);")
        assert "unbounded-delay" in prop.features()

    def test_paper_case_study_2_condition(self):
        # Section 5.6: breakpoint on mcause[63]==0 && MIE==0 && MPIE==0.
        prop = parse_assertion(
            "assert property (@(posedge clk) "
            "!(mcause[63] == 0 && MIE == 0 && MPIE == 0));")
        assert prop.identifiers() == {"mcause", "MIE", "MPIE"}


class TestFeatureAnalysis:
    def test_table4_rows_exist(self):
        expected = {
            "immediate", "system-functions", "clocking", "implication",
            "fixed-delay", "delay-range", "repetition",
            "sequence-operator", "local-variable", "async-reset",
            "first-match",
        }
        assert set(SUPPORT_TABLE) == expected

    def test_support_levels_match_paper(self):
        assert support_level("immediate") == "full"
        assert support_level("system-functions") == "full"
        assert support_level("clocking") == "single clock"
        assert support_level("implication") == "full"
        assert support_level("fixed-delay") == "full"
        assert support_level("delay-range") == "finite"
        assert support_level("repetition") == "only consecutive"
        assert support_level("sequence-operator") == "finite"
        assert support_level("local-variable") == "unsupported"
        assert support_level("async-reset") == "unsupported"
        assert support_level("first-match") == "unsupported"

    def test_synthesizable_assertion(self):
        report = analyze_features(
            "assert property (@(posedge clk) valid |-> ##1 ack);")
        assert report.synthesizable
        assert "implication" in report.features

    def test_isunknown_not_synthesizable(self):
        report = analyze_features(
            "assert property (@(posedge clk) !$isunknown(data));")
        assert report.parsed
        assert not report.synthesizable
        assert "$isunknown" in report.unsupported

    def test_local_variable_not_synthesizable(self):
        report = analyze_features(
            "assert property (valid ##1 x = data |-> done);")
        assert not report.synthesizable
        assert "local-variable" in report.unsupported

    def test_first_match_not_synthesizable(self):
        report = analyze_features(
            "assert property (first_match(a ##[1:2] b) |-> c);")
        assert not report.synthesizable

    def test_unbounded_not_synthesizable(self):
        report = analyze_features("assert property (a ##[1:$] b |-> c);")
        assert not report.synthesizable

    def test_syntax_error_reported(self):
        report = analyze_features("assert property (a |->);")
        assert not report.parsed
        assert "syntax error" in report.reason

    def test_assert_synthesizable_raises_with_reason(self):
        with pytest.raises(UnsynthesizableError):
            assert_synthesizable(
                "assert property (first_match(a) |-> b);")
