"""Unit tests for the write-ahead command journal and the
content-addressed snapshot store — framing, modeled durability, torn
tails, interior corruption, and store integrity checks."""

import pytest

from repro.debug import (
    CommandJournal,
    JournalRecord,
    SnapshotStore,
    StateSnapshot,
    read_journal,
)
from repro.debug.journal import JOURNAL_MAGIC, frame_record, payload_crc
from repro.errors import (
    JournalCorruptError,
    JournalError,
    SnapshotIntegrityError,
)


class TestFraming:
    def test_frame_roundtrip(self, tmp_path):
        journal = CommandJournal(tmp_path / "j.log")
        journal.append("pause")
        journal.append("write_state", {"updates": {"a.b": 5}})
        records, torn = read_journal(tmp_path / "j.log")
        assert not torn
        assert [r.command for r in records] == ["pause", "write_state"]
        assert records[1].args == {"updates": {"a.b": 5}}
        assert [r.index for r in records] == [0, 1]

    def test_payload_is_canonical(self):
        a = JournalRecord(0, "x", {"b": 1, "a": 2})
        b = JournalRecord(0, "x", {"a": 2, "b": 1})
        assert a.payload() == b.payload()
        assert payload_crc(a.payload()) == payload_crc(b.payload())

    def test_describe_names_command_and_args(self):
        record = JournalRecord(3, "step", {"cycles": 5, "force": False})
        text = record.describe()
        assert "#3" in text and "step" in text and "cycles=5" in text

    def test_unjournalable_args_rejected(self, tmp_path):
        journal = CommandJournal(tmp_path / "j.log")
        with pytest.raises(JournalError):
            journal.append("bad", {"obj": object()})
        # the failed append must not burn an index
        journal.append("pause")
        assert journal.records()[-1].index == 0


class TestDurability:
    def test_sync_every_batches_durability(self, tmp_path):
        journal = CommandJournal(tmp_path / "j.log", sync_every=3)
        journal.append("a")
        journal.append("b")
        assert journal.count == 2
        assert journal.durable_count == 0
        journal.append("c")  # third append hits the sync point
        assert journal.durable_count == 3

    def test_drop_pending_models_crash(self, tmp_path):
        journal = CommandJournal(tmp_path / "j.log", sync_every=10)
        journal.append("a")
        journal.sync()
        journal.append("b")
        journal.append("c")
        lost = journal.drop_pending()
        assert lost == 2
        records, _ = read_journal(tmp_path / "j.log")
        assert [r.command for r in records] == ["a"]
        # the next record reuses the abandoned index
        journal.append("d")
        journal.sync()
        assert [r.command for r in journal.records()] == ["a", "d"]

    def test_reopen_continues_indices(self, tmp_path):
        CommandJournal(tmp_path / "j.log").append("a")
        journal = CommandJournal(tmp_path / "j.log")
        journal.append("b")
        records, _ = read_journal(tmp_path / "j.log")
        assert [(r.index, r.command) for r in records] == [(0, "a"),
                                                           (1, "b")]

    def test_sync_every_must_be_positive(self, tmp_path):
        with pytest.raises(JournalError):
            CommandJournal(tmp_path / "j.log", sync_every=0)


class TestTornTail:
    def make(self, tmp_path, commands=("a", "b", "c")):
        journal = CommandJournal(tmp_path / "j.log")
        for command in commands:
            journal.append(command)
        return tmp_path / "j.log"

    def test_unterminated_final_line_is_torn(self, tmp_path):
        path = self.make(tmp_path)
        text = path.read_text()
        path.write_text(text[:-10])  # mid-record, no newline
        records, torn = read_journal(path)
        assert torn
        assert [r.command for r in records] == ["a", "b"]

    def test_short_payload_with_newline_is_torn(self, tmp_path):
        path = self.make(tmp_path)
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][:-4]  # shorter than the framed length
        path.write_text("\n".join(lines) + "\n")
        records, torn = read_journal(path)
        assert torn
        assert [r.command for r in records] == ["a", "b"]

    def test_reopen_rewrites_torn_tail(self, tmp_path):
        path = self.make(tmp_path)
        path.write_text(path.read_text()[:-10])
        journal = CommandJournal(path)
        journal.append("d")
        records, torn = read_journal(path)
        assert not torn
        assert [r.command for r in records] == ["a", "b", "d"]


class TestInteriorCorruption:
    def make(self, tmp_path):
        journal = CommandJournal(tmp_path / "j.log")
        for command in ("a", "b", "c"):
            journal.append(command)
        return tmp_path / "j.log"

    def test_damaged_interior_record_raises(self, tmp_path):
        path = self.make(tmp_path)
        lines = path.read_text().splitlines()
        # flip one payload character of the middle record
        line = lines[2]
        lines[2] = line[:-1] + ("X" if line[-1] != "X" else "Y")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError) as info:
            read_journal(path)
        assert info.value.line == 3

    def test_bad_magic_raises(self, tmp_path):
        path = self.make(tmp_path)
        path.write_text("not-a-journal\n" +
                        "\n".join(path.read_text().splitlines()[1:]) +
                        "\n")
        with pytest.raises(JournalCorruptError):
            read_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = self.make(tmp_path)
        lines = path.read_text().splitlines()
        del lines[2]  # remove the middle (durable) record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError, match="sequence gap"):
            read_journal(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(JournalError):
            read_journal(tmp_path / "absent.log")

    def test_reframed_garbage_payload_raises(self, tmp_path):
        path = self.make(tmp_path)
        payload = "not json at all"
        line = (f"{len(payload.encode()):08x} "
                f"{payload_crc(payload):08x} {payload}")
        lines = path.read_text().splitlines()
        lines[2] = line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError, match="not JSON"):
            read_journal(path)


def snap(**values):
    return StateSnapshot(values=values or {"core.pc": 0x10},
                         memories={"rf": [1, 2, 3]}, cycle=7,
                         label="x")


class TestSnapshotStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        original = snap()
        key = store.put(original)
        loaded = store.get(key)
        assert loaded.values == original.values
        assert loaded.memories == original.memories
        assert loaded.content_key() == key

    def test_content_addressing_dedupes(self, tmp_path):
        store = SnapshotStore(tmp_path)
        key1 = store.put(StateSnapshot(values={"a": 1}, cycle=5,
                                       label="early"))
        key2 = store.put(StateSnapshot(values={"a": 1}, cycle=99,
                                       label="late"))
        # label/cycle are excluded from the content key: same state,
        # same object
        assert key1 == key2
        assert store.keys() == [key1]

    def test_missing_key(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with pytest.raises(SnapshotIntegrityError) as info:
            store.get("0" * 64)
        assert info.value.kind == "missing"

    def test_truncation_detected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        key = store.put(snap())
        path = store._path(key)
        path.write_text(path.read_text()[:-20])
        with pytest.raises(SnapshotIntegrityError) as info:
            store.get(key)
        assert info.value.kind == "truncated"

    def test_appended_bytes_detected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        key = store.put(snap())
        path = store._path(key)
        path.write_text(path.read_text() + "junk")
        with pytest.raises(SnapshotIntegrityError) as info:
            store.get(key)
        assert info.value.kind == "truncated"

    def test_bit_rot_detected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        key = store.put(snap())
        path = store._path(key)
        text = path.read_text()
        # flip one body character without changing the length
        index = text.index('"core.pc"') + 2
        flipped = text[:index] + ("x" if text[index] != "x" else "y") \
            + text[index + 1:]
        path.write_text(flipped)
        with pytest.raises(SnapshotIntegrityError) as info:
            store.get(key)
        assert info.value.kind == "checksum"

    def test_misfiled_object_detected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        key = store.put(snap())
        other = "f" * 64
        store._path(key).rename(store._path(other))
        with pytest.raises(SnapshotIntegrityError) as info:
            store.get(other)
        assert info.value.kind == "key"

    def test_verify_and_verify_all(self, tmp_path):
        store = SnapshotStore(tmp_path)
        good = store.put(snap())
        bad = store.put(snap(other=42))
        path = store._path(bad)
        path.write_text(path.read_text()[:-10])
        assert store.verify(good) is None
        assert isinstance(store.verify(bad), SnapshotIntegrityError)
        audit = store.verify_all()
        assert audit[good] is None and audit[bad] is not None

    def test_delete(self, tmp_path):
        store = SnapshotStore(tmp_path)
        key = store.put(snap())
        assert key in store
        assert store.delete(key)
        assert key not in store
        assert not store.delete(key)

    def test_header_magic_checked(self, tmp_path):
        store = SnapshotStore(tmp_path)
        key = store.put(snap())
        path = store._path(key)
        body = path.read_text().split("\n", 1)[1]
        path.write_text("wrong-magic 00000001 00000001\n" + body)
        with pytest.raises(SnapshotIntegrityError):
            store.get(key)
