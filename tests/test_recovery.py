"""Crash-safe session tests: injected crashes, deterministic recovery,
divergence detection, and the operation watchdog.

The WAL contract under test: a record is durable *before* its command
executes, so whichever side of a boundary the process dies on, recovery
replays every durable record and lands bit-identical to a golden
uncrashed run driven through the same commands.
"""

import pytest

from repro import Zoomie, ZoomieProject
from repro.config import (
    CrashPlan,
    FabricDevice,
    FaultPlan,
    RetryPolicy,
)
from repro.debug import (
    ZoomieDebugger,
    diff_snapshots,
    enable_crash_safety,
    instrument_netlist,
    recover_session,
)
from repro.debug.journal import frame_record, read_journal
from repro.debug.recovery import JOURNAL_NAME
from repro.designs import make_cluster, make_cohort_soc
from repro.errors import (
    DebugError,
    DebugTimeoutError,
    RecoveryDivergenceError,
    RecoveryError,
    SessionCrashedError,
)
from repro.fpga import make_test_device
from repro.rtl import elaborate
from repro.vendor import VivadoFlow
from repro.vendor.place import whole_slr


def launch():
    project = ZoomieProject(
        design=make_cohort_soc(with_bug=False), device="TEST2",
        clocks={"clk": 100.0}, watch=["issued"])
    return Zoomie(project).launch()


def drive(session, upto=None):
    """The canonical command script crashed and replayed below."""
    dbg = session.debugger
    commands = [
        lambda: session.poke_input("en", 1),
        lambda: dbg.run(40),
        lambda: dbg.pause(),
        lambda: dbg.snapshot("mid"),
        lambda: dbg.force("bus.held", 3),
        lambda: dbg.step(5),
        lambda: dbg.resume(),
        lambda: dbg.run(25),
        lambda: dbg.pause(),
    ]
    for index, command in enumerate(commands):
        if upto is not None and index >= upto:
            break
        command()
    return len(commands)


def capture(debugger):
    """Readback state without perturbing it (no pause, no journal)."""
    snap = debugger.engine.snapshot()
    return snap


class TestJournaledSession:
    def test_commands_are_journaled_write_ahead(self, tmp_path):
        session = launch()
        journal, _ = enable_crash_safety(session.debugger, tmp_path)
        drive(session)
        verbs = [r.command for r in journal.records()]
        assert verbs == ["poke_input", "run", "pause", "snapshot",
                         "write_state", "step", "resume", "run",
                         "pause"]
        assert journal.durable_count == len(verbs)

    def test_nested_commands_journal_once(self, tmp_path):
        session = launch()
        journal, _ = enable_crash_safety(session.debugger, tmp_path)
        session.poke_input("en", 1)
        session.debugger.run(10)
        session.debugger.pause()
        session.debugger.step(3)  # internally runs + writes registers
        verbs = [r.command for r in journal.records()]
        assert verbs.count("step") == 1
        assert verbs == ["poke_input", "run", "pause", "step"]

    def test_snapshot_label_validated_at_capture(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.debugger.pause()
        with pytest.raises(DebugError):
            session.debugger.snapshot("bad=label")
        with pytest.raises(DebugError):
            session.debugger.snapshot("two\nlines")

    def test_auto_checkpoint_cadence(self, tmp_path):
        session = launch()
        journal, store = enable_crash_safety(
            session.debugger, tmp_path, checkpoint_every=2)
        session.poke_input("en", 1)
        dbg = session.debugger
        dbg.run(10)     # 2nd command -> auto checkpoint
        dbg.pause()
        dbg.step(2)     # 2 more -> another checkpoint
        autos = [r for r in journal.records()
                 if r.command == "snapshot" and r.args.get("auto")]
        assert len(autos) == 2
        for record in autos:
            assert record.args["key"] in store


class TestCrashPlans:
    def test_command_boundary_crash_kills_session(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.fabric.enable_crash_plan(
            CrashPlan(at_command=2, before_apply=True))
        with pytest.raises(SessionCrashedError):
            drive(session)
        # a dead process answers nothing
        with pytest.raises(SessionCrashedError):
            session.debugger.pause()
        with pytest.raises(SessionCrashedError):
            session.debugger.read_state()

    def test_batch_boundary_crash_mid_command(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.poke_input("en", 1)
        session.debugger.run(10)
        session.fabric.enable_crash_plan(CrashPlan(at_batch=1))
        with pytest.raises(SessionCrashedError):
            # pause issues capture + write batches; dies between them
            session.debugger.pause()


class TestRecovery:
    def recover_fresh(self, directory):
        fresh = launch()
        report = recover_session(fresh.debugger, directory)
        return fresh, report

    @pytest.mark.parametrize("boundary,before", [(1, True), (4, False),
                                                 (6, True)])
    def test_bit_identical_recovery(self, tmp_path, boundary, before):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.fabric.enable_crash_plan(
            CrashPlan(at_command=boundary, before_apply=before))
        with pytest.raises(SessionCrashedError):
            drive(session)
        recovered, report = self.recover_fresh(tmp_path)
        # record `boundary` is durable either way -> replay applies it
        golden = launch()
        drive(golden, upto=boundary + 1)
        g, r = capture(golden.debugger), capture(recovered.debugger)
        assert diff_snapshots(g, r) == {}
        assert g.content_key() == r.content_key()
        assert g.memories == r.memories

    def test_full_replay_without_any_snapshot(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.fabric.enable_crash_plan(
            CrashPlan(at_command=2, before_apply=False))
        with pytest.raises(SessionCrashedError):
            drive(session)
        recovered, report = self.recover_fresh(tmp_path)
        assert report.base_index is None
        golden = launch()
        drive(golden, upto=3)
        assert capture(golden.debugger).content_key() == \
            capture(recovered.debugger).content_key()

    def test_recovery_skips_corrupt_checkpoint(self, tmp_path):
        session = launch()
        journal, store = enable_crash_safety(session.debugger, tmp_path)
        session.fabric.enable_crash_plan(
            CrashPlan(at_command=6, before_apply=False))
        with pytest.raises(SessionCrashedError):
            drive(session)
        # rot the (only) checkpoint: recovery must fall back to full
        # replay rather than trust it
        snapshot_record = next(r for r in journal.records()
                               if r.command == "snapshot")
        key = snapshot_record.args["key"]
        path = store._path(key)
        path.write_text(path.read_text()[:-15])
        recovered, report = self.recover_fresh(tmp_path)
        assert report.base_index is None
        assert key in report.skipped_bases
        golden = launch()
        drive(golden, upto=7)
        assert capture(golden.debugger).content_key() == \
            capture(recovered.debugger).content_key()

    def test_torn_journal_tail_recovers_durable_prefix(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        drive(session, upto=6)
        # tear the final record mid-write, as a crash would
        path = tmp_path / JOURNAL_NAME
        path.write_text(path.read_text()[:-9])
        recovered, report = self.recover_fresh(tmp_path)
        assert report.torn_tail_dropped
        golden = launch()
        drive(golden, upto=5)
        assert capture(golden.debugger).content_key() == \
            capture(recovered.debugger).content_key()

    def test_unsynced_records_lost_on_crash(self, tmp_path):
        session = launch()
        journal, _ = enable_crash_safety(session.debugger, tmp_path,
                                         sync_every=4)
        drive(session, upto=6)
        lost = journal.drop_pending()  # modeled process death
        assert lost == 2  # records 4,5 were pending past the sync point
        recovered, _ = self.recover_fresh(tmp_path)
        golden = launch()
        drive(golden, upto=4)
        assert capture(golden.debugger).content_key() == \
            capture(recovered.debugger).content_key()

    def test_divergence_detected_on_tampered_replay(self, tmp_path):
        # drive with a snapshot AFTER a write so tampering the write is
        # caught by the snapshot's divergence probe
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.poke_input("en", 1)
        dbg = session.debugger
        dbg.run(30)
        dbg.pause()
        dbg.force("bus.held", 3)
        dbg.snapshot("probe")
        # rewrite the journaled force value with valid framing: replay
        # now computes different state than the snapshot record after
        # it promises
        path = tmp_path / JOURNAL_NAME
        records, _ = read_journal(path)
        lines = path.read_text().splitlines()
        for i, record in enumerate(records):
            if record.command == "write_state":
                tampered = type(record)(
                    index=record.index, command="write_state",
                    args={"updates": {"bus.held": 0x7777}})
                lines[i + 1] = frame_record(tampered)[:-1]
        path.write_text("\n".join(lines) + "\n")
        # ordinary recovery restores straight from the "probe"
        # checkpoint (it is durable truth) — the tamper is upstream of
        # it and invisible. full_replay audit re-executes the whole
        # journal and catches it at the probe.
        fresh = launch()
        with pytest.raises(RecoveryDivergenceError) as info:
            recover_session(fresh.debugger, tmp_path, full_replay=True)
        error = info.value
        assert error.record_index == records[-1].index
        assert "bus.held" in error.changed

    def test_full_replay_audit_passes_untampered(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        drive(session)
        fresh = launch()
        report = recover_session(fresh.debugger, tmp_path,
                                 full_replay=True)
        assert report.base_index is None
        assert report.snapshots_checked == 1

    def test_recovered_session_continues_journaling(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.fabric.enable_crash_plan(
            CrashPlan(at_command=4, before_apply=False))
        with pytest.raises(SessionCrashedError):
            drive(session)
        recovered, _ = self.recover_fresh(tmp_path)
        dbg = recovered.debugger
        assert dbg.journal is not None
        before = dbg.journal.count
        dbg.step(2)
        assert dbg.journal.count == before + 1
        assert dbg.journal.records()[-1].command == "step"

    def test_missing_journal_raises(self, tmp_path):
        fresh = launch()
        with pytest.raises(RecoveryError):
            recover_session(fresh.debugger, tmp_path / "nowhere")

    def test_report_describes_recovery(self, tmp_path):
        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        session.fabric.enable_crash_plan(
            CrashPlan(at_command=6, before_apply=False))
        with pytest.raises(SessionCrashedError):
            drive(session)
        _, report = self.recover_fresh(tmp_path)
        text = report.describe()
        assert "recovered from snapshot" in text
        assert "replayed" in text


def launch_split_cluster():
    """A two-core cluster with core1 constrained onto SLR 1 — debug
    traffic to it crosses the JTAG ring to a secondary controller."""
    device = make_test_device()
    netlist = elaborate(make_cluster(cores=2, imem_depth=64))
    inst = instrument_netlist(netlist, watch=["retired_count"])
    flow = VivadoFlow(device)
    clocks = {d: 100.0 for d in netlist.clock_domains()}
    result = flow.compile_netlist(
        netlist, clocks, gate_signals=inst.gate_signals,
        constraints={"core1": whole_slr(device, 1)})
    fabric = FabricDevice(device)
    fabric.expect(result.database)
    fabric.jtag.run(result.bitstream)
    return fabric, ZoomieDebugger(fabric, inst)


class TestWatchdog:
    def test_deadline_bounds_stuck_secondary(self):
        fabric, dbg = launch_split_cluster()
        dbg.record_input("en", 1)
        dbg.run(20)
        dbg.pause()
        target = next(name for name
                      in fabric.db.netlist.registers
                      if name.startswith("core1."))
        # a permanently stuck secondary + an absurd retry budget:
        # without the watchdog this write would retry ~forever
        plan = FaultPlan(seed=3)
        plan.stick(1, attempts=10**9)
        fabric.enable_fault_injection(
            plan, RetryPolicy(max_attempts=10**6,
                              backoff_seconds=0.005))
        dbg.op_deadline_seconds = 1.5
        with pytest.raises(DebugTimeoutError) as info:
            dbg.force(target, 1)
        error = info.value
        assert error.operation == "write_state"
        assert error.deadline_seconds == 1.5
        # terminated within (one overshooting attempt of) the deadline,
        # not after a million retries
        assert error.spent_seconds < 3 * error.deadline_seconds
        assert fabric.transport.deadline_remaining is None
        # safe-paused through the PRIMARY controller, which is not
        # stuck: the session is parked, not lost
        assert dbg.safe_paused
        assert dbg.is_paused()

    def test_safe_paused_session_is_inspectable(self):
        fabric, dbg = launch_split_cluster()
        dbg.record_input("en", 1)
        dbg.run(20)
        fabric.enable_fault_injection(
            FaultPlan(seed=1, read_flip_rate=1.0),
            RetryPolicy(max_attempts=10**6, backoff_seconds=0.005))
        dbg.op_deadline_seconds = 1.0
        with pytest.raises(DebugTimeoutError):
            dbg.pause()
        assert dbg.safe_paused
        # the fault clears (transient channel brownout): state is
        # readable and resume un-parks the clocks
        fabric.disable_fault_injection()
        state = dbg.read_state()
        assert state.values
        dbg.resume()
        assert not dbg.safe_paused
        assert not dbg.is_paused()

    def test_no_deadline_means_unbounded_retries(self):
        fabric, dbg = launch_split_cluster()
        dbg.record_input("en", 1)
        dbg.run(10)
        fabric.enable_fault_injection(
            FaultPlan(seed=2, read_flip_rate=1.0),
            RetryPolicy(max_attempts=4, backoff_seconds=0.001))
        # default (no watchdog): the old TransportError behavior
        from repro.errors import TransportError
        with pytest.raises(TransportError):
            dbg.pause()
        assert not dbg.safe_paused

    def test_clean_channel_unaffected_by_deadline(self):
        session = launch()
        session.debugger.op_deadline_seconds = 30.0
        drive(session)
        assert not session.debugger.safe_paused
        assert session.debugger.is_paused()


class TestRecoveryTracing:
    def test_recovery_emits_one_span_per_journal_record(self, tmp_path):
        from repro.obs import get_tracer

        session = launch()
        enable_crash_safety(session.debugger, tmp_path)
        drive(session)
        records, _ = read_journal(tmp_path / JOURNAL_NAME)
        assert records

        tracer = get_tracer()
        tracer.clear()
        tracer.start()
        try:
            fresh = launch()
            report = recover_session(fresh.debugger, tmp_path)
            record_spans = tracer.find("recover.record")
            # One audit span per journal record, in journal order —
            # including pre-base records the checkpoint lets replay skip.
            assert len(record_spans) == len(records)
            assert [span.attrs["index"] for span in record_spans] \
                == [record.index for record in records]
            (session_span,) = tracer.find("recover.session")
            assert all(span.parent_id == session_span.span_id
                       for span in record_spans)
            assert session_span.attrs["commands_replayed"] \
                == report.commands_replayed
            # The replayed commands charged modeled JTAG seconds, which
            # rolled up through recover.record into the session span.
            assert session_span.modeled_seconds > 0
        finally:
            tracer.stop()
            tracer.clear()
