"""Tests for the Zoomie facade and project configuration."""

import pytest

from repro import Zoomie, ZoomieProject
from repro.designs import make_cohort_soc, make_counter, make_manycore_soc
from repro.errors import FlowError, ReproError
from repro.vti import PartitionSpec
from repro.vti.flow import VtiCompileResult, VtiIncrementalResult


class TestProject:
    def test_device_resolved_by_name(self):
        project = ZoomieProject(design=make_counter(), device="TEST2")
        assert project.device.slr_count == 2

    def test_clocks_required(self):
        with pytest.raises(ReproError):
            ZoomieProject(design=make_counter(), clocks={})

    def test_free_domain_added(self):
        project = ZoomieProject(design=make_counter(),
                                clocks={"clk": 125.0})
        clocks = project.clocks_with_free_domain()
        assert clocks["zoomie_clk"] == 125.0
        assert clocks["clk"] == 125.0


class TestCompile:
    def test_compile_without_partitions_uses_vendor_flow(self):
        project = ZoomieProject(design=make_counter(), device="TEST2")
        result = Zoomie(project).compile()
        assert result.flow == "vivado"

    def test_compile_with_partitions_uses_vti(self):
        soc = make_manycore_soc(12, 12, imem_depth=64)
        project = ZoomieProject(
            design=soc, device="TEST2", clocks={"clk": 50.0},
            partitions=[PartitionSpec("tile0.core0")])
        zoomie = Zoomie(project)
        initial = zoomie.compile()
        assert isinstance(initial, VtiCompileResult)
        incr = zoomie.recompile_partition("tile0.core0")
        assert isinstance(incr, VtiIncrementalResult)

    def test_recompile_before_compile_rejected(self):
        project = ZoomieProject(
            design=make_counter(), device="TEST2",
            partitions=[PartitionSpec("nope")])
        with pytest.raises(FlowError):
            Zoomie(project).recompile_partition("nope")


class TestLaunch:
    def test_launch_full_workflow(self):
        project = ZoomieProject(
            design=make_cohort_soc(with_bug=False), device="TEST2",
            clocks={"clk": 100.0}, watch=["issued"])
        session = Zoomie(project).launch()
        session.poke_input("en", 1)
        session.run(20)
        dbg = session.debugger
        dbg.pause()
        assert dbg.read("lsu.issued_count") > 0

    def test_launch_without_monitors(self):
        project = ZoomieProject(
            design=make_counter(), device="TEST2",
            clocks={"clk": 100.0}, watch=["out"],
            insert_monitors=False)
        session = Zoomie(project).launch()
        assert session.instrumented.monitors == []

    def test_launch_compiles_and_programs(self):
        project = ZoomieProject(
            design=make_counter(), device="TEST2",
            clocks={"clk": 100.0}, watch=["out"])
        session = Zoomie(project).launch()
        assert session.fabric.booted
        assert session.compile_result.database is not None
        # The breakpoint path works end to end through the facade.
        session.poke_input("en", 1)
        session.debugger.set_value_breakpoint({"out": 9})
        session.debugger.run()
        assert session.debugger.read("count") == 9
