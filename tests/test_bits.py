"""Tests for the low-level bit utilities."""

import pytest
from hypothesis import given, strategies as st

from repro import _bits
from repro.errors import WidthError


class TestMaskTruncate:
    def test_mask(self):
        assert _bits.mask(1) == 1
        assert _bits.mask(8) == 0xFF
        assert _bits.mask(64) == (1 << 64) - 1

    def test_mask_bounds(self):
        with pytest.raises(WidthError):
            _bits.mask(0)
        with pytest.raises(WidthError):
            _bits.mask(_bits.MAX_WIDTH + 1)

    def test_truncate_negative(self):
        assert _bits.truncate(-1, 8) == 0xFF
        assert _bits.truncate(-256, 8) == 0

    @given(st.integers(-10**9, 10**9), st.integers(1, 64))
    def test_truncate_idempotent(self, value, width):
        once = _bits.truncate(value, width)
        assert _bits.truncate(once, width) == once
        assert 0 <= once <= _bits.mask(width)


class TestSigned:
    def test_to_signed(self):
        assert _bits.to_signed(0xFF, 8) == -1
        assert _bits.to_signed(0x7F, 8) == 127
        assert _bits.to_signed(0x80, 8) == -128

    @given(st.integers(-128, 127))
    def test_signed_roundtrip(self, value):
        assert _bits.to_signed(_bits.from_signed(value, 8), 8) == value


class TestBitAccess:
    def test_bit(self):
        assert _bits.bit(0b1010, 1) == 1
        assert _bits.bit(0b1010, 0) == 0
        with pytest.raises(WidthError):
            _bits.bit(1, -1)

    def test_bits_slice(self):
        assert _bits.bits(0xABCD, 15, 8) == 0xAB
        with pytest.raises(WidthError):
            _bits.bits(0, 0, 1)

    def test_set_bit(self):
        assert _bits.set_bit(0, 3, 1) == 8
        assert _bits.set_bit(0xFF, 0, 0) == 0xFE
        with pytest.raises(WidthError):
            _bits.set_bit(0, 0, 2)

    def test_set_bits(self):
        assert _bits.set_bits(0x00FF, 11, 4, 0xAB) == 0x0ABF

    @given(st.integers(0, 0xFFFF), st.integers(0, 15))
    def test_set_then_get_bit(self, value, index):
        for bit_value in (0, 1):
            updated = _bits.set_bit(value, index, bit_value)
            assert _bits.bit(updated, index) == bit_value


class TestCounting:
    def test_popcount(self):
        assert _bits.popcount(0) == 0
        assert _bits.popcount(0b1011) == 3
        with pytest.raises(WidthError):
            _bits.popcount(-1)

    def test_clog2(self):
        assert _bits.clog2(1) == 0
        assert _bits.clog2(2) == 1
        assert _bits.clog2(3) == 2
        assert _bits.clog2(1024) == 10
        with pytest.raises(WidthError):
            _bits.clog2(0)

    def test_width_for(self):
        assert _bits.width_for(0) == 1
        assert _bits.width_for(255) == 8
        assert _bits.width_for(256) == 9


class TestComposite:
    def test_replicate(self):
        assert _bits.replicate(0b10, 2, 3) == 0b101010
        with pytest.raises(WidthError):
            _bits.replicate(1, 1, 0)

    def test_concat(self):
        value, width = _bits.concat((0xA, 4), (0xB, 4))
        assert (value, width) == (0xAB, 8)
        with pytest.raises(WidthError):
            _bits.concat()

    def test_reverse_bits(self):
        assert _bits.reverse_bits(0b1000, 4) == 0b0001
        assert _bits.reverse_bits(0b1101, 4) == 0b1011

    @given(st.integers(0, 0xFFFF))
    def test_reverse_involution(self, value):
        twice = _bits.reverse_bits(_bits.reverse_bits(value, 16), 16)
        assert twice == value


class TestWords:
    def test_chunk_words_roundtrip(self):
        words = [0xDEADBEEF, 0x12345678]
        data = _bits.words_to_bytes(words)
        assert _bits.chunk_words(data) == words

    def test_chunk_words_rejects_ragged(self):
        with pytest.raises(WidthError):
            _bits.chunk_words(b"\x00\x01\x02")
