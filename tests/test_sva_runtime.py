"""Dedicated tests for the software SVA checker (verification reuse)."""

import pytest

from repro.errors import SvaError
from repro.rtl import ModuleBuilder, Simulator, elaborate, mux
from repro.sva import SoftwareChecker


def make_handshake_design():
    """req pulses periodically; ack follows with a configurable lag."""
    b = ModuleBuilder("hs")
    lag_one = b.input("lag_one", 1)
    counter = b.reg("counter", 3)
    b.next(counter, counter + 1)
    req = b.wire_expr("req", counter.eq(0))
    ack_a = b.reg("ack_a", 1)
    b.next(ack_a, req)
    ack_b = b.reg("ack_b", 1)
    b.next(ack_b, ack_a)
    b.output_expr("req_o", req)
    b.output_expr("ack_o", mux(lag_one, ack_a, ack_b))
    return b.build()


def run_checker(assertion, lag_one, cycles=32, prefix=""):
    sim = Simulator(elaborate(make_handshake_design()))
    checker = SoftwareChecker(assertion, sim, prefix=prefix).attach()
    sim.poke("lag_one", int(lag_one))
    sim.step(cycles)
    return checker


class TestImplicationTiming:
    def test_one_cycle_lag_satisfies_hash1(self):
        checker = run_checker(
            "assert property (@(posedge clk) req |-> ##1 ack_o);",
            lag_one=True)
        assert checker.ok()
        assert checker.matches >= 3

    def test_two_cycle_lag_fails_hash1(self):
        checker = run_checker(
            "assert property (@(posedge clk) req |-> ##1 ack_o);",
            lag_one=False)
        assert not checker.ok()
        # One failure per req pulse.
        assert len(checker.failures) >= 3

    def test_range_covers_both_lags(self):
        for lag in (True, False):
            checker = run_checker(
                "assert property (@(posedge clk) req |-> ##[1:2] ack_o);",
                lag_one=lag)
            assert checker.ok(), f"lag_one={lag}"

    def test_failure_records_obligation_origin(self):
        checker = run_checker(
            "assert property (@(posedge clk) req |-> ##1 ack_o);",
            lag_one=False)
        failure = checker.failures[0]
        assert failure.cycle == failure.obligation_started + 1
        assert "cycle" in str(failure)


class TestSampledValueFunctions:
    def test_stable_on_slow_signal(self):
        b = ModuleBuilder("m")
        slow = b.reg("slow", 4)
        tick = b.reg("tick", 2)
        b.next(tick, tick + 1)
        b.next(slow, mux(tick.eq(3), slow + 1, slow))
        b.output_expr("o", slow)
        sim = Simulator(elaborate(b.build()))
        checker = SoftwareChecker(
            "assert property (@(posedge clk) "
            "$stable(slow) || slow == $past(slow, 1) + 1);",
            sim).attach()
        sim.step(30)
        assert checker.ok()

    def test_fell_detection(self):
        b = ModuleBuilder("m")
        count = b.reg("count", 2)
        b.next(count, count + 1)
        pulse = b.wire_expr("pulse", count.lt(2))
        flag = b.reg("flag", 1)
        b.next(flag, pulse)
        b.output_expr("o", flag)
        sim = Simulator(elaborate(b.build()))
        checker = SoftwareChecker(
            "assert property (@(posedge clk) $fell(flag) |-> !pulse);",
            sim).attach()
        sim.step(20)
        assert checker.ok()


class TestDisable:
    def test_disable_clears_outstanding_obligations(self):
        b = ModuleBuilder("m")
        rst_n = b.input("resetn", 1)
        req = b.input("req", 1)
        ack = b.input("ack", 1)
        r = b.reg("r", 1)
        b.next(r, req)
        b.output_expr("o", r)
        sim = Simulator(elaborate(b.build()))
        checker = SoftwareChecker(
            "assert property (@(posedge clk) disable iff (!resetn) "
            "req |-> ##1 ack);", sim).attach()
        sim.poke("resetn", 1)
        sim.poke("req", 1)
        sim.poke("ack", 0)
        sim.step(1)          # obligation outstanding
        sim.poke("resetn", 0)  # reset before the deadline
        sim.poke("req", 0)
        sim.step(3)
        sim.poke("resetn", 1)
        sim.step(5)
        assert checker.ok()


class TestResolution:
    def test_unknown_signal_raises_at_bind(self):
        sim = Simulator(elaborate(make_handshake_design()))
        with pytest.raises(SvaError):
            SoftwareChecker(
                "assert property (@(posedge clk) bogus |-> req);", sim)

    def test_prefix_resolution(self):
        inner = make_handshake_design()
        b = ModuleBuilder("top")
        lag = b.input("lag_one", 1)
        refs = b.instantiate(inner, "u", inputs={"lag_one": lag})
        b.output_expr("o", refs["req_o"])
        sim = Simulator(elaborate(b.build()))
        checker = SoftwareChecker(
            "assert property (@(posedge clk) req |-> ##1 ack_o);",
            sim, prefix="u").attach()
        sim.poke("lag_one", 1)
        sim.step(24)
        assert checker.ok()

    def test_detach_stops_checking(self):
        sim = Simulator(elaborate(make_handshake_design()))
        checker = SoftwareChecker(
            "assert property (@(posedge clk) req |-> ##1 ack_o);",
            sim).attach()
        sim.poke("lag_one", 0)
        sim.step(10)
        count = len(checker.failures)
        assert count > 0
        checker.detach()
        sim.step(20)
        assert len(checker.failures) == count


class TestImmediateRuntime:
    def test_immediate_checked_every_cycle(self):
        sim = Simulator(elaborate(make_handshake_design()))
        checker = SoftwareChecker(
            "assert (counter < 6);", sim).attach()
        sim.poke("lag_one", 0)
        sim.step(16)  # counter wraps 0..7: values 6,7 fail twice
        assert len(checker.failures) == 4
