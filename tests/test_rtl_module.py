"""Tests for module construction, validation, and hierarchy queries."""

import pytest

from repro.errors import ElaborationError, NameConflictError, UnknownSignalError
from repro.rtl import ModuleBuilder, mux
from repro.rtl.module import iter_hierarchy


def make_counter(width=8):
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.reg("count", width)
    b.next(count, mux(en, count + 1, count))
    b.output_expr("out", count)
    return b.build()


class TestBuilder:
    def test_duplicate_signal_rejected(self):
        b = ModuleBuilder("m")
        b.input("a", 1)
        with pytest.raises(NameConflictError):
            b.wire("a", 1)

    def test_double_drive_rejected(self):
        b = ModuleBuilder("m")
        b.wire("w", 1)
        b.assign("w", b.const(0, 1))
        with pytest.raises(NameConflictError):
            b.assign("w", b.const(1, 1))

    def test_driving_input_rejected(self):
        b = ModuleBuilder("m")
        b.input("a", 1)
        with pytest.raises(ElaborationError):
            b.assign("a", b.const(0, 1))

    def test_undriven_wire_rejected_at_build(self):
        b = ModuleBuilder("m")
        b.wire("w", 1)
        b.output_expr("o", b.const(0, 1))
        with pytest.raises(ElaborationError):
            b.build()

    def test_undriven_output_rejected_at_build(self):
        b = ModuleBuilder("m")
        b.output("o", 1)
        with pytest.raises(ElaborationError):
            b.build()

    def test_register_next_width_checked(self):
        b = ModuleBuilder("m")
        reg = b.reg("r", 8)
        with pytest.raises(ElaborationError):
            b.next(reg, b.const(0, 4))

    def test_register_double_next_rejected(self):
        b = ModuleBuilder("m")
        reg = b.reg("r", 8)
        b.next(reg, b.const(0, 8))
        with pytest.raises(ElaborationError):
            b.next(reg, b.const(1, 8))

    def test_registers_without_next_hold(self):
        b = ModuleBuilder("m")
        b.reg("r", 8, init=3)
        b.output_expr("o", b.sig("r"))
        module = b.build()
        assert module.registers["r"].next is not None

    def test_build_twice_rejected(self):
        b = ModuleBuilder("m")
        b.output_expr("o", b.const(0, 1))
        b.build()
        with pytest.raises(ElaborationError):
            b.build()

    def test_unknown_signal_ref(self):
        b = ModuleBuilder("m")
        with pytest.raises(UnknownSignalError):
            b.sig("nope")


class TestHierarchy:
    def test_instantiate_autowires_outputs(self):
        counter = make_counter()
        b = ModuleBuilder("top")
        en = b.input("en", 1)
        refs = b.instantiate(counter, "c0", inputs={"en": en})
        assert refs["out"].name == "c0_out"
        b.output_expr("o", refs["out"])
        top = b.build()
        assert "c0" in top.instances

    def test_instantiate_checks_input_widths(self):
        counter = make_counter()
        b = ModuleBuilder("top")
        wide = b.input("wide", 4)
        b.instantiate(counter, "c0", inputs={"en": wide})
        b.output_expr("o", b.sig("c0_out"))
        with pytest.raises(ElaborationError):
            b.build()

    def test_missing_input_rejected(self):
        counter = make_counter()
        b = ModuleBuilder("top")
        b.instantiate(counter, "c0", inputs={})
        b.output_expr("o", b.sig("c0_out"))
        with pytest.raises(ElaborationError):
            b.build()

    def test_iter_hierarchy_paths(self):
        counter = make_counter()
        mid_b = ModuleBuilder("mid")
        en = mid_b.input("en", 1)
        refs = mid_b.instantiate(counter, "inner", inputs={"en": en})
        mid_b.output_expr("o", refs["out"])
        mid = mid_b.build()

        top_b = ModuleBuilder("top")
        en2 = top_b.input("en", 1)
        refs2 = top_b.instantiate(mid, "m0", inputs={"en": en2})
        top_b.output_expr("o", refs2["o"])
        top = top_b.build()

        paths = {path for path, _ in iter_hierarchy(top)}
        assert paths == {"", "m0", "m0.inner"}

    def test_submodules_deduplicates(self):
        counter = make_counter()
        b = ModuleBuilder("top")
        en = b.input("en", 1)
        r0 = b.instantiate(counter, "c0", inputs={"en": en})
        r1 = b.instantiate(counter, "c1", inputs={"en": en})
        b.output_expr("o", r0["out"] + r1["out"])
        top = b.build()
        assert top.submodules() == {counter}

    def test_state_bit_count_scales_with_instances(self):
        counter = make_counter(width=8)
        b = ModuleBuilder("top")
        en = b.input("en", 1)
        r0 = b.instantiate(counter, "c0", inputs={"en": en})
        r1 = b.instantiate(counter, "c1", inputs={"en": en})
        b.output_expr("o", r0["out"] + r1["out"])
        top = b.build()
        assert top.state_bit_count() == 16

    def test_instance_count(self):
        counter = make_counter()
        b = ModuleBuilder("top")
        en = b.input("en", 1)
        r0 = b.instantiate(counter, "c0", inputs={"en": en})
        b.output_expr("o", r0["out"])
        assert b.build().instance_count() == 2


class TestModuleMetadata:
    def test_assertions_attach(self):
        b = ModuleBuilder("m")
        b.assertion("assert property (@(posedge clk) a |-> ##1 b);")
        b.output_expr("o", b.const(0, 1))
        module = b.build()
        assert len(module.assertions) == 1

    def test_attributes(self):
        b = ModuleBuilder("m")
        b.attribute("DONT_TOUCH", True)
        b.output_expr("o", b.const(0, 1))
        assert b.build().attributes["DONT_TOUCH"] is True

    def test_clocks_lists_domains(self):
        b = ModuleBuilder("m")
        b.reg("a", 1, clock="clk")
        b.reg("b", 1, clock="eth_clk")
        b.output_expr("o", b.sig("a"))
        assert b.build().clocks() == {"clk", "eth_clk"}
