"""Tests for the automated debug-campaign harness.

The contract: a campaign over a seeded mutation corpus is byte-
deterministic (same config, same JSON report); killing the host
mid-mutant and recovering yields a report bit-identical to an
uninterrupted run; the CLI verb and ``python -m repro.campaign`` both
speak the same report; and ``campaign.*`` metrics record the work.
"""

import json

import pytest

from repro import Zoomie, ZoomieProject
from repro.campaign import (
    DESIGN_NAMES,
    CampaignConfig,
    run_debug_campaign,
    verify_equivalents,
)
from repro.campaign.__main__ import main as campaign_main
from repro.config import CrashPlan
from repro.debug.cli import ZoomieCli
from repro.designs import make_counter
from repro.errors import CampaignError
from repro.obs import get_registry


SMALL = CampaignConfig(designs=("counters",), mutants=3, seed=7)


@pytest.fixture(scope="module")
def small_report():
    return run_debug_campaign(SMALL)


class TestReportShape:
    def test_every_mutant_reported(self, small_report):
        assert len(small_report.outcomes) == 3
        for outcome in small_report.outcomes:
            assert outcome.status in ("detected", "equivalent",
                                      "undetected")
            assert outcome.mutant_id.startswith("counters:")

    def test_summary_aggregates(self, small_report):
        doc = small_report.as_dict()
        summary = doc["summary"]
        assert summary["total"] == 3
        assert summary["detected"] + summary["equivalent"] + \
            summary["undetected"] == 3
        assert summary["tolerance"] == {"signals": 2, "cycles": 16}
        assert 0.0 <= summary["detection_rate"] <= 1.0
        assert 0.0 <= summary["localization_accuracy"] <= 1.0

    def test_detected_mutants_carry_localization(self, small_report):
        detected = [o for o in small_report.outcomes
                    if o.status == "detected"]
        assert detected, "seeded counters corpus must detect something"
        for outcome in detected:
            loc = outcome.localize
            assert loc["method"] in ("bisect", "output-diff")
            assert loc["signals"]
            assert loc["modeled_seconds"] > 0
            assert loc["cycle"] >= outcome.detect["cycle"] or \
                loc["method"] == "output-diff"

    def test_describe_is_human_readable(self, small_report):
        text = small_report.describe()
        assert "detection rate" in text
        assert "localization accuracy" in text

    def test_unknown_design_raises(self):
        with pytest.raises(CampaignError):
            run_debug_campaign(CampaignConfig(designs=("nope",),
                                              mutants=1, seed=7))


class TestDeterminism:
    def test_reports_are_byte_identical(self, small_report):
        again = run_debug_campaign(SMALL)
        assert again.to_json() == small_report.to_json()

    def test_json_has_no_wall_clock_fields(self, small_report):
        doc = json.loads(small_report.to_json())
        flat = json.dumps(doc)
        for forbidden in ("timestamp", "wall", "recover"):
            assert forbidden not in flat

    def test_cohort_gates(self):
        """The acceptance config in miniature: high detection, accurate
        localization, no misclassified equivalents."""
        config = CampaignConfig(designs=("cohort",), mutants=10, seed=7)
        report = run_debug_campaign(config)
        assert report.detection_rate >= 0.9
        assert report.localization_accuracy >= 0.8
        assert verify_equivalents(config, report) == []


class TestCrashRecovery:
    def test_crash_mid_mutant_resumes_bit_identical(self, tmp_path,
                                                    small_report):
        """Kill the host mid-localization on one mutant; the recovered
        campaign must report exactly what the uninterrupted one did."""
        fired = []

        def crash_plan(design, mutant_id):
            if not fired:
                fired.append(mutant_id)
                return CrashPlan(at_command=9)
            return None

        config = CampaignConfig(designs=("counters",), mutants=3,
                                seed=7, crash_plan=crash_plan)
        recoveries = get_registry().counter("campaign.recoveries")
        before = recoveries.value
        report = run_debug_campaign(config, tmp_path)
        assert fired, "the crash plan never armed"
        assert recoveries.value > before
        assert report.to_json() == small_report.to_json()

    def test_mid_command_crash_also_recovers(self, tmp_path,
                                             small_report):
        fired = []

        def crash_plan(design, mutant_id):
            if not fired:
                fired.append(mutant_id)
                return CrashPlan(at_batch=5)
            return None

        config = CampaignConfig(designs=("counters",), mutants=3,
                                seed=7, crash_plan=crash_plan)
        recoveries = get_registry().counter("campaign.recoveries")
        before = recoveries.value
        report = run_debug_campaign(config, tmp_path)
        assert fired
        assert recoveries.value > before
        assert report.to_json() == small_report.to_json()

    def test_unrecoverable_mutant_raises(self, tmp_path):
        config = CampaignConfig(
            designs=("counters",), mutants=1, seed=7,
            max_recoveries=1,
            # at_batch counts from installation, so re-arming on every
            # relaunch models a host that dies on every attempt.
            crash_plan=lambda design, mid: CrashPlan(at_batch=5))
        with pytest.raises(CampaignError):
            run_debug_campaign(config, tmp_path)


class TestMetrics:
    def test_campaign_counters_advance(self):
        registry = get_registry()
        mutants = registry.counter("campaign.mutants")
        detected = registry.counter("campaign.detected")
        before = (mutants.value, detected.value)
        report = run_debug_campaign(SMALL)
        assert mutants.value - before[0] == 3
        n_detected = sum(1 for o in report.outcomes
                         if o.status == "detected")
        assert detected.value - before[1] == n_detected


class TestFrontends:
    @pytest.fixture()
    def cli(self):
        project = ZoomieProject(design=make_counter(width=4),
                                device="TEST2", clocks={"clk": 100.0},
                                watch=["out"])
        return ZoomieCli(Zoomie(project).launch().debugger)

    def test_cli_lists_designs_and_operators(self, cli):
        assert cli.execute("campaign designs").splitlines() == \
            list(DESIGN_NAMES)
        assert "cond_invert" in cli.execute("campaign operators")

    def test_cli_run_matches_harness(self, cli, small_report):
        out = cli.execute(
            "campaign run --design counters --mutants 3 --seed 7 --json")
        assert json.loads(out) == small_report.as_dict()

    def test_cli_run_summary_text(self, cli):
        out = cli.execute(
            "campaign run --design counters --mutants 2 --seed 3")
        assert "detection rate" in out

    def test_cli_usage_errors(self, cli):
        assert "error" in cli.execute("campaign")
        assert "error" in cli.execute("campaign run --mutants")
        assert "error" in cli.execute("campaign run --bogus 3")

    def test_main_module_writes_report(self, tmp_path, small_report,
                                       capsys):
        out_path = tmp_path / "report.json"
        code = campaign_main(["run", "--design", "counters",
                              "--mutants", "3", "--seed", "7",
                              "--out", str(out_path), "--json"])
        assert code == 0
        assert out_path.read_text() == small_report.to_json()
        printed = capsys.readouterr().out
        assert json.loads(printed) == small_report.as_dict()
