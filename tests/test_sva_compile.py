"""Tests for assertion synthesis: monitor FSM generation and semantics.

The gold standard here is the cross-check: the compiled hardware monitor
and the software checker must flag the same cycles for the same stimulus,
including under randomized stimulus (hypothesis).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import UnsynthesizableError
from repro.rtl import ModuleBuilder, Simulator, elaborate
from repro.sva import SoftwareChecker, compile_assertion

#: Signal widths shared by the test designs.
WIDTHS = {
    "valid": 1, "ack": 1, "req": 1, "gnt": 1, "a": 1, "b": 1, "c": 1,
    "resetn": 1, "data": 8, "mcause": 64, "MIE": 1, "MPIE": 1,
}


def run_both(assertion: str, stimulus: list[dict[str, int]],
             widths: dict | None = None):
    """Drive the compiled monitor and the software checker in lockstep.

    Returns ``(hw_fail_cycles, sw_fail_cycles, monitor)``.
    """
    widths = dict(widths or WIDTHS)
    monitor = compile_assertion(assertion, widths)
    referenced = sorted(set(monitor.port_map.values()))

    b = ModuleBuilder("tb")
    inputs = {name: b.input(name, widths[name]) for name in referenced}
    refs = b.instantiate(
        monitor.module, "mon",
        inputs={port: inputs[signal]
                for port, signal in monitor.port_map.items()})
    b.output_expr("fail", refs["fail"])
    b.output_expr("match", refs["match"])
    top = b.build()
    sim = Simulator(elaborate(top))

    checker = SoftwareChecker(assertion, sim).attach()

    hw_fails: list[int] = []

    def record(s, ticked):
        if "clk" in ticked and s.peek("fail"):
            hw_fails.append(s.cycles("clk"))

    sim.pre_edge_hooks.append(record)

    for row in stimulus:
        for name, value in row.items():
            sim.poke(name, value)
        sim.step(1)

    sw_fails = [f.cycle for f in checker.failures]
    return hw_fails, sw_fails, monitor


PAPER_EXAMPLE = ("ack_valid: assert property "
                 "(@(posedge clk) disable iff (!resetn) "
                 "valid |-> ##1 ack);")


def rows(*tuples, keys=("resetn", "valid", "ack")):
    return [dict(zip(keys, t)) for t in tuples]


class TestPaperExample:
    def test_pass_when_ack_follows(self):
        stim = rows((1, 1, 0), (1, 0, 1), (1, 1, 0), (1, 0, 1), (1, 0, 0))
        hw, sw, _ = run_both(PAPER_EXAMPLE, stim)
        assert hw == [] and sw == []

    def test_fail_when_ack_missing(self):
        stim = rows((1, 1, 0), (1, 0, 0), (1, 0, 0))
        hw, sw, _ = run_both(PAPER_EXAMPLE, stim)
        assert hw == sw
        assert len(hw) == 1
        # valid at cycle 1 requires ack at cycle 2 (cycle numbers are
        # 1-based edge counts).
        assert hw[0] == 2

    def test_disable_iff_masks_failures(self):
        stim = rows((0, 1, 0), (0, 0, 0), (0, 0, 0), (1, 0, 0))
        hw, sw, _ = run_both(PAPER_EXAMPLE, stim)
        assert hw == [] and sw == []

    def test_back_to_back_requests(self):
        stim = rows((1, 1, 0), (1, 1, 1), (1, 0, 1), (1, 0, 0))
        hw, sw, _ = run_both(PAPER_EXAMPLE, stim)
        assert hw == [] and sw == []

    def test_overlapping_failures_both_reported(self):
        stim = rows((1, 1, 0), (1, 1, 0), (1, 0, 0), (1, 0, 0))
        hw, sw, _ = run_both(PAPER_EXAMPLE, stim)
        assert hw == sw
        assert hw == [2, 3]


class TestOperatorSemantics:
    def test_immediate_assertion(self):
        stim = [{"a": 1, "b": 1}, {"a": 1, "b": 0}, {"a": 0, "b": 0}]
        hw, sw, _ = run_both("assert (a == b);", stim)
        assert hw == sw == [2]

    def test_nonoverlapping_implication(self):
        # req |=> gnt: gnt must hold the cycle AFTER req.
        stim = [
            {"req": 1, "gnt": 0},
            {"req": 0, "gnt": 1},  # ok
            {"req": 1, "gnt": 0},
            {"req": 0, "gnt": 0},  # fail here
        ]
        hw, sw, _ = run_both("assert property (req |=> gnt);", stim)
        assert hw == sw == [4]

    def test_overlapping_boolean_consequent(self):
        stim = [{"req": 1, "gnt": 1}, {"req": 1, "gnt": 0}]
        hw, sw, _ = run_both("assert property (req |-> gnt);", stim)
        assert hw == sw == [2]

    def test_fixed_delay_two(self):
        keys = ("a", "b")
        stim = [dict(zip(keys, t)) for t in
                [(1, 0), (0, 0), (0, 1), (1, 0), (0, 0), (0, 0)]]
        hw, sw, _ = run_both("assert property (a |-> ##2 b);", stim)
        assert hw == sw == [6]

    def test_delay_range(self):
        # b may arrive 1 or 2 cycles after a.
        keys = ("a", "b")
        ok = [dict(zip(keys, t)) for t in [(1, 0), (0, 0), (0, 1)]]
        hw, sw, _ = run_both("assert property (a |-> ##[1:2] b);", ok)
        assert hw == sw == []
        bad = [dict(zip(keys, t)) for t in [(1, 0), (0, 0), (0, 0)]]
        hw, sw, _ = run_both("assert property (a |-> ##[1:2] b);", bad)
        assert hw == sw == [3]

    def test_consecutive_repetition_antecedent(self):
        # Two consecutive a's must be followed by b.
        keys = ("a", "b")
        stim = [dict(zip(keys, t)) for t in
                [(1, 0), (1, 0), (0, 0)]]
        hw, sw, _ = run_both("assert property (a[*2] |=> b);", stim)
        assert hw == sw == [3]
        stim_ok = [dict(zip(keys, t)) for t in
                   [(1, 0), (1, 0), (0, 1)]]
        hw, sw, _ = run_both("assert property (a[*2] |=> b);", stim_ok)
        assert hw == sw == []

    def test_sequence_and(self):
        # (a ##1 b) and (c) |=> gnt : both must match for an obligation.
        keys = ("a", "b", "c", "gnt")
        asr = "assert property ((a ##1 b) and c |=> gnt);"
        trigger = [dict(zip(keys, t)) for t in
                   [(1, 0, 1, 0), (0, 1, 0, 0), (0, 0, 0, 0)]]
        hw, sw, _ = run_both(asr, trigger)
        assert hw == sw == [3]
        no_trigger = [dict(zip(keys, t)) for t in
                      [(1, 0, 0, 0), (0, 1, 0, 0), (0, 0, 0, 0)]]
        hw, sw, _ = run_both(asr, no_trigger)
        assert hw == sw == []

    def test_sequence_or(self):
        keys = ("a", "b", "c")
        asr = "assert property (a or b |=> c);"
        stim = [dict(zip(keys, t)) for t in [(0, 1, 0), (0, 0, 0)]]
        hw, sw, _ = run_both(asr, stim)
        assert hw == sw == [2]

    def test_sequence_intersect(self):
        # Same-length match: (a ##1 a) intersect (b ##1 b).
        keys = ("a", "b", "c")
        asr = "assert property ((a ##1 a) intersect (b ##1 b) |=> c);"
        both = [dict(zip(keys, t)) for t in
                [(1, 1, 0), (1, 1, 0), (0, 0, 0)]]
        hw, sw, _ = run_both(asr, both)
        assert hw == sw == [3]

    def test_past_system_function(self):
        # data must equal its previous value whenever valid.
        asr = ("assert property (@(posedge clk) "
               "valid |-> data == $past(data, 1));")
        stim = [
            {"valid": 0, "data": 5},
            {"valid": 1, "data": 5},   # ok: past==5
            {"valid": 1, "data": 7},   # fail: past==5, now 7
        ]
        hw, sw, _ = run_both(asr, stim)
        assert hw == sw == [3]

    def test_rose_function(self):
        asr = "assert property (@(posedge clk) $rose(req) |=> gnt);"
        stim = [
            {"req": 0, "gnt": 0},
            {"req": 1, "gnt": 0},   # rose here
            {"req": 1, "gnt": 0},   # fail: gnt missing
        ]
        hw, sw, _ = run_both(asr, stim)
        assert hw == sw == [3]

    def test_bit_select_condition(self):
        asr = ("assert property (@(posedge clk) "
               "!(mcause[63] == 0 && MIE == 0 && MPIE == 0));")
        stim = [
            {"mcause": 1 << 63, "MIE": 0, "MPIE": 0},  # ok (bit set)
            {"mcause": 0, "MIE": 1, "MPIE": 0},        # ok
            {"mcause": 0, "MIE": 0, "MPIE": 0},        # fail
        ]
        hw, sw, _ = run_both(asr, stim)
        assert hw == sw == [3]


class TestUnsynthesizable:
    def test_isunknown_rejected_at_compile(self):
        with pytest.raises(UnsynthesizableError) as info:
            compile_assertion(
                "assert property (@(posedge clk) !$isunknown(data));",
                WIDTHS)
        assert "$isunknown" in str(info.value)

    def test_unbounded_delay_rejected(self):
        with pytest.raises(UnsynthesizableError):
            compile_assertion(
                "assert property (a ##[1:$] b |-> c);", WIDTHS)

    def test_first_match_rejected(self):
        with pytest.raises(UnsynthesizableError):
            compile_assertion(
                "assert property (first_match(a ##[1:2] b) |-> c);",
                WIDTHS)

    def test_goto_repetition_rejected(self):
        with pytest.raises(UnsynthesizableError):
            compile_assertion(
                "assert property (a[->2] |-> b);", WIDTHS)

    def test_within_rejected(self):
        with pytest.raises(UnsynthesizableError):
            compile_assertion(
                "assert property (a within b |-> c);", WIDTHS)


class TestResourceReports:
    def test_report_counts_plausible(self):
        monitor = compile_assertion(PAPER_EXAMPLE, WIDTHS)
        report = monitor.report
        # A one-deep implication needs only a few state bits.
        assert 1 <= report.flip_flops <= 8
        assert report.lut_estimate >= 1
        assert report.atoms >= 1

    def test_past_adds_flip_flops(self):
        without = compile_assertion(
            "assert property (@(posedge clk) valid |-> ack);", WIDTHS)
        with_past = compile_assertion(
            "assert property (@(posedge clk) "
            "valid |-> data == $past(data, 2));", WIDTHS)
        assert (with_past.report.flip_flops
                > without.report.flip_flops + 8)

    def test_monitor_is_plain_rtl(self):
        monitor = compile_assertion(PAPER_EXAMPLE, WIDTHS)
        # The module must elaborate and simulate standalone.
        sim = Simulator(elaborate(monitor.module))
        assert sim.peek("fail") in (0, 1)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.booleans(), st.booleans()),
                min_size=1, max_size=25))
def test_hw_sw_agree_on_random_stimulus(steps):
    """The FSM monitor and software checker agree on arbitrary stimulus."""
    stim = [{"resetn": int(r), "valid": int(v), "ack": int(a)}
            for r, v, a in steps]
    hw, sw, _ = run_both(PAPER_EXAMPLE, stim)
    assert hw == sw


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.booleans()),
                min_size=1, max_size=20))
def test_hw_sw_agree_delay_range(steps):
    stim = [{"a": int(x), "b": int(y)} for x, y in steps]
    hw, sw, _ = run_both("assert property (a |-> ##[1:3] b);", stim)
    assert hw == sw
