"""Tests for the runtime ILA model — and the contrast with Zoomie.

The ILA's limitations are the point: probes fixed at compile time, a
bounded one-shot capture window, trigger conditions restricted to the
probed set. The final test performs the paper's comparison on live
hardware state: the ILA cannot answer a question about an unprobed
signal; Zoomie's readback answers it immediately.
"""

import pytest

from repro.debug.ila_capture import IlaCore
from repro.designs import make_cohort_soc, make_counter
from repro.errors import DebugError
from repro.rtl import Simulator, elaborate


def counter_sim():
    sim = Simulator(elaborate(make_counter(8)))
    sim.poke("en", 1)
    return sim


class TestIlaCapture:
    def test_trigger_and_window(self):
        sim = counter_sim()
        ila = IlaCore(sim, probes=("count",), depth=8,
                      trigger_position=2).attach()
        ila.arm({"count": 5})
        sim.step(30)
        assert ila.triggered_at is not None
        window = ila.window
        assert len(window) == 8
        # Pre-trigger history plus post-trigger samples, contiguous.
        values = [s.values["count"] for s in window]
        assert values == list(range(values[0], values[0] + 8))
        assert 5 in values

    def test_window_is_one_shot(self):
        sim = counter_sim()
        ila = IlaCore(sim, probes=("count",), depth=4,
                      trigger_position=1).attach()
        ila.arm({"count": 3})
        sim.step(50)
        captured = [s.cycle for s in ila.window]
        sim.step(50)
        assert [s.cycle for s in ila.window] == captured  # frozen

    def test_rearm_captures_again(self):
        sim = counter_sim()
        ila = IlaCore(sim, probes=("count",), depth=4,
                      trigger_position=0).attach()
        ila.arm({"count": 3})
        sim.step(20)
        first = ila.triggered_at
        ila.arm({"count": 30})
        sim.step(20)
        assert ila.triggered_at is not None
        assert ila.triggered_at != first

    @pytest.mark.parametrize("position", [0, 1, 7])
    def test_trigger_position_boundary_matrix(self, position):
        """The trigger sample must land in the window at every
        position — the seed routed it through the circular pre-buffer,
        so ``trigger_position=0`` evicted it immediately and
        ``value_at(triggered_at, ...)`` raised."""
        depth = 8
        sim = counter_sim()
        ila = IlaCore(sim, probes=("count",), depth=depth,
                      trigger_position=position).attach()
        ila.arm({"count": 20})
        sim.step(40)
        at = ila.triggered_at
        assert at is not None
        assert ila.value_at(at, "count") == 20
        cycles = [s.cycle for s in ila.window]
        assert cycles == list(range(at - position, at - position + depth))
        values = [s.values["count"] for s in ila.window]
        assert values == list(range(20 - position, 20 - position + depth))

    def test_trigger_position_zero_window_starts_at_trigger(self):
        sim = counter_sim()
        ila = IlaCore(sim, probes=("count",), depth=4,
                      trigger_position=0).attach()
        ila.arm({"count": 9})
        sim.step(20)
        assert [s.values["count"] for s in ila.window] == [9, 10, 11, 12]

    def test_unprobed_signal_rejected_at_build(self):
        sim = counter_sim()
        with pytest.raises(DebugError):
            IlaCore(sim, probes=("no_such_signal",))

    def test_trigger_on_unprobed_signal_rejected(self):
        sim = counter_sim()
        ila = IlaCore(sim, probes=("count",)).attach()
        with pytest.raises(DebugError):
            ila.arm({"en": 1})

    def test_reading_outside_window_fails(self):
        sim = counter_sim()
        ila = IlaCore(sim, probes=("count",), depth=4,
                      trigger_position=0).attach()
        ila.arm({"count": 20})
        sim.step(40)
        with pytest.raises(DebugError):
            ila.value_at(2, "count")  # long scrolled out of the window


class TestIlaVsZoomie:
    def test_ila_blind_spot_vs_full_visibility(self):
        """The case-study dynamic in miniature: the question moves to a
        signal the ILA did not probe; Zoomie answers without recompiling."""
        netlist = elaborate(make_cohort_soc(with_bug=True))
        sim = Simulator(netlist)
        sim.poke("en", 1)
        # Iteration 1's ILA probed the datapath.
        ila = IlaCore(sim, probes=("results", "acc"), depth=16,
                      trigger_position=4).attach()
        ila.arm({"results": 1})
        sim.step(250)
        assert ila.triggered_at is not None
        # The evidence points at the MMU -- which was not probed:
        with pytest.raises(DebugError) as info:
            ila.value_at(ila.triggered_at, "mmu.tlb_sel_r")
        assert "not probed" in str(info.value)
        # (In the real flow this is a 2-hour recompile.) Zoomie's
        # readback path sees every register right now:
        assert sim.peek("mmu.tlb_sel_r") == 1
        assert sim.peek("lsu.store_pending") == 1
