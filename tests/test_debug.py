"""Tests for the Debug Controller, instrumentation, readback engine, and
the ZoomieDebugger front end."""

import pytest

from repro.config import FabricDevice
from repro.debug import (
    ReadbackEngine,
    ZoomieDebugger,
    diff_snapshots,
    estimate_readback_seconds,
    instrument_netlist,
    make_debug_controller,
)
from repro.designs import make_cohort_soc, make_pipeline
from repro.errors import BreakpointError, DebugError, NotPausedError
from repro.fpga import make_test_device
from repro.rtl import ModuleBuilder, Simulator, elaborate, mux
from repro.vendor import VivadoFlow


def make_asserting_counter(limit=10):
    """Counts while enabled; carries an SVA bounding the count."""
    b = ModuleBuilder("acounter")
    en = b.input("en", 1)
    count = b.reg("count", 8)
    b.next(count, mux(en, count + 1, count))
    b.output_expr("out", count)
    b.assertion(
        f"bound: assert property (@(posedge clk) count <= {limit});")
    b.assertion(
        "known: assert property (@(posedge clk) !$isunknown(count));")
    return b.build()


def program_instrumented(design, watch, device=None, clocks_mhz=100.0,
                         **instrument_kwargs):
    """Instrument, compile, and program; returns (fabric, debugger)."""
    device = device or make_test_device()
    netlist = elaborate(design)
    inst = instrument_netlist(netlist, watch=watch, **instrument_kwargs)
    flow = VivadoFlow(device)
    clocks = {domain: clocks_mhz for domain in netlist.clock_domains()}
    result = flow.compile_netlist(netlist, clocks,
                                  gate_signals=inst.gate_signals)
    fabric = FabricDevice(device)
    fabric.expect(result.database)
    fabric.jtag.run(result.bitstream)
    return fabric, ZoomieDebugger(fabric, inst), inst


class TestControllerModule:
    def test_standalone_module_simulates(self):
        dc = make_debug_controller([("a", 8)], assert_count=1)
        sim = Simulator(elaborate(dc))
        sim.poke("sig0", 5)
        sim.poke("assert_fail0", 0)
        assert sim.peek("pause_out") == 0

    def test_value_trigger_and_latch(self):
        dc = make_debug_controller([("a", 8)])
        sim = Simulator(elaborate(dc))
        sim.force("ref_val0", 7)
        sim.force("and_mask0", 1)
        sim.force("and_sel", 1)
        sim.poke("sig0", 3)
        sim.step(1)
        assert sim.peek("pause_out") == 0
        sim.poke("sig0", 7)
        assert sim.peek("pause_out") == 1  # combinational, same cycle
        sim.step(1)
        sim.poke("sig0", 0)
        assert sim.peek("pause_out") == 1  # latched

    def test_and_composition_needs_all(self):
        dc = make_debug_controller([("a", 4), ("b", 4)])
        sim = Simulator(elaborate(dc))
        sim.force("ref_val0", 1)
        sim.force("ref_val1", 2)
        sim.force("and_mask0", 1)
        sim.force("and_mask1", 1)
        sim.force("and_sel", 1)
        sim.poke("sig0", 1)
        sim.poke("sig1", 0)
        assert sim.peek("pause_out") == 0
        sim.poke("sig1", 2)
        assert sim.peek("pause_out") == 1

    def test_or_composition_needs_any(self):
        dc = make_debug_controller([("a", 4), ("b", 4)])
        sim = Simulator(elaborate(dc))
        sim.force("ref_val1", 9)
        sim.force("or_mask1", 1)
        sim.force("or_sel", 1)
        sim.poke("sig0", 0)
        sim.poke("sig1", 9)
        assert sim.peek("pause_out") == 1

    def test_masked_out_signal_ignored_in_and(self):
        dc = make_debug_controller([("a", 4), ("b", 4)])
        sim = Simulator(elaborate(dc))
        sim.force("ref_val0", 1)
        sim.force("and_mask0", 1)
        sim.force("and_sel", 1)
        sim.poke("sig0", 1)
        sim.poke("sig1", 15)  # unmasked: must not veto
        assert sim.peek("pause_out") == 1

    def test_step_counter_counts_down(self):
        dc = make_debug_controller([("a", 4)])
        sim = Simulator(elaborate(dc))
        sim.force("step_count", 3)
        sim.force("step_armed", 1)
        for _ in range(3):
            assert sim.peek("pause_out") == 0
            sim.step(1)
        assert sim.peek("pause_out") == 1

    def test_assert_trigger_gated_by_enable(self):
        dc = make_debug_controller([("a", 4)], assert_count=1)
        sim = Simulator(elaborate(dc))
        sim.poke("assert_fail0", 1)
        sim.step(1)  # fail pulses are registered (one-cycle latency)
        assert sim.peek("pause_out") == 0  # not enabled yet
        sim.force("assert_en", 1)
        assert sim.peek("pause_out") == 1


class TestInstrumentation:
    def test_monitors_compiled_and_unsynthesizable_skipped(self):
        netlist = elaborate(make_asserting_counter())
        inst = instrument_netlist(netlist, watch=["out"])
        assert len(inst.monitors) == 1
        assert len(inst.skipped_assertions) == 1
        assert "$isunknown" in inst.skipped_assertions[0][1]

    def test_gate_signals_cover_all_user_domains(self):
        netlist = elaborate(make_cohort_soc())
        inst = instrument_netlist(netlist, watch=["issued"])
        assert set(inst.gate_signals) == {"clk"}
        assert inst.gate_signals["clk"] == "zoomie_dc.pause_out"

    def test_reserved_domain_collision_rejected(self):
        b = ModuleBuilder("bad")
        b.reg("r", 1, clock="zoomie_clk")
        b.output_expr("o", b.sig("r"))
        with pytest.raises(DebugError):
            instrument_netlist(elaborate(b.build()), watch=[])

    def test_pause_buffers_inserted_on_top_interfaces(self):
        netlist = elaborate(make_pipeline())
        inst = instrument_netlist(netlist, watch=[])
        assert sorted(inst.pause_buffers) == [
            "zoomie_pb_in", "zoomie_pb_out"]

    def test_instrumented_netlist_still_validates_and_runs(self):
        netlist = elaborate(make_pipeline())
        instrument_netlist(netlist, watch=["out_valid"])
        sim = Simulator(netlist)
        sim.poke("in_valid", 1)
        sim.poke("in_data", 5)
        sim.poke("out_ready", 1)
        sim.step(8)
        # 4 stages add 1+2+3+4 = 10.
        assert sim.peek("out_data") == 15

    def test_pipeline_data_survives_pause_through_buffers(self):
        """End-to-end Figure 3 protection inside an instrumented design:
        pausing the MUT mid-stream must neither drop nor duplicate."""
        netlist = elaborate(make_pipeline())
        inst = instrument_netlist(netlist, watch=[])
        sim = Simulator(netlist)
        received = []
        pending = 1

        sim.poke("out_ready", 1)
        for cycle in range(80):
            # Pause the MUT for cycles 20..35 via the host-pause FF.
            if cycle == 20:
                sim.force("zoomie_dc.host_pause", 1)
            if cycle == 35:
                sim.force("zoomie_dc.host_pause", 0)
                sim.force("zoomie_dc.paused", 0)
            sim.poke("in_valid", 1)
            sim.poke("in_data", pending)
            # The external testbench never pauses; the MUT's domains gate
            # off the controller's pause output (the fabric's job).
            for domain, signal in inst.gate_signals.items():
                sim.set_clock_gate(domain, bool(sim.peek(signal)))
            fire_in = bool(sim.peek("in_ready"))
            fire_out = bool(sim.peek("out_valid"))
            out_value = sim.peek("out_data")
            sim.step(1)
            if fire_out:
                received.append(out_value)
            if fire_in:
                pending += 1
        assert len(received) > 20
        expected = [v + 10 for v in range(1, len(received) + 1)]
        assert received == expected


class TestReadbackEngine:
    @pytest.fixture()
    def debug_setup(self):
        return program_instrumented(
            make_cohort_soc(with_bug=True), watch=["issued"])

    def test_optimized_reads_fewer_frames_than_naive(self, debug_setup):
        fabric, dbg, _ = debug_setup
        engine = ReadbackEngine(fabric)
        slr = 0
        naive = engine.read_slr_naive(slr)
        optimized = engine.read_slr_optimized(slr)
        assert optimized.frames_read < naive.frames_read
        assert optimized.seconds < naive.seconds

    def test_both_strategies_agree_on_values(self, debug_setup):
        fabric, dbg, _ = debug_setup
        fabric.sim.poke("en", 1)
        fabric.run(17)
        engine = ReadbackEngine(fabric)
        naive = engine.read_slr_naive(0)
        optimized = engine.read_slr_optimized(0)
        for name, value in optimized.values.items():
            assert naive.values[name] == value

    def test_readback_matches_simulator_truth(self, debug_setup):
        fabric, dbg, _ = debug_setup
        fabric.sim.poke("en", 1)
        fabric.run(23)
        engine = ReadbackEngine(fabric)
        values = engine.read_registers().values
        for name in ("lsu.issued_count", "mmu.tlb_sel_r", "datapath.acc"):
            assert values[name] == fabric.sim.peek(name)

    def test_estimate_matches_executed_time_shape(self, debug_setup):
        fabric, dbg, _ = debug_setup
        engine = ReadbackEngine(fabric)
        naive = engine.read_slr_naive(0)
        estimate = estimate_readback_seconds(naive.frames_read)
        assert 0.5 <= estimate / naive.seconds <= 2.0

    def test_estimate_pinned_to_executed_path(self, debug_setup):
        """The analytic model (used for paper-scale designs) and the
        executable read_slr path must not silently drift: same frames,
        same hops, within 5% — naive and optimized, every SLR."""
        fabric, dbg, _ = debug_setup
        engine = ReadbackEngine(fabric)
        device = fabric.device
        for slr in range(device.slr_count):
            hops = (slr - device.primary_slr) % device.slr_count
            executed = engine.read_slr_naive(slr)
            estimate = estimate_readback_seconds(
                executed.frames_read, hops)
            drift = abs(estimate - executed.seconds) / executed.seconds
            assert drift < 0.05, (
                f"SLR{slr} naive: estimate {estimate:.6f}s vs "
                f"executed {executed.seconds:.6f}s ({drift:.1%})")
        optimized = engine.read_slr_optimized(0)
        estimate = estimate_readback_seconds(optimized.frames_read, 0)
        drift = abs(estimate - optimized.seconds) / optimized.seconds
        assert drift < 0.05, (
            f"optimized: estimate {estimate:.6f}s vs executed "
            f"{optimized.seconds:.6f}s ({drift:.1%})")


class TestDebuggerFrontEnd:
    @pytest.fixture()
    def dbg(self):
        fabric, debugger, _ = program_instrumented(
            make_cohort_soc(with_bug=True),
            watch=["issued", "completed", "acc"])
        fabric.sim.poke("en", 1)
        return debugger

    def test_host_pause_and_resume(self, dbg):
        dbg.run(max_cycles=10)
        dbg.pause()
        assert dbg.is_paused()
        cycles = dbg.cycles()
        dbg.run(max_cycles=10)
        assert dbg.cycles() == cycles  # frozen
        dbg.resume()
        dbg.run(max_cycles=5)
        assert dbg.cycles() > cycles

    def test_state_access_requires_pause(self, dbg):
        with pytest.raises(NotPausedError):
            dbg.read_state()
        with pytest.raises(NotPausedError):
            dbg.write_state({"datapath.acc": 1})

    def test_value_breakpoint_pauses_at_exact_cycle(self, dbg):
        dbg.set_value_breakpoint({"issued": 2}, mode="and")
        dbg.run(max_cycles=200)
        assert dbg.is_paused()
        assert dbg.read("lsu.issued_count") == 2

    def test_or_breakpoint(self, dbg):
        dbg.set_value_breakpoint({"acc": 0xFFFF, "completed": 1},
                                 mode="or")
        dbg.run(max_cycles=300)
        assert dbg.is_paused()
        assert dbg.read("lsu.completed_count") == 1

    def test_step_advances_exactly_n(self, dbg):
        dbg.run(5)
        dbg.pause()
        before = dbg.cycles()
        advanced = dbg.step(7)
        assert advanced == 7
        assert dbg.is_paused()
        assert dbg.cycles() == before + 7

    def test_invalid_step_rejected(self, dbg):
        with pytest.raises(BreakpointError):
            dbg.step(0)

    def test_unwatched_signal_rejected(self, dbg):
        with pytest.raises(DebugError):
            dbg.set_value_breakpoint({"mmu.vpn_r": 1})

    def test_force_changes_running_behaviour(self, dbg):
        dbg.run(10)
        dbg.pause()
        dbg.force("datapath.acc", 0x100)
        assert dbg.read("datapath.acc") == 0x100

    def test_snapshot_restore_replay(self, dbg):
        dbg.run(12)
        dbg.pause()
        snap = dbg.snapshot("checkpoint")
        dbg.step(9)
        after = dbg.snapshot("later")
        assert diff_snapshots(snap, after)  # something moved
        dbg.restore(snap)
        replayed = dbg.snapshot("replayed")
        changed = {
            name for name in diff_snapshots(snap, replayed)
            if not name.startswith("zoomie_")
        }
        assert not changed

    def test_replay_reproduces_execution(self, dbg):
        """Restore + step N must equal the original run's state at the
        same point (deterministic replay, Section 3.3)."""
        dbg.run(10)
        dbg.pause()
        snap = dbg.snapshot()
        dbg.step(6)
        first = dbg.snapshot()
        dbg.restore(snap)
        dbg.step(6)
        second = dbg.snapshot()
        changed = {
            name for name in diff_snapshots(first, second)
            if not name.startswith("zoomie_")
        }
        assert not changed


class TestAssertionBreakpoints:
    def test_sva_failure_pauses_design(self):
        fabric, dbg, inst = program_instrumented(
            make_asserting_counter(limit=10), watch=["out"])
        fabric.sim.poke("en", 1)
        dbg.break_on_assertions(True)
        dbg.run(max_cycles=100)
        assert dbg.is_paused()
        # The bound is 10; the assertion fails the cycle count hits 11,
        # and the pause lands one cycle later (the controller registers
        # monitor fail pulses to keep the pause path fast).
        assert dbg.read("count") == 12

    def test_disabled_assertions_do_not_pause(self):
        fabric, dbg, inst = program_instrumented(
            make_asserting_counter(limit=10), watch=["out"])
        fabric.sim.poke("en", 1)
        dbg.run(max_cycles=50)
        assert not dbg.is_paused()

    def test_assertion_breakpoints_compose_with_value_triggers(self):
        fabric, dbg, inst = program_instrumented(
            make_asserting_counter(limit=200), watch=["out"])
        fabric.sim.poke("en", 1)
        dbg.break_on_assertions(True)
        dbg.set_value_breakpoint({"out": 5})
        dbg.run(max_cycles=100)
        assert dbg.is_paused()
        assert dbg.read("count") == 5


class TestWatchpoints:
    """Watchpoints pause when a watched signal *changes* (paper 2.2:
    "users can insert custom breakpoints or watchpoints on the fly")."""

    @pytest.fixture()
    def dbg(self):
        fabric, debugger, _ = program_instrumented(
            make_cohort_soc(with_bug=False),
            watch=["results", "acc"])
        fabric.sim.poke("en", 1)
        return debugger

    def test_watchpoint_pauses_on_change(self, dbg):
        dbg.set_watchpoint("results")
        dbg.run(max_cycles=300)
        assert dbg.is_paused()
        # Paused right after the first result retired.
        assert dbg.read("datapath.results_count") == 1

    def test_watchpoint_on_multiple_signals(self, dbg):
        dbg.set_watchpoint("results", "acc")
        dbg.run(max_cycles=300)
        assert dbg.is_paused()

    def test_resume_clears_watchpoint_by_default(self, dbg):
        dbg.set_watchpoint("results")
        dbg.run(max_cycles=300)
        cycle = dbg.cycles()
        dbg.resume()
        dbg.run(max_cycles=30)
        assert dbg.cycles() > cycle  # no immediate re-pause

    def test_rearmed_watchpoint_fires_again(self, dbg):
        dbg.set_watchpoint("results")
        dbg.run(max_cycles=300)
        first = dbg.read("datapath.results_count")
        dbg.resume()
        dbg.set_watchpoint("results")
        dbg.run(max_cycles=300)
        assert dbg.read("datapath.results_count") == first + 1

    def test_paused_design_does_not_self_trigger(self, dbg):
        dbg.run(10)
        dbg.pause()
        dbg.set_watchpoint("acc")
        # Still paused; the frozen value must not count as a change.
        dbg.write_state({self_reg: 0 for self_reg in []})  # no-op write
        assert dbg.is_paused()

    def test_empty_watch_rejected(self, dbg):
        with pytest.raises(BreakpointError):
            dbg.set_watchpoint()

    def test_cli_watch_command(self, dbg):
        from repro.debug.cli import ZoomieCli
        cli = ZoomieCli(dbg)
        out = cli.execute("watch results")
        assert "watchpoint" in out
        assert "paused" in cli.execute("run")


class TestSampling:
    """Section 7.7: print arbitrary signals over time by stepping —
    no probe selection, no recompilation."""

    @pytest.fixture()
    def dbg(self):
        fabric, debugger, _ = program_instrumented(
            make_cohort_soc(with_bug=False), watch=["issued"])
        fabric.sim.poke("en", 1)
        debugger.run(5)
        debugger.pause()
        return debugger

    def test_samples_track_execution(self, dbg):
        rows = dbg.sample_over(["lsu.issued_count"], cycles=12, stride=3)
        assert len(rows) == 5  # initial + 4 steps
        series = [row["lsu.issued_count"] for row in rows]
        assert series == sorted(series)
        assert series[-1] > series[0]

    def test_arbitrary_registers_without_probes(self, dbg):
        # None of these were in the watch list.
        rows = dbg.sample_over(
            ["mmu.tlb_sel_r", "datapath.acc", "bus.reqs_count"],
            cycles=6, stride=2)
        assert all(
            set(row) >= {"mmu.tlb_sel_r", "datapath.acc",
                         "bus.reqs_count"}
            for row in rows)

    def test_requires_pause(self):
        fabric, debugger, _ = program_instrumented(
            make_cohort_soc(with_bug=False), watch=["issued"])
        fabric.sim.poke("en", 1)
        with pytest.raises(NotPausedError):
            debugger.sample_over(["datapath.acc"], cycles=2)

    def test_stride_larger_than_total(self, dbg):
        rows = dbg.sample_over(["datapath.acc"], cycles=3, stride=10)
        assert len(rows) == 2
