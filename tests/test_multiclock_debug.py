"""Multi-clock-domain debugging (paper Sections 4.6, 6.1).

A two-domain design (fast core + slow peripheral) is paused, stepped,
and inspected: with phase-aligned, integer-ratio clocks stepping is
cycle-exact across both domains; with incommensurate clocks the
debugger refuses (Section 6.1's limitation) unless forced.
"""

import pytest

from repro.config import FabricDevice
from repro.debug import ZoomieDebugger, instrument_netlist
from repro.debug.controller import stepping_is_precise
from repro.errors import BreakpointError
from repro.fpga import make_test_device
from repro.rtl import ModuleBuilder, elaborate
from repro.vendor import VivadoFlow


def make_two_domain_design():
    """A fast counter and a slow counter in separate clock domains."""
    b = ModuleBuilder("twodomain")
    en = b.input("en", 1)
    fast = b.reg("fast_count", 16, clock="fast")
    slow = b.reg("slow_count", 16, clock="slow")
    b.next(fast, fast + 1)
    b.next(slow, slow + 1)
    b.output_expr("fast_out", fast)
    b.output_expr("slow_out", slow)
    b.output_expr("active", en)
    return b.build()


def launch(fast_mhz, slow_mhz):
    device = make_test_device()
    netlist = elaborate(make_two_domain_design())
    inst = instrument_netlist(netlist, watch=["fast_out"])
    clocks = {"fast": fast_mhz, "slow": slow_mhz,
              "zoomie_clk": fast_mhz}
    result = VivadoFlow(device).compile_netlist(
        netlist, clocks, gate_signals=inst.gate_signals)
    fabric = FabricDevice(device)
    fabric.expect(result.database)
    fabric.jtag.run(result.bitstream)
    fabric.sim.poke("en", 1)
    return fabric, ZoomieDebugger(fabric, inst)


class TestPrecisionPredicate:
    def test_single_domain_always_precise(self):
        assert stepping_is_precise({"clk": 10_000})

    def test_integer_multiples_precise(self):
        assert stepping_is_precise({"fast": 4_000, "slow": 8_000})
        assert stepping_is_precise({"a": 1_000, "b": 3_000, "c": 6_000})

    def test_incommensurate_imprecise(self):
        assert not stepping_is_precise({"fast": 4_000, "slow": 10_000})

    def test_empty_is_precise(self):
        assert stepping_is_precise({})


class TestAlignedDomains:
    def test_pause_freezes_both_domains(self):
        fabric, dbg = launch(fast_mhz=200.0, slow_mhz=100.0)
        dbg.run(20)
        dbg.pause()
        fast = fabric.sim.peek("fast_count")
        slow = fabric.sim.peek("slow_count")
        dbg.run(20)
        assert fabric.sim.peek("fast_count") == fast
        assert fabric.sim.peek("slow_count") == slow

    def test_step_is_cycle_exact_in_both_domains(self):
        fabric, dbg = launch(fast_mhz=200.0, slow_mhz=100.0)
        assert dbg.stepping_precise()
        dbg.run(10)
        dbg.pause()
        fast_before = fabric.sim.peek("fast_count")
        slow_before = fabric.sim.peek("slow_count")
        dbg.step(8)  # 8 fast cycles = 4 slow cycles (2:1 ratio)
        assert fabric.sim.peek("fast_count") == fast_before + 8
        assert fabric.sim.peek("slow_count") == slow_before + 4
        assert dbg.is_paused()

    def test_readback_covers_both_domains(self):
        fabric, dbg = launch(fast_mhz=200.0, slow_mhz=100.0)
        dbg.run(12)
        dbg.pause()
        state = dbg.read_state()
        assert state["fast_count"] == fabric.sim.peek("fast_count")
        assert state["slow_count"] == fabric.sim.peek("slow_count")


class TestSnapshotCycleDomain:
    """Regression: snapshots must record the MUT's counted clock domain
    — the same one ``ZoomieDebugger.cycles()`` reports — not whichever
    simulator domain sorts first alphabetically (which can be the
    free-running ``zoomie_clk`` and keeps counting while the design is
    paused)."""

    def launch_zz(self):
        b = ModuleBuilder("zzdomain")
        en = b.input("en", 1)
        fast = b.reg("zz_count_a", 16, clock="zz_fast")
        slow = b.reg("zz_count_b", 16, clock="zz_slow")
        b.next(fast, fast + 1)
        b.next(slow, slow + 1)
        b.output_expr("a_out", fast)
        b.output_expr("b_out", slow)
        b.output_expr("active", en)
        device = make_test_device()
        netlist = elaborate(b.build())
        inst = instrument_netlist(netlist, watch=["a_out"])
        clocks = {"zz_fast": 200.0, "zz_slow": 100.0,
                  "zoomie_clk": 200.0}
        result = VivadoFlow(device).compile_netlist(
            netlist, clocks, gate_signals=inst.gate_signals)
        fabric = FabricDevice(device)
        fabric.expect(result.database)
        fabric.jtag.run(result.bitstream)
        fabric.sim.poke("en", 1)
        return fabric, ZoomieDebugger(fabric, inst), inst

    def test_snapshot_records_mut_cycle_not_free_domain(self):
        fabric, dbg, inst = self.launch_zz()
        dbg.run(20)
        dbg.pause()
        # The free Zoomie domain keeps ticking while the MUT is frozen;
        # the recorded cycle must not drift with it.
        fabric.run(7)
        snap = dbg.snapshot()
        assert snap.cycle == dbg.cycles()
        assert snap.cycle == fabric.sim.cycles(inst.mut_domains[0])
        assert snap.cycle != fabric.sim.cycles("zoomie_clk")

    def test_read_state_cycle_matches_too(self):
        fabric, dbg, _ = self.launch_zz()
        dbg.run(15)
        dbg.pause()
        fabric.run(3)
        state = dbg.read_state()
        assert state.cycle == dbg.cycles()


class TestIncommensurateDomains:
    def test_step_refuses_without_force(self):
        fabric, dbg = launch(fast_mhz=250.0, slow_mhz=100.0)
        assert not dbg.stepping_precise()
        dbg.run(10)
        dbg.pause()
        with pytest.raises(BreakpointError) as info:
            dbg.step(4)
        assert "Section 6.1" in str(info.value)

    def test_forced_step_still_runs(self):
        fabric, dbg = launch(fast_mhz=250.0, slow_mhz=100.0)
        dbg.run(10)
        dbg.pause()
        before = dbg.cycles()
        dbg.step(4, force=True)
        assert dbg.cycles() == before + 4  # exact in the counted domain

    def test_pause_and_readback_still_work(self):
        """Section 6.1 limits *stepping*; pausing and visibility remain."""
        fabric, dbg = launch(fast_mhz=250.0, slow_mhz=100.0)
        dbg.set_value_breakpoint({"fast_out": 15})
        dbg.run(100)
        assert dbg.is_paused()
        assert dbg.read("fast_count") == 15
