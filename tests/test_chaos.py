"""Stack-wide fault injection, supervision, and the chaos campaign.

Covers the chaos subsystem end to end: seeded schedules and their
firing semantics, the circuit breaker, supervised disk I/O
(:func:`run_io`), every instrumented layer's fault + fallback behavior
(journal, snapshot store, simulator engines, trace capture, VTI
scheduler, pause network, transport), and a miniature campaign run with
all differential invariants enabled.
"""

import random

import pytest

from repro.chaos import (
    DOCUMENTED_FALLBACKS,
    CircuitBreaker,
    FaultSchedule,
    FaultSpec,
    SuperviseConfig,
    chaos_active,
    get_supervisor,
    install_chaos,
    modeled_io_seconds,
    note_degradation,
    run_io,
)
from repro.config import FabricDevice, FaultPlan
from repro.debug import (
    StateSnapshot,
    ZoomieDebugger,
    diff_snapshots,
    enable_crash_safety,
    instrument_netlist,
    recover_session,
)
from repro.debug.journal import CommandJournal, read_journal
from repro.debug.snapshot_store import SnapshotStore
from repro.designs import make_pipeline
from repro.errors import (
    ChaosError,
    CircuitOpenError,
    DebugTimeoutError,
    DiskFaultError,
    JournalCorruptError,
    is_retryable,
)
from repro.fpga import make_test_device
from repro.rtl import Simulator, elaborate
from repro.vendor import VivadoFlow


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def arm(*specs, seed=0):
    """A registry armed with explicit specs."""
    return FaultSchedule(seed=seed, specs=specs).registry()


@pytest.fixture
def supervised():
    sup = get_supervisor()
    sup.enable(SuperviseConfig())
    sup.reset()
    yield sup
    sup.disable()
    sup.reset()


@pytest.fixture(scope="module")
def compiled_pipeline():
    device = make_test_device()
    netlist = elaborate(make_pipeline(depth=4, width=16))
    inst = instrument_netlist(netlist, watch=["v3"])
    flow = VivadoFlow(device)
    clocks = {d: 100.0 for d in netlist.clock_domains()}
    result = flow.compile_netlist(netlist, clocks,
                                  gate_signals=inst.gate_signals)
    return device, inst, result


def fresh_session(compiled):
    device, inst, result = compiled
    fabric = FabricDevice(device)
    fabric.expect(result.database)
    fabric.jtag.run(result.bitstream)
    return fabric, ZoomieDebugger(fabric, inst)


# --------------------------------------------------------------------------
# schedules
# --------------------------------------------------------------------------


class TestFaultSchedule:
    def test_generate_is_seed_deterministic(self):
        a = FaultSchedule.generate(42)
        b = FaultSchedule.generate(42)
        assert a.specs == b.specs
        assert a.transport == b.transport
        assert FaultSchedule.generate(43).specs != a.specs or \
            FaultSchedule.generate(43).transport != a.transport

    def test_registry_replays_identically(self):
        schedule = FaultSchedule(
            seed=5, specs=[FaultSpec(site="journal.sync",
                                     kind="torn_write", rate=0.5,
                                     count=3)])
        def fire_pattern():
            registry = schedule.registry()
            return [registry.visit("journal.sync") is not None
                    for _ in range(20)]
        assert fire_pattern() == fire_pattern()

    def test_at_fires_exactly_once_on_the_right_visit(self):
        registry = arm(FaultSpec(site="snapstore.put", kind="torn_write",
                                 at=2))
        hits = [registry.visit("snapstore.put") for _ in range(6)]
        assert [h is not None for h in hits] == [
            False, False, True, False, False, False]
        assert hits[2].kind == "torn_write"
        assert registry.faults_fired == 1

    def test_count_bounds_rate_fires(self):
        registry = arm(FaultSpec(site="journal.sync", kind="enospc",
                                 rate=1.0, count=2))
        fired = sum(registry.visit("journal.sync") is not None
                    for _ in range(10))
        assert fired == 2

    def test_pattern_matches_site_family(self):
        registry = arm(FaultSpec(site="planstore.*", kind="torn_write",
                                 at=0))
        assert registry.visit("planstore.merge") is not None

    def test_spec_validation(self):
        with pytest.raises(ChaosError, match="unknown fault kind"):
            FaultSpec(site="journal.sync", kind="gremlins", at=0)
        with pytest.raises(ChaosError, match="matches no known site"):
            FaultSpec(site="nonexistent.site", kind="torn_write", at=0)
        with pytest.raises(ChaosError, match="implements fault kind"):
            # planstore.load only implements bit_rot
            FaultSpec(site="planstore.load", kind="enospc", at=0)
        with pytest.raises(ChaosError, match="at= or a rate"):
            FaultSpec(site="journal.sync", kind="torn_write")
        with pytest.raises(ChaosError, match="count"):
            FaultSpec(site="journal.sync", kind="torn_write", at=0,
                      count=0)

    def test_install_rejects_nesting(self):
        registry = arm(FaultSpec(site="journal.sync", kind="torn_write",
                                 at=0))
        with install_chaos(registry):
            assert chaos_active()
            with pytest.raises(ChaosError, match="do not nest"):
                with install_chaos(arm()):
                    pass
        assert not chaos_active()

    def test_describe_names_every_spec(self):
        schedule = FaultSchedule.generate(7)
        text = schedule.describe()
        for spec in schedule.specs:
            assert spec.site in text and spec.kind in text


# --------------------------------------------------------------------------
# circuit breaker
# --------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=1.0):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(lambda: clock["now"],
                                 threshold=threshold,
                                 cooldown_seconds=cooldown, name="test")
        return clock, breaker

    def test_opens_after_threshold_consecutive_failures(self):
        clock, breaker = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        breaker.allow()  # still closed
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.failures == 3
        assert info.value.retryable is False

    def test_success_resets_the_failure_run(self):
        clock, breaker = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.allow()  # 1 < threshold again

    def test_half_open_after_cooldown_then_closes_on_success(self):
        clock, breaker = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock["now"] = 2.0
        breaker.allow()  # half-open probe admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens_immediately(self):
        clock, breaker = self.make(threshold=5, cooldown=1.0)
        for _ in range(5):
            breaker.record_failure()
        clock["now"] = 2.0
        breaker.allow()
        breaker.record_failure()  # probe failed: open again, no quota
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_cooldown_measured_on_the_supplied_clock(self):
        clock, breaker = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock["now"] = 9.99
        with pytest.raises(CircuitOpenError):
            breaker.allow()


# --------------------------------------------------------------------------
# supervised I/O
# --------------------------------------------------------------------------


class TestRunIO:
    def test_unsupervised_passthrough_models_seconds(self):
        value, seconds = run_io("journal.sync", 640, lambda fault: "ok")
        assert value == "ok"
        assert seconds == pytest.approx(modeled_io_seconds(640))

    def test_supervised_retries_a_torn_write(self, supervised):
        repairs = []

        def attempt(fault):
            if fault is not None:
                raise DiskFaultError("torn (injected)", kind="torn_write")
            return "landed"

        registry = arm(FaultSpec(site="journal.sync", kind="torn_write",
                                 at=0))
        with install_chaos(registry):
            value, seconds = run_io("journal.sync", 64, attempt,
                                    repair=lambda e: repairs.append(e))
        assert value == "landed"
        assert len(repairs) == 1
        assert seconds == pytest.approx(2 * modeled_io_seconds(64))

    def test_enospc_is_not_retryable(self, supervised):
        def attempt(fault):
            if fault is not None:
                raise DiskFaultError("disk full", kind="enospc")
            return "never"

        registry = arm(FaultSpec(site="journal.sync", kind="enospc",
                                 at=0))
        with install_chaos(registry):
            with pytest.raises(DiskFaultError) as info:
                run_io("journal.sync", 64, attempt)
        assert not is_retryable(info.value)

    def test_slow_sync_past_deadline_raises_timeout(self, supervised):
        registry = arm(FaultSpec(site="journal.sync", kind="slow_sync",
                                 at=0, seconds=1.0))
        with install_chaos(registry):
            with pytest.raises(DebugTimeoutError):
                # journal deadline is 0.5 modeled seconds; the write
                # *succeeds* but outlives its budget.
                run_io("journal.sync", 64, lambda fault: "late")
        assert supervised.deadline_hits

    def test_retry_exhaustion_surfaces_the_disk_error(self, supervised):
        def attempt(fault):
            if fault is not None:
                raise DiskFaultError("torn (injected)", kind="torn_write")
            return "never"

        registry = arm(FaultSpec(site="journal.sync", kind="torn_write",
                                 rate=1.0, count=100))
        with install_chaos(registry):
            with pytest.raises(DiskFaultError):
                run_io("journal.sync", 64, attempt)


# --------------------------------------------------------------------------
# journal faults
# --------------------------------------------------------------------------


class TestJournalChaos:
    def test_torn_sync_repaired_without_duplicates(self, tmp_path,
                                                   supervised):
        journal = CommandJournal(tmp_path / "j.log")
        journal.append("pause")
        journal.append("run", {"max_cycles": 5})
        registry = arm(FaultSpec(site="journal.sync", kind="torn_write",
                                 at=1))
        with install_chaos(registry):
            journal.append("step", {"cycles": 1, "force": False})
            journal.append("resume", {"clear_triggers": True})
        assert registry.faults_fired == 1
        assert journal.durable_count == 4
        records, torn = read_journal(tmp_path / "j.log")
        assert not torn
        assert [r.command for r in records] == [
            "pause", "run", "step", "resume"]
        assert supervised.degradations and \
            supervised.degradations[0].fallback == "journal.tail_repair"

    def test_bit_rot_is_detected_on_read(self, tmp_path):
        journal = CommandJournal(tmp_path / "j.log")
        registry = arm(FaultSpec(site="journal.sync", kind="bit_rot",
                                 at=0), seed=11)
        with install_chaos(registry):
            journal.append("pause")
        journal.append("resume", {"clear_triggers": True})
        with pytest.raises(JournalCorruptError):
            read_journal(tmp_path / "j.log")

    def test_enospc_unsupervised_surfaces_raw(self, tmp_path):
        journal = CommandJournal(tmp_path / "j.log")
        registry = arm(FaultSpec(site="journal.sync", kind="enospc",
                                 at=0))
        with install_chaos(registry):
            with pytest.raises(DiskFaultError):
                journal.append("pause")
        assert journal.durable_count == 0


# --------------------------------------------------------------------------
# snapshot-store faults
# --------------------------------------------------------------------------


def snap(**values):
    return StateSnapshot(values=values or {"core.pc": 0x10},
                         memories={"rf": [1, 2, 3]}, cycle=7, label="x")


class TestSnapshotStoreChaos:
    def test_torn_put_is_a_detectable_defect(self, tmp_path):
        store = SnapshotStore(tmp_path)
        original = snap()
        registry = arm(FaultSpec(site="snapstore.put", kind="torn_write",
                                 at=0))
        with install_chaos(registry):
            with pytest.raises(DiskFaultError):
                store.put(original)
        defect = store.verify(original.content_key())
        assert defect is not None

    def test_supervised_put_retries_past_the_tear(self, tmp_path,
                                                  supervised):
        store = SnapshotStore(tmp_path)
        original = snap()
        registry = arm(FaultSpec(site="snapstore.put", kind="torn_write",
                                 at=0))
        with install_chaos(registry):
            key = store.put(original)
        assert key == original.content_key()
        assert store.verify(key) is None
        assert store.get(key).values == original.values

    def test_bit_rot_put_is_silent_until_verified(self, tmp_path):
        store = SnapshotStore(tmp_path)
        registry = arm(FaultSpec(site="snapstore.put", kind="bit_rot",
                                 at=0), seed=3)
        with install_chaos(registry):
            key = store.put(snap())
        assert store.verify(key) is not None  # CRC/hash catches it

    def test_enospc_put_fails_typed(self, tmp_path):
        store = SnapshotStore(tmp_path)
        registry = arm(FaultSpec(site="snapstore.put", kind="enospc",
                                 at=0))
        with install_chaos(registry):
            with pytest.raises(DiskFaultError) as info:
                store.put(snap())
        assert info.value.kind == "enospc"


# --------------------------------------------------------------------------
# engine fallbacks
# --------------------------------------------------------------------------


class TestEngineFallbacks:
    def test_fused_to_closures_is_bit_identical(self, supervised):
        netlist = elaborate(make_pipeline(depth=4, width=16))
        registry = arm(FaultSpec(site="sim.plan_compile",
                                 kind="kernel_compile", at=0))
        with install_chaos(registry):
            degraded = Simulator(netlist, engine="fused")
        assert degraded.engine == "closures"
        assert any(d.fallback == "sim.fused_to_closures"
                   for d in supervised.degradations)

        clean = Simulator(elaborate(make_pipeline(depth=4, width=16)),
                          engine="fused")
        for sim in (degraded, clean):
            sim.poke("in_valid", 1)
            sim.poke("in_data", 0xAB)
            sim.poke("out_ready", 1)
            sim.step(50)
        assert degraded.env == clean.env

    def test_streaming_to_hook_capture_same_samples(
            self, compiled_pipeline, supervised):
        def capture(with_fault):
            fabric, debugger = fresh_session(compiled_pipeline)
            debugger.record_input("in_valid", 1)
            debugger.record_input("in_data", 0x11)
            debugger.record_input("out_ready", 1)
            if with_fault:
                registry = arm(FaultSpec(site="sim.capture_kernel",
                                         kind="kernel_compile", at=0))
                with install_chaos(registry):
                    trace = debugger.trace_capture(["v3"], cycles=30)
            else:
                trace = debugger.trace_capture(["v3"], cycles=30)
            return trace, debugger.cycles()

    # stride=1: the hook fallback records the identical sample set
        faulted, faulted_cycles = capture(True)
        clean, clean_cycles = capture(False)
        assert faulted_cycles == clean_cycles
        assert faulted.cycles_recorded() == clean.cycles_recorded()
        assert faulted.series("v3") == clean.series("v3")
        assert any(d.fallback == "trace.streaming_to_hook"
                   for d in supervised.degradations)


# --------------------------------------------------------------------------
# VTI scheduler faults
# --------------------------------------------------------------------------


class TestVtiWorkerChaos:
    @pytest.fixture(scope="class")
    def vti_factory(self):
        from repro.designs import make_manycore_soc
        from repro.fpga import make_u200
        from repro.vti import PartitionSpec, VtiFlow

        def build():
            soc = make_manycore_soc(5400)
            vti = VtiFlow(make_u200(), cache=None)
            initial = vti.compile_initial(
                soc, {"clk": 50.0},
                [PartitionSpec(f"tile{i}.core0") for i in range(2)])
            return vti, initial

        return build

    def test_worker_death_restarts_bit_identically(self, vti_factory,
                                                   supervised):
        changes = {f"tile{i}.core0": None for i in range(2)}
        clean_vti, clean_initial = vti_factory()
        clean, clean_wall = clean_vti.compile_incremental_many(
            clean_initial, dict(changes))
        faulted_vti, faulted_initial = vti_factory()
        registry = arm(FaultSpec(site="vti.worker", kind="worker_death",
                                 at=0))
        with install_chaos(registry):
            faulted, faulted_wall = faulted_vti.compile_incremental_many(
                faulted_initial, dict(changes))
        assert registry.faults_fired == 1
        assert any(d.fallback == "vti.worker_restart"
                   for d in supervised.degradations)
        assert faulted_wall == clean_wall
        for a, b in zip(clean, faulted):
            assert a.partition_path == b.partition_path
            assert a.total_seconds == b.total_seconds
            assert a.new_top.name == b.new_top.name

    def test_unsupervised_worker_death_surfaces(self, vti_factory):
        vti, initial = vti_factory()
        registry = arm(FaultSpec(site="vti.worker", kind="lost_future",
                                 rate=1.0, count=100))
        with install_chaos(registry):
            with pytest.raises(ChaosError) as info:
                vti.compile_incremental_many(
                    initial, {"tile0.core0": None})
        assert info.value.kind == "lost_future"
        assert info.value.retryable


# --------------------------------------------------------------------------
# pause network + clock gates
# --------------------------------------------------------------------------


class TestPauseChaos:
    def test_gate_ack_drop_leaves_mask_unchanged(self,
                                                 compiled_pipeline):
        fabric, _ = fresh_session(compiled_pipeline)
        registry = arm(FaultSpec(site="fabric.gate_ack",
                                 kind="gate_ack_drop", at=0))
        with install_chaos(registry):
            fabric.set_clock_gates(1, fabric.device.primary_slr)
        assert fabric.gate_mask == 0  # dropped
        fabric.set_clock_gates(1, fabric.device.primary_slr)
        assert fabric.gate_mask == 1  # no fault armed: lands

    def test_supervised_pause_retries_a_stuck_write(
            self, compiled_pipeline, supervised):
        fabric, debugger = fresh_session(compiled_pipeline)
        debugger.record_input("in_valid", 1)
        debugger.run(max_cycles=5)
        registry = arm(FaultSpec(site="fabric.pause_write",
                                 kind="pause_stuck", at=0))
        with install_chaos(registry):
            debugger.pause()
        assert debugger.is_paused()
        assert not debugger.safe_paused  # ordinary retry, no escalation
        assert registry.faults_fired == 1

    def test_pause_escalates_to_emergency_gates(self, compiled_pipeline,
                                                supervised):
        fabric, debugger = fresh_session(compiled_pipeline)
        debugger.record_input("in_valid", 1)
        debugger.run(max_cycles=5)
        registry = arm(FaultSpec(site="fabric.pause_write",
                                 kind="pause_stuck", rate=1.0,
                                 count=100))
        with install_chaos(registry):
            debugger.pause()
        assert any(d.fallback == "pause.emergency_gates"
                   for d in supervised.degradations)
        assert debugger.safe_paused
        assert all(fabric.is_gated(d) for d in fabric.sim.domains)


# --------------------------------------------------------------------------
# transport: hangs, power cycles, breaker integration
# --------------------------------------------------------------------------


class TestTransportChaos:
    def test_device_hang_is_retried_with_a_plan_armed(
            self, compiled_pipeline):
        fabric, debugger = fresh_session(compiled_pipeline)
        fabric.enable_fault_injection(FaultPlan(seed=1))
        before = fabric.transport.stats.stuck_detected
        registry = arm(FaultSpec(site="transport.batch",
                                 kind="device_hang", at=0))
        with install_chaos(registry):
            debugger.pause()  # first batch hangs once, retry lands
        assert debugger.is_paused()
        assert fabric.transport.stats.stuck_detected == before + 1

    def test_breaker_refuses_traffic_after_exhaustion(
            self, compiled_pipeline):
        fabric, debugger = fresh_session(compiled_pipeline)
        fabric.enable_fault_injection(FaultPlan(seed=1))
        fabric.transport.breaker = CircuitBreaker(
            lambda: fabric.jtag.total_seconds, threshold=1,
            cooldown_seconds=1e9, name="test-fabric")
        registry = arm(FaultSpec(site="transport.batch",
                                 kind="device_hang", rate=1.0,
                                 count=1000))
        from repro.errors import TransportError
        with install_chaos(registry):
            with pytest.raises(TransportError):
                debugger.pause()  # every attempt hangs -> exhausted
            batches = fabric.transport.stats.batches
            with pytest.raises(CircuitOpenError):
                debugger.pause()  # refused without touching the channel
        assert fabric.transport.stats.batches == batches

    def test_power_cycle_reboots_and_recovery_converges(
            self, compiled_pipeline, tmp_path, supervised):
        fabric, debugger = fresh_session(compiled_pipeline)
        enable_crash_safety(debugger, tmp_path)
        fabric.enable_fault_injection(FaultPlan(seed=1))
        debugger.record_input("in_valid", 1)
        debugger.record_input("in_data", 0x2A)
        debugger.record_input("out_ready", 1)
        debugger.run(max_cycles=12)
        registry = arm(FaultSpec(site="transport.batch",
                                 kind="power_cycle", at=0))
        with install_chaos(registry):
            with pytest.raises(ChaosError) as info:
                debugger.pause()
        assert info.value.kind == "power_cycle"
        assert fabric.booted  # rebooted, but at initial state
        assert fabric.sim.domains["clk"].cycles == 0

        _, recovered = fresh_session(compiled_pipeline)
        recover_session(recovered, tmp_path)

        _, golden = fresh_session(compiled_pipeline)
        golden.record_input("in_valid", 1)
        golden.record_input("in_data", 0x2A)
        golden.record_input("out_ready", 1)
        golden.run(max_cycles=12)
        golden.pause()

        g = golden.engine.snapshot()
        r = recovered.engine.snapshot()
        assert diff_snapshots(g, r) == {}
        assert g.content_key() == r.content_key()


# --------------------------------------------------------------------------
# degradation table
# --------------------------------------------------------------------------


class TestDegradationTable:
    def test_undocumented_fallback_is_rejected(self):
        with pytest.raises(ChaosError, match="undocumented degradation"):
            note_degradation("totally.new.shortcut", site="nowhere")

    def test_every_fallback_is_documented_with_a_reason(self):
        for name, why in DOCUMENTED_FALLBACKS.items():
            assert "." in name
            assert len(why) > 20


# --------------------------------------------------------------------------
# miniature campaign
# --------------------------------------------------------------------------


class TestCampaign:
    def test_mini_campaign_holds_all_invariants(self, tmp_path):
        from repro.chaos.campaign import CampaignConfig, run_campaign
        config = CampaignConfig(schedules=3, seed=7,
                                designs=("pipeline",))
        report = run_campaign(config, tmp_path)
        assert len(report.outcomes) == 3
        assert report.passed, report.describe()
        assert "invariants: all held" in report.describe()
        # Supervision state is restored afterwards.
        assert not get_supervisor().enabled

    def test_unknown_design_rejected(self, tmp_path):
        from repro.chaos.campaign import CampaignConfig, run_campaign
        with pytest.raises(ChaosError, match="unknown campaign design"):
            run_campaign(CampaignConfig(designs=("nope",)), tmp_path)

    def test_campaign_is_seed_deterministic(self, tmp_path):
        from repro.chaos.campaign import CampaignConfig, run_campaign
        config = CampaignConfig(schedules=2, seed=31,
                                designs=("pipeline",))
        a = run_campaign(config, tmp_path / "a")
        b = run_campaign(config, tmp_path / "b")
        assert [(o.outcome, o.faults_injected, o.recoveries)
                for o in a.outcomes] \
            == [(o.outcome, o.faults_injected, o.recoveries)
                for o in b.outcomes]
