"""Tests for the bitstream codec, assembler, and analyzer."""

import pytest

from repro.bitstream import (
    DUMMY,
    SYNC,
    BitstreamAssembler,
    Packet,
    analyze_bitstream,
    decode_stream,
    encode_packet,
)
from repro.bitstream.packets import NOP, READ, WRITE
from repro.bitstream.words import REGISTERS, register_name
from repro.errors import BitstreamError
from repro.fpga import FRAME_WORDS, FrameAddress, make_test_device, make_u200


class TestPacketCodec:
    def test_nop_roundtrip(self):
        words = encode_packet(Packet(opcode=NOP, register=0))
        packets = list(decode_stream(words, synced=True))
        assert len(packets) == 1
        assert packets[0].opcode == NOP

    def test_small_write_roundtrip(self):
        packet = Packet(opcode=WRITE, register=REGISTERS["FAR"],
                        words=[0x1234])
        decoded = list(decode_stream(encode_packet(packet), synced=True))[0]
        assert decoded.register == REGISTERS["FAR"]
        assert decoded.words == [0x1234]

    def test_large_write_uses_type2(self):
        payload = list(range(5000))
        packet = Packet(opcode=WRITE, register=REGISTERS["FDRI"],
                        words=payload)
        words = encode_packet(packet)
        # Type-1 header with zero count, then type-2 header, then payload.
        assert len(words) == 2 + len(payload)
        decoded = list(decode_stream(words, synced=True))[0]
        assert decoded.words == payload

    def test_read_roundtrip(self):
        packet = Packet(opcode=READ, register=REGISTERS["FDRO"],
                        read_count=186)
        decoded = list(decode_stream(encode_packet(packet), synced=True))[0]
        assert decoded.opcode == READ
        assert decoded.read_count == 186

    def test_large_read_uses_type2(self):
        packet = Packet(opcode=READ, register=REGISTERS["FDRO"],
                        read_count=100_000)
        decoded = list(decode_stream(encode_packet(packet), synced=True))[0]
        assert decoded.read_count == 100_000

    def test_unsynced_stream_skips_garbage(self):
        words = [0xDEAD_BEEF, DUMMY, SYNC,
                 *encode_packet(Packet(opcode=NOP, register=0))]
        packets = list(decode_stream(words))
        assert len(packets) == 1

    def test_truncated_payload_rejected(self):
        words = encode_packet(Packet(
            opcode=WRITE, register=REGISTERS["FAR"], words=[1, 2, 3]))[:-1]
        with pytest.raises(BitstreamError):
            list(decode_stream(words, synced=True))

    def test_type2_without_type1_rejected(self):
        with pytest.raises(BitstreamError):
            list(decode_stream([(0b010 << 29) | (2 << 27) | 4], synced=True))

    def test_register_names(self):
        assert register_name(REGISTERS["BOUT"]) == "BOUT"
        assert register_name(0x15) == "REG_0x15"


class TestAssembler:
    def test_preamble_contains_sync(self):
        asm = BitstreamAssembler(make_test_device())
        asm.preamble()
        assert SYNC in asm.words
        assert asm.words[0] == DUMMY

    def test_hop_counts_follow_ring_distance(self):
        # U200: primary is SLR1; SLR2 is 1 hop, SLR0 is 2 hops.
        asm = BitstreamAssembler(make_u200())
        assert asm.hops_to(1) == 0
        assert asm.hops_to(2) == 1
        assert asm.hops_to(0) == 2

    def test_frame_write_sequence(self):
        device = make_test_device()
        asm = BitstreamAssembler(device)
        address = FrameAddress(block_type=0, region=0, column=0, minor=0)
        asm.preamble()
        asm.write_frames(address, [[0] * FRAME_WORDS] * 2)
        packets = list(decode_stream(asm.words))
        registers = [p.register_name for p in packets if p.opcode == WRITE]
        assert registers == ["CMD", "FAR", "FDRI"]

    def test_bad_frame_size_rejected(self):
        asm = BitstreamAssembler(make_test_device())
        with pytest.raises(BitstreamError):
            asm.write_frames(
                FrameAddress(0, 0, 0, 0), [[0] * (FRAME_WORDS - 1)])


class TestAnalyzer:
    def build_multi_slr_stream(self):
        device = make_u200()
        asm = BitstreamAssembler(device)
        asm.preamble()
        for slr_index in (1, 2, 0):  # primary, then ring order
            asm.hop_to_slr(slr_index)
            asm.write_idcode()
            asm.command("WCFG")
        return asm.words

    def test_sections_split_on_bout_groups(self):
        analysis = analyze_bitstream(self.build_multi_slr_stream())
        assert len(analysis.sections) == 3

    def test_bout_repetition_pattern(self):
        """Paper Section 4.4: one BOUT before the first secondary, two
        before the second."""
        analysis = analyze_bitstream(self.build_multi_slr_stream())
        assert analysis.bout_pattern == [1, 2]

    def test_idcode_written_per_section(self):
        analysis = analyze_bitstream(self.build_multi_slr_stream())
        device = make_u200()
        assert analysis.idcode_values == [device.idcode] * 3

    def test_section_commands_visible(self):
        analysis = analyze_bitstream(self.build_multi_slr_stream())
        for section in analysis.sections:
            assert "WCFG" in section.commands
