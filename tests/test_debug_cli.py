"""Tests for the gdb-like command interpreter."""

import json

import pytest

from repro import Zoomie, ZoomieProject
from repro.config import CrashPlan
from repro.debug import enable_crash_safety
from repro.debug.cli import ZoomieCli
from repro.designs import make_cohort_soc
from repro.errors import SessionCrashedError


def make_cli():
    project = ZoomieProject(
        design=make_cohort_soc(with_bug=False), device="TEST2",
        clocks={"clk": 100.0}, watch=["issued", "completed"])
    session = Zoomie(project).launch()
    session.poke_input("en", 1)
    return ZoomieCli(session.debugger)


@pytest.fixture()
def cli():
    return make_cli()


class TestBasicCommands:
    def test_help_lists_commands(self, cli):
        text = cli.execute("help")
        assert "break" in text and "snapshot" in text

    def test_unknown_command(self, cli):
        assert "unknown command" in cli.execute("frobnicate")

    def test_empty_line_is_noop(self, cli):
        assert cli.execute("   ") == ""

    def test_break_run_print_flow(self, cli):
        out = cli.execute("break issued=3")
        assert "issued==0x3" in out
        out = cli.execute("run")
        assert "paused" in out
        out = cli.execute("print lsu.issued_count")
        assert "= 0x3" in out

    def test_or_breakpoint_syntax(self, cli):
        out = cli.execute("break issued=200 completed=1 or")
        assert "OR" in out
        assert "paused" in cli.execute("run")

    def test_malformed_break_reports_error(self, cli):
        assert "error" in cli.execute("break issued")
        assert "error" in cli.execute("break")

    def test_step_and_continue(self, cli):
        cli.execute("run 5")
        cli.execute("pause")
        out = cli.execute("step 4")
        assert "stepped 4" in out
        assert "running" in cli.execute("continue")

    def test_set_and_print_hex(self, cli):
        cli.execute("run 5")
        cli.execute("pause")
        assert "<- 0xab" in cli.execute("set datapath.acc 0xAB")
        assert "= 0xab" in cli.execute("print datapath.acc")

    def test_state_filters_zoomie_internals(self, cli):
        cli.execute("pause")
        text = cli.execute("state")
        assert "lsu.issued_count" in text
        assert "zoomie_" not in text

    def test_errors_surface_not_raise(self, cli):
        # Not paused: state access is a user error, not a crash.
        out = cli.execute("state")
        assert out.startswith("error:")

    def test_watchlist_and_info(self, cli):
        text = cli.execute("watchlist")
        assert "issued" in text and "completed" in text
        info = cli.execute("info")
        assert "session JTAG time" in info


class TestSnapshotCommands:
    def test_snapshot_restore_diff(self, cli):
        cli.execute("run 10")
        cli.execute("pause")
        assert "snapshot 'a'" in cli.execute("snapshot a")
        cli.execute("step 6")
        diff = cli.execute("diff a")
        assert "->" in diff  # something changed
        cli.execute("restore a")
        # After restore, the design-level diff is empty.
        diff_after = cli.execute("diff a")
        assert diff_after == "(no differences)"

    def test_restore_unknown_label(self, cli):
        assert "error" in cli.execute("restore nope")


class TestJournalCommands:
    def test_journal_without_crash_safety(self, cli):
        out = cli.execute("journal")
        assert out.startswith("error:")
        assert "enable_crash_safety" in out

    def test_journal_lists_recent_records(self, cli, tmp_path):
        enable_crash_safety(cli.debugger, tmp_path)
        cli.debugger.record_input("en", 1)
        cli.execute("run 10")
        cli.execute("pause")
        out = cli.execute("journal")
        assert "#0 poke_input" in out
        assert "#2 pause" in out
        assert "(3 record(s), 3 durable)" in out

    def test_journal_tail_count(self, cli, tmp_path):
        enable_crash_safety(cli.debugger, tmp_path)
        cli.execute("run 5")
        cli.execute("pause")
        cli.execute("step 2")
        out = cli.execute("journal 1")
        assert "#2 step" in out
        assert "#0" not in out

    def test_journal_usage_errors(self, cli, tmp_path):
        enable_crash_safety(cli.debugger, tmp_path)
        assert "error" in cli.execute("journal 0")
        assert "error" in cli.execute("journal 1 2")
        assert cli.execute("journal") == "journal is empty"


class TestRecoverCommand:
    def test_recover_usage_error(self, cli):
        assert "usage: recover DIR" in cli.execute("recover")

    def test_recover_missing_journal(self, cli, tmp_path):
        out = cli.execute(f"recover {tmp_path}")
        assert out.startswith("error:")
        assert "no journal" in out

    def test_recover_rebuilds_crashed_session(self, tmp_path):
        crashed = make_cli()
        enable_crash_safety(crashed.debugger, tmp_path)
        crashed.debugger.record_input("en", 1)
        crashed.debugger.run(12)
        crashed.debugger.pause()
        crashed.debugger.snapshot("mid")
        crashed.debugger.fabric.enable_crash_plan(CrashPlan(at_command=4))
        with pytest.raises(SessionCrashedError):
            crashed.debugger.step(3)

        fresh = make_cli()
        out = fresh.execute(f"recover {tmp_path}")
        assert "recovered from" in out
        assert "replayed:" in out
        # The journal is reattached: the session keeps journaling.
        follow_up = fresh.execute("journal")
        assert "#4 step" in follow_up


class TestRepl:
    def test_scripted_repl(self, cli):
        inputs = iter(["break issued=2", "run", "print lsu.issued_count",
                       "quit"])
        outputs = []
        cli.repl(input_fn=lambda _: next(inputs),
                 print_fn=outputs.append)
        joined = "\n".join(outputs)
        assert "breakpoint set" in joined
        assert "= 0x2" in joined

    def test_repl_eof_exits(self, cli):
        def raise_eof(_):
            raise EOFError
        cli.repl(input_fn=raise_eof, print_fn=lambda *_: None)

    def test_run_script(self, cli):
        outputs = cli.run_script(["break issued=1", "run"])
        assert len(outputs) == 2


class TestStatsAndTrace:
    def test_stats_lists_ring_and_registry(self, cli):
        cli.execute("run 5")
        out = cli.execute("stats")
        assert "transport (this session's JTAG ring):" in out
        assert "batches =" in out
        assert "sim plan cache:" in out
        assert "hits =" in out
        assert "process metrics:" in out
        assert "debug.commands:" in out

    def test_stats_json_schema(self, cli):
        cli.execute("run 5")
        import json
        data = json.loads(cli.execute("stats --json"))
        assert set(data) == {"transport", "metrics", "sim_plan_cache"}
        assert data["transport"] == \
            cli.debugger.fabric.transport.stats.as_dict()
        assert data["metrics"]["debug.commands"]["type"] == "counter"
        plan_cache = data["sim_plan_cache"]
        assert {"hits", "misses", "evictions", "size",
                "disk"} <= set(plan_cache)
        disk = plan_cache["disk"]
        assert "enabled" in disk
        if disk["enabled"]:
            assert {"hits", "misses", "stores", "evictions",
                    "integrity_failures"} <= set(disk)

    def test_stats_rejects_unknown_flags(self, cli):
        assert cli.execute("stats --wat").startswith("error:")

    def test_trace_lifecycle(self, cli, tmp_path):
        from repro.obs import get_tracer
        tracer = get_tracer()
        tracer.clear()
        try:
            assert "tracing off" in cli.execute("trace status")
            assert cli.execute("trace start") == "tracing on"
            cli.execute("run 5")
            cli.execute("pause")
            cli.execute("state")
            tree = cli.execute("trace tree")
            assert "debug.run" in tree
            assert "jtag.batch" in tree
            assert "modeled=" in tree

            path = tmp_path / "trace.json"
            out = cli.execute(f"trace export {path}")
            assert str(path) in out
            import json
            events = json.loads(path.read_text())
            assert any(e["name"] == "debug.pause" for e in events)

            assert "tracing off" in cli.execute("trace stop")
            assert "tracing off" in cli.execute("trace status")
        finally:
            tracer.stop()
            tracer.clear()

    def test_trace_bad_usage(self, cli):
        assert cli.execute("trace bogus").startswith("error:")
        assert cli.execute("trace export").startswith("error:")


class TestVtiCacheCommands:
    def test_cache_stats_text_and_json(self, cli):
        import json as _json
        from repro.vti import PartitionSpec, VtiFlow, get_default_cache
        from repro.fpga import make_test_device
        from tests.test_vti_differential import counter_farm

        cache = get_default_cache()
        cache.clear()
        # Other tests share the process-wide cache; assert on deltas.
        before = cache.stats_dict()
        flow = VtiFlow(make_test_device())
        assert flow.cache is cache
        initial = flow.compile_initial(
            counter_farm(), {"clk": 100.0},
            [PartitionSpec("c0")], debug_slr=0)
        flow.compile_incremental(initial, "c0")  # miss
        flow.compile_incremental(initial, "c0")  # hit

        text = cli.execute("vti cache stats")
        assert f"hits {before['hits'] + 1}" in text
        assert f"misses {before['misses'] + 1}" in text

        stats = _json.loads(cli.execute("vti cache stats --json"))
        assert stats["hits"] == before["hits"] + 1
        assert stats["misses"] == before["misses"] + 1
        assert stats["entries"] == 1

        out = cli.execute("vti cache clear")
        assert "cleared" in out
        stats = _json.loads(cli.execute("vti cache stats --json"))
        assert stats["entries"] == 0

    def test_cache_counters_visible_in_process_stats(self, cli):
        import json as _json
        from repro.vti import get_default_cache
        get_default_cache()  # registers the vti.cache.* metrics
        stats = _json.loads(cli.execute("stats --json"))
        metric_names = stats["metrics"]
        assert any(name.startswith("vti.cache.")
                   for name in metric_names), sorted(metric_names)[:5]

    def test_vti_usage_errors(self, cli):
        assert cli.execute("vti").startswith("error:")
        assert cli.execute("vti cache").startswith("error:")
        assert cli.execute("vti cache stats --wat").startswith("error:")
        assert cli.execute("vti cache clear extra").startswith("error:")


class TestTraceCapture:
    def test_capture_renders_timeline(self, cli):
        out = cli.execute("trace-capture 24 issued completed")
        assert "captured 25 sample(s) over 24 cycle(s)" in out
        assert "stride 1" in out
        assert "\ncycle " in out  # ASCII timeline header row
        assert "issued" in out
        assert cli.last_trace is not None
        assert len(cli.last_trace) == 25

    def test_capture_stride_depth_and_vcd(self, cli, tmp_path):
        vcd = tmp_path / "cap.vcd"
        out = cli.execute(
            f"trace-capture 32 issued stride=4 depth=4 vcd={vcd}")
        assert "stride 4, ring depth 4" in out
        assert f"wrote VCD to {vcd}" in out
        text = vcd.read_text()
        assert "$var wire" in text and "$dumpvars" in text
        assert len(cli.last_trace) == 4

    def test_capture_usage_errors(self, cli):
        assert cli.execute("trace-capture").startswith("error: usage")
        assert cli.execute("trace-capture 10").startswith("error: usage")
        assert cli.execute(
            "trace-capture 10 issued wat=1").startswith("error: usage")
        assert cli.execute(
            "trace-capture 10 no_such_sig").startswith("error:")

    def test_capture_stops_at_watchpoint(self, cli):
        cli.execute("break issued=3")
        out = cli.execute("trace-capture 500 issued")
        assert "paused" in out
        assert len(cli.last_trace) < 501


class TestObservabilityVerbs:
    def test_doctor_renders_and_serializes(self, cli):
        out = cli.execute("doctor")
        assert out.startswith("health:")
        assert "transport.retry_rate" in out
        report = json.loads(cli.execute("doctor --json"))
        assert report["status"] in ("healthy", "warn", "degraded")
        assert any(rule["name"] == "supervise.breaker_opens"
                   for rule in report["rules"])
        assert cli.execute("doctor --wat").startswith("error: usage")

    def test_profile_tables_and_flame_export(self, cli, tmp_path):
        assert "no spans" in cli.execute("profile")
        cli.execute("trace start")
        cli.execute("run 10")
        cli.execute("pause")
        cli.execute("trace stop")
        out = cli.execute("profile")
        assert "debug.run" in out and "commands:" in out
        folded = tmp_path / "stacks.folded"
        out = cli.execute(f"profile flame modeled {folded}")
        assert f"wrote folded stacks (modeled) to {folded}" in out
        lines = folded.read_text().strip().split("\n")
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert cli.execute("profile wat").startswith("error: usage")

    def test_obs_export_and_flight(self, cli, tmp_path):
        cli.execute("run 5")
        text = cli.execute("obs export")
        assert "zoomie_debug_commands_total" in text
        prom = tmp_path / "m.prom"
        assert "wrote Prometheus" in cli.execute(f"obs export {prom}")
        assert "zoomie_" in prom.read_text()
        assert cli.execute("obs flight").startswith("flight recorder:")
        assert cli.execute("obs").startswith("error: usage")

    def test_obs_bundle_round_trips(self, cli, tmp_path):
        from repro.obs.bundle import load_bundle
        cli.execute("run 5")
        cli.execute("pause")
        path = tmp_path / "post.zip"
        out = cli.execute(f"obs bundle {path}")
        assert "wrote bundle v1" in out
        bundle = load_bundle(path)
        assert "flight.json" in bundle.sections
        assert "health.json" in bundle.sections
        assert "metrics.json" in bundle.sections
