"""Tests for the gdb-like command interpreter."""

import pytest

from repro import Zoomie, ZoomieProject
from repro.debug.cli import ZoomieCli
from repro.designs import make_cohort_soc


@pytest.fixture()
def cli():
    project = ZoomieProject(
        design=make_cohort_soc(with_bug=False), device="TEST2",
        clocks={"clk": 100.0}, watch=["issued", "completed"])
    session = Zoomie(project).launch()
    session.poke_input("en", 1)
    return ZoomieCli(session.debugger)


class TestBasicCommands:
    def test_help_lists_commands(self, cli):
        text = cli.execute("help")
        assert "break" in text and "snapshot" in text

    def test_unknown_command(self, cli):
        assert "unknown command" in cli.execute("frobnicate")

    def test_empty_line_is_noop(self, cli):
        assert cli.execute("   ") == ""

    def test_break_run_print_flow(self, cli):
        out = cli.execute("break issued=3")
        assert "issued==0x3" in out
        out = cli.execute("run")
        assert "paused" in out
        out = cli.execute("print lsu.issued_count")
        assert "= 0x3" in out

    def test_or_breakpoint_syntax(self, cli):
        out = cli.execute("break issued=200 completed=1 or")
        assert "OR" in out
        assert "paused" in cli.execute("run")

    def test_malformed_break_reports_error(self, cli):
        assert "error" in cli.execute("break issued")
        assert "error" in cli.execute("break")

    def test_step_and_continue(self, cli):
        cli.execute("run 5")
        cli.execute("pause")
        out = cli.execute("step 4")
        assert "stepped 4" in out
        assert "running" in cli.execute("continue")

    def test_set_and_print_hex(self, cli):
        cli.execute("run 5")
        cli.execute("pause")
        assert "<- 0xab" in cli.execute("set datapath.acc 0xAB")
        assert "= 0xab" in cli.execute("print datapath.acc")

    def test_state_filters_zoomie_internals(self, cli):
        cli.execute("pause")
        text = cli.execute("state")
        assert "lsu.issued_count" in text
        assert "zoomie_" not in text

    def test_errors_surface_not_raise(self, cli):
        # Not paused: state access is a user error, not a crash.
        out = cli.execute("state")
        assert out.startswith("error:")

    def test_watchlist_and_info(self, cli):
        text = cli.execute("watchlist")
        assert "issued" in text and "completed" in text
        info = cli.execute("info")
        assert "session JTAG time" in info


class TestSnapshotCommands:
    def test_snapshot_restore_diff(self, cli):
        cli.execute("run 10")
        cli.execute("pause")
        assert "snapshot 'a'" in cli.execute("snapshot a")
        cli.execute("step 6")
        diff = cli.execute("diff a")
        assert "->" in diff  # something changed
        cli.execute("restore a")
        # After restore, the design-level diff is empty.
        diff_after = cli.execute("diff a")
        assert diff_after == "(no differences)"

    def test_restore_unknown_label(self, cli):
        assert "error" in cli.execute("restore nope")


class TestRepl:
    def test_scripted_repl(self, cli):
        inputs = iter(["break issued=2", "run", "print lsu.issued_count",
                       "quit"])
        outputs = []
        cli.repl(input_fn=lambda _: next(inputs),
                 print_fn=outputs.append)
        joined = "\n".join(outputs)
        assert "breakpoint set" in joined
        assert "= 0x2" in joined

    def test_repl_eof_exits(self, cli):
        def raise_eof(_):
            raise EOFError
        cli.repl(input_fn=raise_eof, print_fn=lambda *_: None)

    def test_run_script(self, cli):
        outputs = cli.run_script(["break issued=1", "run"])
        assert len(outputs) == 2
