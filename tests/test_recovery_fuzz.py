"""Seeded crash-recovery fuzzing: kill the session at *every* journaled
command boundary (both edges) across three designs — one of them
multi-SLR — and assert the recovered session is bit-identical to an
uncrashed golden run.

The WAL invariant fuzzed for: a crash at boundary ``k`` leaves records
``0..k`` durable, and replaying them on a fresh fabric reproduces
exactly the state after command ``k`` — registers, memories, and
content hash. A failure's design and boundary are in the assertion
message; the command script is seeded so it reproduces from the test id.
"""

import random

import pytest

from repro.config import CrashPlan, FabricDevice
from repro.debug import (
    ZoomieDebugger,
    diff_snapshots,
    enable_crash_safety,
    instrument_netlist,
    recover_session,
)
from repro.designs import make_cluster, make_cohort_soc, make_pipeline
from repro.errors import SessionCrashedError
from repro.fpga import make_test_device
from repro.rtl import elaborate
from repro.vendor import VivadoFlow
from repro.vendor.place import whole_slr

SEED = 2024


def compile_design(design, watch, constraints=None):
    device = make_test_device()
    netlist = elaborate(design)
    inst = instrument_netlist(netlist, watch=watch)
    flow = VivadoFlow(device)
    clocks = {domain: 100.0 for domain in netlist.clock_domains()}
    result = flow.compile_netlist(netlist, clocks,
                                  gate_signals=inst.gate_signals,
                                  constraints=constraints)
    return device, inst, result


def fresh_session(compiled):
    device, inst, result = compiled
    fabric = FabricDevice(device)
    fabric.expect(result.database)
    fabric.jtag.run(result.bitstream)
    return fabric, ZoomieDebugger(fabric, inst)


def script_for(name, compiled, seed):
    """A seeded command script exercising every journaled verb."""
    rng = random.Random(seed)
    _, _, result = compiled
    registers = sorted(r for r in result.database.netlist.registers
                       if not r.startswith("zoomie_"))
    memories = sorted(result.database.memory_map)
    target = rng.choice(registers)
    inputs = {
        "cohort": [("en", 1)],
        "pipeline": [("in_valid", 1), ("in_data", rng.randrange(256)),
                     ("out_ready", 1)],
        "cluster": [("en", 1)],
    }[name]
    script = [("poke", pin, value) for pin, value in inputs]
    script += [
        ("run", 20 + rng.randrange(20)),
        ("pause",),
        ("snapshot", "first"),
        ("force", target, rng.randrange(1 << 4)),
        ("step", 1 + rng.randrange(4)),
    ]
    if memories:
        mem_name = memories[-1]
        mem = result.database.netlist.memories[mem_name]
        words = [rng.randrange(1 << min(mem.width, 16))
                 for _ in range(mem.depth)]
        script.append(("write_memory", mem_name, words))
    script += [
        ("snapshot", "second"),
        ("resume",),
        ("run", 10 + rng.randrange(10)),
        ("pause",),
    ]
    return script


def apply_script(fabric, debugger, script, upto=None):
    for index, step in enumerate(script):
        if upto is not None and index >= upto:
            break
        verb, *args = step
        if verb == "poke":
            debugger.record_input(*args)
        elif verb == "run":
            debugger.run(max_cycles=args[0])
        elif verb == "pause":
            debugger.pause()
        elif verb == "resume":
            debugger.resume()
        elif verb == "snapshot":
            debugger.snapshot(args[0])
        elif verb == "force":
            debugger.force(*args)
        elif verb == "step":
            debugger.step(args[0])
        elif verb == "write_memory":
            debugger.write_memory(args[0], args[1])
        else:  # pragma: no cover
            raise AssertionError(f"unknown script verb {verb}")


DESIGNS = {
    "cohort": lambda: compile_design(
        make_cohort_soc(with_bug=False), watch=["issued"]),
    "pipeline": lambda: compile_design(
        make_pipeline(depth=4, width=16), watch=["v3"]),
    # core1 pinned to SLR 1: journal replay must cross the JTAG ring
    # to a secondary controller, and core1.rf content frames live there
    "cluster": lambda: compile_design(
        make_cluster(cores=2, imem_depth=64), watch=["retired_count"],
        constraints={"core1": whole_slr(make_test_device(), 1)}),
}


@pytest.mark.fuzz
@pytest.mark.parametrize("name", sorted(DESIGNS),
                         ids=[f"{n}-seed{SEED}" for n in sorted(DESIGNS)])
def test_recovery_is_bit_identical_at_every_boundary(name, tmp_path):
    compiled = DESIGNS[name]()
    script = script_for(name, compiled, SEED)
    for boundary in range(len(script)):
        # alternate which side of the boundary the process dies on;
        # the durable journal prefix — and thus recovery — is the same
        before = boundary % 2 == 0
        workdir = tmp_path / f"crash{boundary}"
        fabric, debugger = fresh_session(compiled)
        enable_crash_safety(debugger, workdir)
        fabric.enable_crash_plan(
            CrashPlan(at_command=boundary, before_apply=before))
        context = (f"design={name} seed={SEED} boundary={boundary} "
                   f"before_apply={before}")
        with pytest.raises(SessionCrashedError):
            apply_script(fabric, debugger, script)

        _, recovered = fresh_session(compiled)
        recover_session(recovered, workdir)

        gold_fabric, golden = fresh_session(compiled)
        apply_script(gold_fabric, golden, script, upto=boundary + 1)

        g = golden.engine.snapshot()
        r = recovered.engine.snapshot()
        assert diff_snapshots(g, r) == {}, (
            f"{context}: registers diverged "
            f"{diff_snapshots(g, r)}")
        assert g.memories == r.memories, (
            f"{context}: memory contents diverged")
        assert g.content_key() == r.content_key(), (
            f"{context}: content keys diverged")


@pytest.mark.fuzz
def test_multi_slr_memory_survives_crash_during_write(tmp_path):
    """Crash on a transport batch *inside* the secondary-SLR memory
    write — the nastiest point — then prove recovery replays it."""
    compiled = DESIGNS["cluster"]()
    fabric, debugger = fresh_session(compiled)
    enable_crash_safety(debugger, tmp_path)
    debugger.record_input("en", 1)
    debugger.run(20)
    debugger.pause()
    mem = compiled[2].database.netlist.memories["core1.rf"]
    words = [(i * 3 + 1) % (1 << mem.width) for i in range(mem.depth)]
    fabric.enable_crash_plan(CrashPlan(at_batch=0))
    with pytest.raises(SessionCrashedError):
        debugger.write_memory("core1.rf", words)

    _, recovered = fresh_session(compiled)
    recover_session(recovered, tmp_path)

    gold_fabric, golden = fresh_session(compiled)
    golden.record_input("en", 1)
    golden.run(20)
    golden.pause()
    golden.write_memory("core1.rf", words)

    g = golden.engine.snapshot()
    r = recovered.engine.snapshot()
    assert g.memories["core1.rf"] == r.memories["core1.rf"] == words
    assert g.content_key() == r.content_key()


# ---------------------------------------------------------------------------
# chaos kill points: faults *inside* the durability machinery itself
# ---------------------------------------------------------------------------
#
# The boundary fuzz above kills the process between commands. These
# tests kill it *inside* SnapshotStore.put and PlanDiskStore.merge —
# every fault kind the chaos registry documents for those sites — and
# assert recovery still converges to the golden run bit-for-bit.

from repro.chaos import (  # noqa: E402
    FaultSchedule,
    FaultSpec,
    SuperviseConfig,
    get_supervisor,
    install_chaos,
)
from repro.config import FaultPlan  # noqa: E402
from repro.errors import DiskFaultError  # noqa: E402
from repro.rtl.plan_store import PlanDiskStore  # noqa: E402


def _armed(*specs, seed=0):
    return FaultSchedule(seed=seed, specs=specs).registry()


@pytest.mark.fuzz
@pytest.mark.parametrize("kind", ["torn_write", "bit_rot", "enospc"])
def test_recovery_survives_faulted_snapshot_put(kind, tmp_path):
    """Fault SnapshotStore.put during the script's first checkpoint:
    torn and ENOSPC puts abort the command, bit-rot lands silently —
    recovery must skip the damaged base and still converge."""
    compiled = DESIGNS["pipeline"]()
    script = script_for("pipeline", compiled, SEED)
    snap_index = next(i for i, s in enumerate(script)
                      if s[0] == "snapshot")

    fabric, debugger = fresh_session(compiled)
    enable_crash_safety(debugger, tmp_path)
    apply_script(fabric, debugger, script, upto=snap_index)
    registry = _armed(FaultSpec(site="snapstore.put", kind=kind, at=0),
                      seed=SEED)
    with install_chaos(registry):
        if kind == "bit_rot":
            debugger.snapshot("first")  # lands, silently damaged
        else:
            with pytest.raises(DiskFaultError):
                debugger.snapshot("first")
    assert registry.faults_fired == 1

    # The process "dies" here. The journal already holds the snapshot
    # record (write-ahead), so replay re-executes it.
    _, recovered = fresh_session(compiled)
    report = recover_session(recovered, tmp_path)
    if kind != "enospc":
        # A damaged checkpoint file exists on disk; recovery must have
        # refused to trust it rather than restoring garbage.
        assert report.base_index is None or report.skipped_bases >= 1

    gold_fabric, golden = fresh_session(compiled)
    apply_script(gold_fabric, golden, script, upto=snap_index + 1)

    g = golden.engine.snapshot()
    r = recovered.engine.snapshot()
    assert diff_snapshots(g, r) == {}, f"kind={kind}"
    assert g.content_key() == r.content_key(), f"kind={kind}"


@pytest.mark.fuzz
@pytest.mark.parametrize("kind", ["torn_write", "enospc"])
def test_plan_store_merge_faults_degrade_not_corrupt(kind, tmp_path):
    """A faulted merge is a skipped cache write, never a poisoned
    store: the degradation is recorded, later loads stay coherent, and
    a clean re-merge repairs the entry."""
    sup = get_supervisor()
    sup.reset()
    store = PlanDiskStore(tmp_path, limit=8)
    store.merge("fp-keep", {"settle": "def keep(): pass"})

    registry = _armed(FaultSpec(site="planstore.merge", kind=kind,
                                at=0), seed=SEED)
    with install_chaos(registry):
        store.merge("fp-hurt", {"settle": "def hurt(): pass"})
    assert registry.faults_fired == 1
    assert any(d.fallback == "cache.write_skipped"
               for d in sup.degradations)

    # Unrelated entries are untouched; the faulted one is at worst a
    # miss (torn file or absent file), never a crash or a wrong plan.
    assert store.load("fp-keep") is not None
    assert store.load("fp-hurt") is None

    store.merge("fp-hurt", {"settle": "def hurt(): pass"})
    assert set(store.load("fp-hurt")) == {"settle"}


@pytest.mark.fuzz
def test_lockstep_faulted_run_matches_clean_twin(tmp_path):
    """Run the full script on two sessions in lockstep — one supervised
    under recoverable faults, one clean — and compare design state
    after *every* command, not just at the end. Modeled-time adversity
    (retries, repairs, hangs) must never leak into design cycles."""
    compiled = DESIGNS["pipeline"]()
    script = script_for("pipeline", compiled, SEED)

    clean_fabric, clean = fresh_session(compiled)
    faulted_fabric, faulted = fresh_session(compiled)
    enable_crash_safety(faulted, tmp_path)
    faulted_fabric.enable_fault_injection(FaultPlan(seed=SEED))

    sup = get_supervisor()
    sup.enable(SuperviseConfig())
    sup.reset()
    registry = _armed(
        FaultSpec(site="journal.sync", kind="torn_write", rate=0.4,
                  count=4),
        FaultSpec(site="snapstore.put", kind="torn_write", rate=0.5,
                  count=2),
        FaultSpec(site="fabric.pause_write", kind="pause_stuck",
                  rate=0.5, count=2),
        FaultSpec(site="transport.batch", kind="device_hang", rate=0.05,
                  count=2),
        seed=SEED)
    try:
        with install_chaos(registry):
            for index in range(len(script)):
                apply_script(clean_fabric, clean, script[index:index + 1])
                apply_script(faulted_fabric, faulted,
                             script[index:index + 1])
                g = clean.engine.snapshot()
                f = faulted.engine.snapshot()
                assert g.content_key() == f.content_key(), (
                    f"diverged after step {index} "
                    f"({script[index][0]}): {diff_snapshots(g, f)}")
        assert registry.faults_fired > 0, \
            "schedule never fired; test is vacuous"
    finally:
        sup.disable()
        sup.reset()
