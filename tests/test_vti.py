"""Tests for VTI: partitioning, estimation, floorplanning, the 18x
incremental flow (Figure 7), and partial reconfiguration on the fabric."""

import pytest

from repro.config import FabricDevice
from repro.designs import make_counter, make_manycore_soc
from repro.errors import PartitionError, PlacementError
from repro.fpga import make_test_device, make_u200
from repro.rtl import ModuleBuilder, mux
from repro.vendor import VivadoFlow, synthesize
from repro.vendor.resources import ResourceVector
from repro.vti import (
    DEFAULT_OVER_PROVISION,
    CompileCache,
    PartitionSpec,
    VtiFlow,
    estimate_requirements,
    floorplan_partitions,
)
from repro.vti.link import check_boundary_compatible, replace_instance_module
from repro.vti.partition import split_design


class TestPartitionSpec:
    def test_empty_path_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSpec("")

    def test_silly_over_provision_rejected(self):
        with pytest.raises(PartitionError):
            PartitionSpec("a", over_provision=5.0)

    def test_split_resolves_paths(self):
        soc = make_manycore_soc(24, 12, imem_depth=64)
        split = split_design(soc, [PartitionSpec("tile0.core3")])
        assert split.partitions[0].module.name == "serv_core"
        assert split.partitions[0].reset_inserted

    def test_unknown_path_rejected(self):
        soc = make_manycore_soc(24, 12, imem_depth=64)
        with pytest.raises(PartitionError):
            split_design(soc, [PartitionSpec("tile9.core0")])

    def test_nested_partitions_rejected(self):
        soc = make_manycore_soc(24, 12, imem_depth=64)
        with pytest.raises(PartitionError):
            split_design(soc, [PartitionSpec("tile0"),
                               PartitionSpec("tile0.core1")])

    def test_duplicate_partitions_rejected(self):
        soc = make_manycore_soc(24, 12, imem_depth=64)
        with pytest.raises(PartitionError):
            split_design(soc, [PartitionSpec("tile0"),
                               PartitionSpec("tile0")])


class TestEstimation:
    def test_er_formula(self):
        """ER = resource * (1 + c), per resource kind."""
        req = estimate_requirements(
            "p", ResourceVector(lut=100, ff=200, lutram=10, bram=2),
            over_provision=0.30)
        assert req.estimated.lut == 130
        assert req.estimated.ff == 260
        assert req.estimated.lutram == 13
        assert req.estimated.bram == 3

    def test_default_coefficient_is_thirty_percent(self):
        assert DEFAULT_OVER_PROVISION == 0.30

    def test_satisfaction_requires_every_kind(self):
        req = estimate_requirements(
            "p", ResourceVector(lut=100, ff=10, lutram=0, bram=4))
        assert req.satisfied_by(
            {"LUT": 200, "FF": 50, "LUTRAM": 0, "BRAM": 6})
        assert not req.satisfied_by(
            {"LUT": 200, "FF": 50, "LUTRAM": 0, "BRAM": 4})


class TestFloorplan:
    def test_all_partitions_in_one_slr(self):
        device = make_u200()
        reqs = [
            estimate_requirements(
                f"p{i}", ResourceVector(lut=500, ff=800, lutram=16))
            for i in range(3)
        ]
        plan = floorplan_partitions(device, reqs)
        slrs = {region.slr for region in plan.regions.values()}
        assert slrs == {device.primary_slr}

    def test_regions_are_disjoint_column_spans(self):
        device = make_u200()
        reqs = [
            estimate_requirements(
                f"p{i}", ResourceVector(lut=2000, ff=3000))
            for i in range(2)
        ]
        plan = floorplan_partitions(device, reqs)
        r0, r1 = plan.regions["p0"], plan.regions["p1"]
        assert r0.col_hi < r1.col_lo

    def test_oversized_partition_rejected(self):
        device = make_test_device()
        req = estimate_requirements(
            "huge", ResourceVector(lut=10 ** 6, ff=10 ** 6))
        with pytest.raises(PlacementError):
            floorplan_partitions(device, [req])

    def test_region_mask_covers_clock_regions(self):
        device = make_u200()
        req = estimate_requirements("p", ResourceVector(lut=300, ff=500))
        plan = floorplan_partitions(device, [req])
        assert plan.region_mask("p") == 0b1  # single clock region


class TestBoundaryLinking:
    def make_leaf(self, extra_logic=False, extra_port=False):
        b = ModuleBuilder("leaf")
        en = b.input("en", 1)
        count = b.reg("count", 8)
        step = 2 if extra_logic else 1
        b.next(count, mux(en, count + step, count))
        b.output_expr("out", count)
        if extra_port:
            b.output_expr("extra", count[0])
        return b.build()

    def test_same_boundary_accepted(self):
        nets = check_boundary_compatible(
            self.make_leaf(), self.make_leaf(extra_logic=True))
        assert nets == 9  # en + out

    def test_changed_boundary_rejected(self):
        with pytest.raises(PartitionError):
            check_boundary_compatible(
                self.make_leaf(), self.make_leaf(extra_port=True))

    def test_replace_instance_module(self):
        leaf = self.make_leaf()
        b = ModuleBuilder("top")
        en = b.input("en", 1)
        refs = b.instantiate(leaf, "u0", inputs={"en": en})
        b.output_expr("o", refs["out"])
        top = b.build()
        new_leaf = self.make_leaf(extra_logic=True)
        new_top = replace_instance_module(top, "u0", new_leaf)
        assert new_top.instances["u0"].module is new_leaf
        # The original is untouched.
        assert top.instances["u0"].module is leaf


def make_oversized_clone(core):
    """Same boundary as ``core``, absurdly large internals — guaranteed
    to overflow any reserved region."""
    big = ModuleBuilder(core.name)
    for port in core.ports.values():
        if port.direction == "input":
            big.input(port.name, port.width)
    regs = [big.reg(f"r{i}", 64) for i in range(4000)]
    for reg in regs:
        big.next(reg, reg + 1)
    for port in core.ports.values():
        if port.direction == "output":
            big.output_expr(port.name, regs[0][port.width - 1:0]
                            if port.width <= 64 else None)
    return big.build()


class TestFigure7:
    """The headline result: ~18x incremental speedup over ~4.5 h."""

    @pytest.fixture(scope="class")
    def flows(self):
        soc = make_manycore_soc(5400)
        vti = VtiFlow(make_u200())
        initial = vti.compile_initial(
            soc, {"clk": 50.0}, [PartitionSpec("tile0.core0")])
        return soc, vti, initial

    def test_initial_overhead_is_negligible(self, flows):
        soc, _vti, initial = flows
        vendor = VivadoFlow(make_u200()).compile(soc, {"clk": 50.0})
        ratio = initial.total_seconds / vendor.total_seconds
        assert 0.9 <= ratio <= 1.15

    def test_incremental_speedup_around_18x(self, flows):
        _soc, vti, initial = flows
        for run in range(5):
            incr = vti.compile_incremental(initial, "tile0.core0")
            speedup = initial.total_seconds / incr.total_seconds
            assert 14 <= speedup <= 24, f"run {run}: {speedup:.1f}x"

    def test_time_reduction_about_95_percent(self, flows):
        _soc, vti, initial = flows
        incr = vti.compile_incremental(initial, "tile0.core0")
        reduction = 1 - incr.total_seconds / initial.total_seconds
        assert reduction >= 0.93

    def test_link_dominates_incremental_time(self, flows):
        """The partition itself is tiny; linking the million-cell static
        checkpoint is the floor — why speedup is 18x, not 5400x."""
        _soc, vti, initial = flows
        incr = vti.compile_incremental(initial, "tile0.core0")
        assert incr.seconds["link"] == max(
            v for k, v in incr.seconds.items() if k != "total")

    def test_partition_growth_beyond_region_rejected(self, flows):
        _soc, vti, initial = flows
        # Same boundary as serv_core but absurdly large internals.
        core = initial.split.partition("tile0.core0").module
        module = make_oversized_clone(core)
        with pytest.raises(PartitionError):
            vti.compile_incremental(initial, "tile0.core0", module)


class TestTable1:
    """Compilation-process comparison (paper Table 1), as properties of
    the implemented flows."""

    def test_vivado_optimizes_globally(self):
        soc = make_manycore_soc(24, 12, imem_depth=64)
        assert synthesize(soc, opt="global").opt_mode == "global"

    def test_vti_partitions_optimize_locally(self):
        soc = make_manycore_soc(12, 12, imem_depth=64)
        vti = VtiFlow(make_test_device())
        initial = vti.compile_initial(
            soc, {"clk": 100.0}, [PartitionSpec("tile0.core0")])
        incr = vti.compile_incremental(initial, "tile0.core0")
        # Linking happened after routing: the report exists and counts
        # the static side.
        assert incr.link.static_cells > 0
        assert incr.link.boundary_nets > 0

    def test_vti_area_cost(self):
        """Partition-local optimization forgoes cross-module shrink."""
        soc = make_manycore_soc(5400)
        local = synthesize(soc, opt="local").totals.lut
        monolithic = synthesize(soc, opt="global").totals.lut
        assert local > monolithic


class TestPartialReconfiguration:
    """Small-design end-to-end: recompile one partition, load the partial
    bitstream, and verify the static region's state survives."""

    def build_two_counter_top(self, step=1):
        leaf_b = ModuleBuilder("leaf")
        en = leaf_b.input("en", 1)
        count = leaf_b.reg("count", 8)
        leaf_b.next(count, mux(en, count + step, count))
        leaf_b.output_expr("out", count)
        leaf = leaf_b.build()

        b = ModuleBuilder("twoc")
        en = b.input("en", 1)
        iterated = b.instantiate(leaf, "iterated", inputs={"en": en})
        static = b.instantiate(make_counter(8, name="static_counter"),
                               "static", inputs={"en": en})
        b.output_expr("it_out", iterated["out"])
        b.output_expr("st_out", static["out"])
        return b.build(), leaf

    def test_partial_reload_preserves_static_state(self):
        device = make_test_device()
        top, leaf = self.build_two_counter_top()
        vti = VtiFlow(device)
        initial = vti.compile_initial(
            top, {"clk": 100.0}, [PartitionSpec("iterated")],
            debug_slr=0)
        assert initial.database is not None

        fabric = FabricDevice(device)
        fabric.expect(initial.database)
        fabric.jtag.run(initial.base.bitstream)
        fabric.sim.poke("en", 1)
        fabric.run(10)
        assert fabric.sim.peek("st_out") == 10
        assert fabric.sim.peek("it_out") == 10

        # Edit the partition: the counter now steps by 2.
        new_leaf_b = ModuleBuilder("leaf")
        en = new_leaf_b.input("en", 1)
        count = new_leaf_b.reg("count", 8)
        new_leaf_b.next(count, mux(en, count + 2, count))
        new_leaf_b.output_expr("out", count)
        incr = vti.compile_incremental(
            initial, "iterated", new_leaf_b.build())
        assert incr.partial_bitstream is not None

        fabric.expect(incr.database)
        fabric.jtag.run(incr.partial_bitstream)
        fabric.sim.poke("en", 1)
        fabric.run(5)
        # Static region kept its count across the reload...
        assert fabric.sim.peek("st_out") == 15
        # ...while the reconfigured partition restarted and steps by 2.
        assert fabric.sim.peek("it_out") == 10

    def test_partial_bitstream_much_smaller_than_full(self):
        device = make_test_device()
        top, _leaf = self.build_two_counter_top()
        vti = VtiFlow(device)
        initial = vti.compile_initial(
            top, {"clk": 100.0}, [PartitionSpec("iterated")],
            debug_slr=0)
        incr = vti.compile_incremental(initial, "iterated")
        assert incr.partial_bitstream is not None
        assert initial.base.bitstream is not None


class TestVersioning:
    """Chained incrementals must version monotonically (regression: every
    recompile used to get ``initial.version + 1``, colliding on version
    and database name)."""

    def build_top(self):
        leaf_b = ModuleBuilder("leaf")
        en = leaf_b.input("en", 1)
        count = leaf_b.reg("count", 8)
        leaf_b.next(count, mux(en, count + 1, count))
        leaf_b.output_expr("out", count)
        b = ModuleBuilder("vtop")
        en = b.input("en", 1)
        refs = b.instantiate(leaf_b.build(), "iterated",
                             inputs={"en": en})
        b.output_expr("o", refs["out"])
        return b.build()

    def test_chained_incrementals_version_monotonically(self):
        vti = VtiFlow(make_test_device(), cache=None)
        initial = vti.compile_initial(
            self.build_top(), {"clk": 100.0},
            [PartitionSpec("iterated")], debug_slr=0)
        assert initial.database is not None
        versions, names = [], []
        for _ in range(3):
            incr = vti.compile_incremental(initial, "iterated")
            versions.append(incr.version)
            names.append(incr.database.name)
        assert versions == [1, 2, 3]
        assert names == [f"{initial.database.name}.v{v}"
                         for v in versions]
        assert len(set(names)) == 3

    def test_distinct_versions_get_distinct_partial_bitstreams(self):
        """Frame content derives from the database name, so colliding
        versions would silently reprogram identical frames."""
        vti = VtiFlow(make_test_device(), cache=None)
        initial = vti.compile_initial(
            self.build_top(), {"clk": 100.0},
            [PartitionSpec("iterated")], debug_slr=0)
        first = vti.compile_incremental(initial, "iterated")
        second = vti.compile_incremental(initial, "iterated")
        assert first.partial_bitstream != second.partial_bitstream

    def test_cached_recompile_still_advances_version(self):
        vti = VtiFlow(make_test_device(), cache=CompileCache())
        initial = vti.compile_initial(
            self.build_top(), {"clk": 100.0},
            [PartitionSpec("iterated")], debug_slr=0)
        first = vti.compile_incremental(initial, "iterated")
        second = vti.compile_incremental(initial, "iterated")
        assert not first.cache_hit and second.cache_hit
        assert (first.version, second.version) == (1, 2)
        assert second.database.name.endswith(".v2")


class TestParallelRecompiles:
    """Section 3.5: partition compiles run in parallel, one shared link."""

    def test_many_partitions_share_the_link(self):
        from repro.fpga import make_u200
        soc = make_manycore_soc(5400)
        vti = VtiFlow(make_u200())
        initial = vti.compile_initial(
            soc, {"clk": 50.0},
            [PartitionSpec(f"tile{i}.core0") for i in range(4)])
        results, wall = vti.compile_incremental_many(
            initial, {f"tile{i}.core0": None for i in range(4)})
        assert len(results) == 4
        serial = sum(r.total_seconds for r in results)
        # Parallel wall time is far below serial, and only slightly
        # above a single partition's recompile (the shared link).
        assert wall < serial / 2
        single = results[0].total_seconds
        assert wall < single * 1.6

    def test_empty_change_set_rejected(self):
        from repro.fpga import make_u200
        soc = make_manycore_soc(5400)
        vti = VtiFlow(make_u200())
        initial = vti.compile_initial(
            soc, {"clk": 50.0}, [PartitionSpec("tile0.core0")])
        with pytest.raises(PartitionError):
            vti.compile_incremental_many(initial, {})


class TestSchedulerCoverage:
    """compile_incremental_many: exact wall-clock math, deterministic
    ordering, and the PartitionError paths."""

    @pytest.fixture(scope="class")
    def many_initial(self):
        soc = make_manycore_soc(5400)
        vti = VtiFlow(make_u200(), cache=None)
        initial = vti.compile_initial(
            soc, {"clk": 50.0},
            [PartitionSpec(f"tile{i}.core0") for i in range(3)])
        return vti, initial

    def test_wall_is_max_partition_plus_single_link(self, many_initial):
        vti, initial = many_initial
        results, wall = vti.compile_incremental_many(
            initial, {f"tile{i}.core0": None for i in range(3)})
        expected = max(
            r.total_seconds - r.seconds["link"] for r in results
        ) + max(r.seconds["link"] for r in results)
        assert wall == expected  # exact, not approximate

    def test_results_sorted_by_partition_path(self, many_initial):
        vti, initial = many_initial
        results, _wall = vti.compile_incremental_many(
            initial, {"tile2.core0": None, "tile0.core0": None})
        assert [r.partition_path for r in results] \
            == ["tile0.core0", "tile2.core0"]

    def test_region_overflow_raises_in_parallel_and_serial(
            self, many_initial):
        vti, initial = many_initial
        core = initial.split.partition("tile0.core0").module
        big = make_oversized_clone(core)
        for parallel in (True, False):
            with pytest.raises(PartitionError):
                vti.compile_incremental_many(
                    initial, {"tile0.core0": big, "tile1.core0": None},
                    parallel=parallel)

    def test_serial_mode_shares_the_link_too(self, many_initial):
        vti, initial = many_initial
        results, wall = vti.compile_incremental_many(
            initial, {f"tile{i}.core0": None for i in range(2)},
            parallel=False)
        assert wall < sum(r.total_seconds for r in results)
        assert wall == max(
            r.total_seconds - r.seconds["link"] for r in results
        ) + max(r.seconds["link"] for r in results)
