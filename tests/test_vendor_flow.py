"""Tests for the vendor toolchain model: synthesis, placement, routing,
timing, ILA insertion, and the calibrated compile-time anchors."""

import pytest

from repro.designs import (
    make_beehive_stack,
    make_cluster,
    make_counter,
    make_manycore_soc,
    make_serv_core,
)
from repro.errors import FlowError, PlacementError
from repro.fpga import make_test_device, make_u200
from repro.rtl import ModuleBuilder, elaborate
from repro.vendor import (
    IlaConfig,
    ResourceVector,
    VivadoFlow,
    insert_ila,
    synthesize,
)
from repro.vendor.place import Region, place, whole_slr
from repro.vendor.reports import format_utilization_table
from repro.vendor.synth import lut_cost
from repro.rtl.expr import BinaryOp, Const, Mux, Ref


class TestLutCost:
    def test_adder_costs_width(self):
        expr = BinaryOp("+", Ref("a", 8), Ref("b", 8))
        assert lut_cost(expr) == 8

    def test_constant_slices_free(self):
        expr = Ref("a", 16)[7:0]
        assert lut_cost(expr) == 0

    def test_mux_costs_width(self):
        expr = Mux(Ref("s", 1), Ref("a", 8), Ref("b", 8))
        assert lut_cost(expr) == 8

    def test_equality_cheaper_than_width(self):
        expr = BinaryOp("==", Ref("a", 24), Ref("b", 24))
        assert 0 < lut_cost(expr) < 24

    def test_nested_ops_accumulate(self):
        inner = BinaryOp("+", Ref("a", 8), Ref("b", 8))
        outer = BinaryOp("^", inner, Ref("c", 8))
        assert lut_cost(outer) == 16


class TestSynthesize:
    def test_serv_core_matches_published_size(self):
        """SERV is famously ~200 LUTs; the model must land there."""
        result = synthesize(make_serv_core(), opt="none")
        local = result.per_module["serv_core"].local
        assert 180 <= local.lut <= 230
        assert 200 <= local.ff <= 280
        assert local.lutram == 10

    def test_shared_definitions_synthesize_once(self):
        result = synthesize(make_manycore_soc(5400))
        assert result.instance_counts["serv_core"] == 5400
        # One entry per unique definition, not per instance.
        assert set(result.per_module) == {
            "serv_core", "cluster_12c", "manycore_5400"}

    def test_global_opt_shrinks_luts(self):
        soc = make_cluster()
        opt = synthesize(soc, opt="global")
        plain = synthesize(soc, opt="none")
        assert opt.totals.lut < plain.totals.lut
        assert opt.totals.ff == plain.totals.ff

    def test_local_opt_between_global_and_none(self):
        soc = make_cluster()
        g = synthesize(soc, opt="global").totals.lut
        l = synthesize(soc, opt="local").totals.lut
        n = synthesize(soc, opt="none").totals.lut
        assert g < l < n

    def test_bram_inference(self):
        result = synthesize(make_cluster())
        assert result.per_module["cluster_12c"].local.bram == 5

    def test_lutram_inference(self):
        result = synthesize(make_serv_core())
        assert result.per_module["serv_core"].local.lutram == 10


class TestTable2:
    """Paper Table 2: resource usage of the 5400-core SoC on a U200."""

    @pytest.fixture(scope="class")
    def compiled(self):
        return VivadoFlow(make_u200()).compile(
            make_manycore_soc(5400), clocks={"clk": 50.0})

    def test_utilization_matches_paper_shape(self, compiled):
        util = compiled.utilization
        # Paper: LUT 95.32, LUTRAM 8.96, FF 53.42, BRAM 98.19 (percent).
        assert 90 <= util["LUT"] <= 97
        assert 7 <= util["LUTRAM"] <= 11
        assert 50 <= util["FF"] <= 58
        assert 95 <= util["BRAM"] <= 99

    def test_design_nearly_fills_device(self, compiled):
        assert compiled.placement.peak_utilization() > 0.90

    def test_report_renders(self, compiled):
        text = format_utilization_table(compiled)
        assert "LUT" in text and "%" in text

    def test_timing_closes_at_50_not_100(self, compiled):
        assert compiled.timing.met
        flow = VivadoFlow(make_u200())
        at100 = flow.compile(make_manycore_soc(5400), clocks={"clk": 100.0})
        assert not at100.timing.met

    def test_initial_compile_is_hours(self, compiled):
        # The paper's initial compile is ~4.5 h; calibration must hold.
        assert 3.5 * 3600 <= compiled.total_seconds <= 5.5 * 3600


class TestVendorIncremental:
    def test_roughly_ten_percent_gain(self):
        flow = VivadoFlow(make_u200())
        soc = make_manycore_soc(5400)
        full = flow.compile(soc, clocks={"clk": 50.0})
        incr = flow.compile_incremental(
            soc, {"clk": 50.0}, previous=full)
        speedup = full.total_seconds / incr.total_seconds
        assert 1.03 <= speedup <= 1.25
        assert incr.flow == "vivado-incremental"


class TestPlacement:
    def test_overflow_rejected(self):
        device = make_test_device()
        synth = synthesize(make_manycore_soc(60, 12, imem_depth=64))
        with pytest.raises(PlacementError):
            place(synth, device)

    def test_small_design_stays_in_one_slr(self):
        result = VivadoFlow(make_u200()).compile(
            make_beehive_stack(), clocks={"clk": 250.0})
        used = {slr for slr, occ in result.placement.occupancy.items()
                if occ.total_cells()}
        assert len(used) == 1
        assert result.placement.slr_crossings == 0

    def test_constraint_region_capacity_enforced(self):
        device = make_u200()
        synth = synthesize(make_cluster())
        tiny = Region(slr=0, col_lo=0, col_hi=0, region_lo=0, region_hi=0)
        with pytest.raises(PlacementError):
            place(synth, device, constraints={"cluster_12c": tiny})

    def test_flat_placement_emits_ll_entries(self):
        device = make_test_device()
        counter = make_counter(8)
        synth = synthesize(counter)
        placement = place(synth, device, flat=elaborate(counter))
        assert placement.ll is not None
        regs = placement.ll.by_register()
        assert "count" in regs
        assert len(regs["count"]) == 8
        bits = [entry.bit for entry in regs["count"]]
        assert bits == list(range(8))

    def test_ll_respects_region_constraint(self):
        device = make_test_device(2)
        counter = make_counter(8)
        synth = synthesize(counter)
        constraint = whole_slr(device, 1)
        placement = place(synth, device, flat=elaborate(counter),
                          constraints={"": constraint})
        assert placement.ll.slrs_used() == {1}


class TestIla:
    def test_resources_scale_with_probes(self):
        small = insert_ila(
            [IlaConfig(probes=(("a", 8),), depth=1024)], 10 ** 6)
        large = insert_ila(
            [IlaConfig(probes=(("a", 8), ("b", 64)), depth=1024)], 10 ** 6)
        assert large.resources.lut > small.resources.lut
        assert large.resources.bram >= small.resources.bram

    def test_probe_budget_enforced(self):
        with pytest.raises(FlowError):
            IlaConfig(probes=(("big", 5000),))

    def test_ila_adds_overhead_to_compile(self):
        flow = VivadoFlow(make_u200())
        bee = make_beehive_stack()
        plain = flow.compile(bee, clocks={"clk": 250.0})
        probed = flow.compile(
            bee, clocks={"clk": 250.0},
            ila_configs=[IlaConfig(probes=(("dropq.count", 3),
                                           ("app.frames_delivered", 16)))])
        assert probed.used_resources()["BRAM"] > \
            plain.used_resources()["BRAM"]
        assert probed.routed.congestion >= plain.routed.congestion


class TestSmallDesignDatabase:
    def test_counter_gets_database_and_bitstream(self):
        flow = VivadoFlow(make_test_device())
        result = flow.compile(make_counter(8), clocks={"clk": 100.0})
        assert result.database is not None
        assert result.bitstream
        assert result.database.clocks["clk"] == 10_000  # 100 MHz in ps

    def test_huge_design_skips_database(self):
        flow = VivadoFlow(make_u200())
        result = flow.compile(make_manycore_soc(5400),
                              clocks={"clk": 50.0})
        assert result.database is None
        assert result.bitstream is None
