"""Streaming (in-kernel) capture: equivalence, bounds, and triggers.

The contract under test: observing a design through ``StreamingTrace``
or ``BatchTrace`` records exactly what the hook-based ``Trace`` would
have recorded — while leaving the simulated state bit-identical to an
untraced run, on every engine and on the general (hooked/gated/skewed)
event path as well as the fused kernel path.
"""

import pytest

from repro.designs import make_cohort_soc, make_counter
from repro.errors import SimulationError
from repro.obs import get_registry
from repro.rtl import (
    ENGINE_CLOSURES,
    ENGINE_INTERPRETED,
    BatchSimulator,
    BatchTrace,
    Simulator,
    StreamingTrace,
    Trace,
    elaborate,
)

PROBES = ["issued", "completed", "acc", "results"]


def cohort():
    return elaborate(make_cohort_soc(with_bug=False))


def counter_sim(**kwargs):
    sim = Simulator(elaborate(make_counter(8)), **kwargs)
    sim.poke("en", 1)
    return sim


class TestStreamingEquivalence:
    def test_rows_match_hook_trace_on_cohort_soc(self):
        net = cohort()
        hooked = Simulator(net)
        hooked.poke("en", 1)
        baseline = Trace(hooked, PROBES).attach()
        hooked.step(60)
        baseline.detach()

        streamed_sim = Simulator(net)
        streamed_sim.poke("en", 1)
        streamed = StreamingTrace(streamed_sim, PROBES, depth=None)
        streamed.run(60)
        streamed.stop()

        assert list(streamed.iter_rows()) == list(baseline.iter_rows())

    def test_traced_state_equals_untraced_state(self):
        """Differential check: capture must not disturb the design."""
        net = cohort()
        plain = Simulator(net)
        plain.poke("en", 1)
        traced = Simulator(net)
        traced.poke("en", 1)
        trace = StreamingTrace(traced, PROBES, depth=64)
        plain.step(40)
        trace.run(40)
        # Chunked continuation resumes mid-stream without perturbation.
        plain.step(35)
        trace.run(35)
        trace.stop()
        assert traced.snapshot() == plain.snapshot()

    @pytest.mark.parametrize("engine", [ENGINE_INTERPRETED,
                                        ENGINE_CLOSURES])
    def test_non_fused_engines_capture_identically(self, engine):
        fused = counter_sim()
        reference = StreamingTrace(fused, ["count", "out"], depth=None)
        reference.run(12)
        reference.stop()

        other = counter_sim(engine=engine)
        trace = StreamingTrace(other, ["count", "out"], depth=None)
        trace.run(12)
        trace.stop()
        assert list(trace.iter_rows()) == list(reference.iter_rows())

    def test_capture_with_hooks_present_matches_fused(self):
        """An unrelated hook forces the per-event path; samples must not
        change."""
        fused = counter_sim()
        reference = StreamingTrace(fused, ["count"], depth=None)
        reference.run(10)
        reference.stop()

        hooked = counter_sim()
        seen = []
        hooked.edge_hooks.append(lambda sim, ticked: seen.append(1))
        trace = StreamingTrace(hooked, ["count"], depth=None)
        trace.run(10)
        trace.stop()
        assert list(trace.iter_rows()) == list(reference.iter_rows())
        assert len(seen) == 10  # the other hook still observed every edge

    def test_gated_domain_records_nothing(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=None)
        trace.run(3)
        sim.set_clock_gate("clk", True)
        trace.run(5)
        sim.set_clock_gate("clk", False)
        trace.run(2)
        trace.stop()
        # 3 + 2 committed cycles; the gated stretch contributes nothing.
        assert trace.cycles_recorded() == [0, 1, 2, 3, 4, 5]

    def test_per_domain_step_capture(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=None)
        trace.run(4, domain="clk")
        trace.stop()
        assert trace.series("count") == [0, 1, 2, 3, 4]

    def test_wrong_domain_step_rejected(self):
        sim = Simulator(elaborate(make_counter(8)),
                        clocks={"clk": 1000, "aux": 1000})
        trace = StreamingTrace(sim, ["count"], domain="clk")
        with pytest.raises(SimulationError):
            trace.run(1, domain="aux")


class TestRingAndStride:
    def test_ring_bound_and_lifetime_count(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=16)
        trace.run(100)
        trace.stop()
        assert len(trace) == 16
        assert trace.samples_seen == 101
        assert trace.cycles_recorded() == list(range(85, 101))

    def test_stride_subsamples(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=None, stride=4)
        trace.run(16)
        trace.stop()
        assert trace.cycles_recorded() == [0, 4, 8, 12, 16]
        assert trace.series("count") == [0, 4, 8, 12, 16]

    def test_stride_phase_survives_chunking(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=None, stride=3)
        for chunk in (1, 2, 4, 5, 3):  # 15 cycles in ragged chunks
            trace.run(chunk)
        trace.stop()
        assert trace.cycles_recorded() == [0, 3, 6, 9, 12, 15]

    def test_validation(self):
        sim = counter_sim()
        with pytest.raises(SimulationError):
            StreamingTrace(sim, ["nope"])
        with pytest.raises(SimulationError):
            StreamingTrace(sim, ["count"], depth=0)
        with pytest.raises(SimulationError):
            StreamingTrace(sim, ["count"], stride=0)
        with pytest.raises(SimulationError):
            StreamingTrace(sim, ["count"], domain="nope")
        trace = StreamingTrace(sim, ["count"])
        trace.stop()
        with pytest.raises(SimulationError):
            trace.run(1)
        with pytest.raises(SimulationError):
            trace.series("out")


class TestTriggerWindows:
    @pytest.mark.parametrize("position", [0, 1, 7])
    def test_trigger_position_matrix(self, position):
        depth = 8
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=depth)
        assert trace.capture_window({"count": 40}, position=position,
                                    chunk=16)
        assert trace.triggered_at == 40
        assert trace.value_at(trace.triggered_at, "count") == 40
        start = 40 - position
        assert trace.series("count") == list(range(start, start + depth))

    def test_trigger_never_fires(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=8)
        assert not trace.capture_window({"count": 7}, max_cycles=4)
        assert trace.triggered_at is None

    def test_multi_signal_trigger(self):
        net = cohort()
        sim = Simulator(net)
        sim.poke("en", 1)
        trace = StreamingTrace(sim, PROBES, depth=32)
        assert trace.capture_window(
            {"issued": 5, "completed": 4}, position=4, max_cycles=10_000)
        at = trace.triggered_at
        assert trace.value_at(at, "issued") == 5
        assert trace.value_at(at, "completed") == 4

    def test_window_requires_bounded_ring(self):
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=None)
        with pytest.raises(SimulationError):
            trace.capture_window({"count": 3})
        bounded = StreamingTrace(counter_sim(), ["count"], depth=8)
        with pytest.raises(SimulationError):
            bounded.capture_window({"out": 3})  # uncaptured signal
        with pytest.raises(SimulationError):
            bounded.capture_window({"count": 3}, position=8)


class TestBatchTrace:
    def test_lanes_match_scalar_twins(self):
        net = cohort()
        batch = BatchSimulator(net, 4)
        batch.poke("en", 1)
        batch.poke("en", 0, lane=2)  # one diverging lane
        trace = BatchTrace(batch, PROBES, depth=None)
        trace.run(30)
        trace.stop()

        for lane, en in ((0, 1), (2, 0)):
            scalar = Simulator(net)
            scalar.poke("en", en)
            twin = StreamingTrace(scalar, PROBES, depth=None)
            twin.run(30)
            twin.stop()
            view = trace.lane_view(lane)
            assert list(view.iter_rows()) == list(twin.iter_rows())
            for probe in PROBES:
                assert trace.series(probe, lane) == twin.series(probe)

    def test_ring_and_validation(self):
        batch = BatchSimulator(elaborate(make_counter(8)), 3)
        batch.poke("en", 1)
        trace = BatchTrace(batch, ["count"], depth=8)
        trace.run(50)
        trace.stop()
        assert len(trace) == 8
        assert trace.series("count", 2) == list(range(43, 51))
        with pytest.raises(SimulationError):
            trace.series("count", 3)
        with pytest.raises(SimulationError):
            trace.lane_view(-1)


class TestObservabilityCounters:
    def test_sample_counter_and_ring_gauge(self):
        registry = get_registry()
        counter = registry.counter("sim.trace.samples")
        gauge = registry.gauge("sim.trace.ring_occupancy")
        before = counter.value
        sim = counter_sim()
        trace = StreamingTrace(sim, ["count"], depth=8)
        trace.run(20)
        trace.stop()
        assert counter.value - before == 21
        assert gauge.value == 8
