"""Tests for the cost model, reports, and flow plumbing."""

import pytest
from hypothesis import given, strategies as st

from repro.designs import make_beehive_stack, make_counter
from repro.fpga import make_test_device, make_u200
from repro.vendor import VivadoFlow
from repro.vendor import cost
from repro.vendor.reports import (
    format_compile_summary,
    format_timing_summary,
    format_utilization_table,
)
from repro.vendor.resources import ResourceVector


class TestCostModel:
    def test_jitter_is_deterministic_and_bounded(self):
        a = cost.jitter("seed", "stage", 3)
        b = cost.jitter("seed", "stage", 3)
        assert a == b
        assert 1 - cost.JITTER <= a <= 1 + cost.JITTER

    def test_jitter_varies_with_context(self):
        values = {cost.jitter("seed", "stage", run) for run in range(20)}
        assert len(values) > 10

    def test_stage_costs_scale_with_work(self):
        small = cost.synth_seconds(10_000)
        large = cost.synth_seconds(1_000_000)
        assert large > small * 20

    def test_congestion_inflates_place_and_route(self):
        relaxed = cost.place_seconds(10**6, congestion=0.3, seed="x")
        packed = cost.place_seconds(10**6, congestion=0.95, seed="x")
        assert packed > relaxed
        route_relaxed = cost.route_seconds(10**6, congestion=0.3, seed="x")
        route_packed = cost.route_seconds(10**6, congestion=0.95, seed="x")
        assert route_packed > route_relaxed

    def test_full_breakdown_sums(self):
        breakdown = cost.estimate_full_compile_seconds(
            work_luts=10**6, cells=2 * 10**6, nets=10**6,
            congestion=0.9, frames=20_000, seed="t")
        stage_sum = sum(v for k, v in breakdown.items() if k != "total")
        assert abs(stage_sum - breakdown["total"]) < 1e-6

    def test_format_duration_ranges(self):
        assert cost.format_duration(45) == "45 s"
        assert "min" in cost.format_duration(600)
        assert "h" in cost.format_duration(7200)

    @given(st.integers(10 ** 3, 10 ** 7))
    def test_vendor_incremental_always_saves_a_little(self, full):
        incremental = cost.vendor_incremental_seconds(float(full), "s")
        if full > 10_000:  # the fixed analysis cost amortizes
            assert incremental < full
        assert incremental > 0.5 * full


class TestReports:
    @pytest.fixture(scope="class")
    def result(self):
        return VivadoFlow(make_u200()).compile(
            make_beehive_stack(), clocks={"clk": 250.0})

    def test_utilization_table_mentions_all_kinds(self, result):
        text = format_utilization_table(result)
        for kind in ("LUT", "LUTRAM", "FF", "BRAM"):
            assert kind in text

    def test_timing_summary_shows_status_and_paths(self, result):
        text = format_timing_summary(result)
        assert "MET" in text
        assert "ns" in text

    def test_compile_summary_lists_stages(self, result):
        text = format_compile_summary(result)
        for stage in ("synth", "place", "route", "bitgen"):
            assert stage in text


class TestResourceVector:
    def test_add_and_scale(self):
        a = ResourceVector(lut=10, ff=20, lutram=1, bram=2)
        b = ResourceVector(lut=5, ff=5)
        total = a + b
        assert (total.lut, total.ff) == (15, 25)
        scaled = a.scaled(1.3)
        assert scaled.lut == 13
        assert scaled.bram == 3  # ceil

    def test_times(self):
        assert ResourceVector(lut=2).times(100).lut == 200

    def test_fits_and_ratio(self):
        vector = ResourceVector(lut=50, ff=100)
        assert vector.fits_in({"LUT": 50, "FF": 100, "LUTRAM": 0,
                               "BRAM": 0})
        assert not vector.fits_in({"LUT": 49, "FF": 100, "LUTRAM": 0,
                                   "BRAM": 0})
        ratio = vector.max_ratio({"LUT": 100, "FF": 400, "LUTRAM": 10,
                                  "BRAM": 10})
        assert ratio == 0.5

    def test_round_trip_dict(self):
        vector = ResourceVector(lut=1, ff=2, lutram=3, bram=4)
        assert ResourceVector.from_dict(vector.as_dict()) == vector


class TestFlowPlumbing:
    def test_run_index_increments(self):
        flow = VivadoFlow(make_test_device())
        first = flow.compile(make_counter(8), clocks={"clk": 100.0})
        second = flow.compile(make_counter(8), clocks={"clk": 100.0})
        assert second.run_index == first.run_index + 1
        # Jitter differs between runs, so times differ slightly.
        assert first.total_seconds != second.total_seconds

    def test_same_seed_reproduces_times(self):
        a = VivadoFlow(make_test_device(), seed="fixed").compile(
            make_counter(8), clocks={"clk": 100.0})
        b = VivadoFlow(make_test_device(), seed="fixed").compile(
            make_counter(8), clocks={"clk": 100.0})
        assert a.total_seconds == b.total_seconds
