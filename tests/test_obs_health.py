"""Health/SLO engine, two-clock profiler, Prometheus export, bundles.

Unit coverage for histogram quantiles and windowed metric deltas, the
declarative rule engine (severity, skipping, cadence), the profiler's
self-time attribution in both clocks, the text-exposition export, the
post-mortem bundle round-trip, and the seeded ``doctor`` verdicts.
"""

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.health import (
    DEFAULT_RULES,
    HealthEngine,
    HealthReport,
    HealthRule,
    MetricsWindow,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer


# --------------------------------------------------------------------------
# histogram quantiles
# --------------------------------------------------------------------------


class TestHistogramQuantile:
    def test_empty_histogram_has_no_quantile(self):
        assert Histogram("h").quantile(0.5) is None

    def test_p_outside_unit_interval_rejected(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)

    def test_extremes_clamp_to_observed_min_max(self):
        hist = Histogram("h")
        for value in (0.002, 0.04, 0.7):
            hist.observe(value)
        assert hist.quantile(0.0) == pytest.approx(0.002)
        assert hist.quantile(1.0) == pytest.approx(0.7)

    def test_median_lands_in_the_covering_bucket(self):
        hist = Histogram("h")
        for value in (0.01, 0.02, 0.03, 0.8):
            hist.observe(value)
        median = hist.quantile(0.5)
        bucket = hist.bucket_for(median)
        # The p50 estimate must fall in a bucket that actually holds
        # observations around the middle of the distribution.
        assert hist.counts[bucket] > 0
        assert 0.01 <= median <= 0.8

    def test_quantiles_are_monotone_in_p(self):
        hist = Histogram("h")
        for index in range(50):
            hist.observe(0.001 * (index + 1))
        values = [hist.quantile(p) for p in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)

    def test_as_dict_carries_p50_p99(self):
        hist = Histogram("h")
        hist.observe(0.25)
        snapshot = hist.as_dict()
        assert snapshot["p50"] == pytest.approx(0.25)
        assert snapshot["p99"] == pytest.approx(0.25)


# --------------------------------------------------------------------------
# windowed deltas
# --------------------------------------------------------------------------


class TestMetricsWindow:
    def test_counters_read_as_deltas_since_rebase(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(10)
        window = MetricsWindow(registry, rebase=True)
        assert window.counter("x") == 0
        registry.counter("x").inc(3)
        assert window.counter("x") == 3

    def test_missing_instruments_read_zero_or_none(self):
        window = MetricsWindow(MetricsRegistry(), rebase=True)
        assert window.counter("absent") == 0
        assert window.gauge("absent") == 0
        assert window.histogram("absent") is None

    def test_gauges_read_current_not_delta(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5)
        window = MetricsWindow(registry, rebase=True)
        registry.gauge("g").set(7)
        assert window.gauge("g") == 7

    def test_histogram_delta_sees_only_new_samples(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(0.001)
        window = MetricsWindow(registry, rebase=True)
        assert window.histogram("h") is None  # nothing new yet
        hist.observe(0.5)
        delta = window.histogram("h")
        assert delta.count == 1
        assert delta.total == pytest.approx(0.5)
        assert delta.quantile(0.5) == pytest.approx(0.5, rel=0.5)


# --------------------------------------------------------------------------
# rules, reports, engine
# --------------------------------------------------------------------------


def _rule(name="r", kind="max", threshold=1.0, probe=None,
          severity="fail"):
    return HealthRule(name, "test rule", kind, threshold,
                      probe or (lambda window: window.counter("x")),
                      severity=severity)


class TestHealthRules:
    def test_bad_kind_and_severity_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            _rule(kind="exact")
        with pytest.raises(ValueError, match="severity"):
            _rule(severity="meh")

    def test_max_rule_violates_above_threshold(self):
        registry = MetricsRegistry()
        window = MetricsWindow(registry, rebase=True)
        rule = _rule(kind="max", threshold=2.0)
        assert rule.check(window).status == "ok"
        registry.counter("x").inc(3)
        assert rule.check(window).status == "violated"

    def test_min_rule_violates_below_threshold(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(1)
        window = MetricsWindow(registry)
        assert _rule(kind="min", threshold=2.0).check(window) \
            .status == "violated"

    def test_probe_returning_none_skips(self):
        rule = _rule(probe=lambda window: None)
        result = rule.check(MetricsWindow(MetricsRegistry()))
        assert result.status == "skipped" and result.value is None

    def test_warn_severity_keeps_exit_clean(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(5)
        window = MetricsWindow(registry)
        report = HealthReport(results=[
            _rule(name="w", severity="warn").check(window)])
        assert report.status == "warn"
        assert report.warnings == ["w"] and not report.failed
        assert report.exit_code == 0

    def test_fail_severity_degrades_and_exits_nonzero(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(5)
        window = MetricsWindow(registry)
        report = HealthReport(results=[_rule(name="f").check(window)])
        assert report.status == "degraded"
        assert report.failed == ["f"]
        assert report.exit_code == 1
        assert "BAD" in report.describe()


class TestHealthEngine:
    def test_engine_is_registry_scoped(self):
        mine = MetricsRegistry()
        other = MetricsRegistry()
        other.counter("transport.exhausted").inc(9)
        report = HealthEngine(mine).evaluate()
        assert report.status == "healthy"

    def test_default_rules_catch_retry_storm(self):
        registry = MetricsRegistry()
        registry.counter("transport.batches").inc(100)
        registry.counter("transport.retries").inc(40)
        report = HealthEngine(registry).evaluate()
        assert "transport.retry_rate" in report.failed
        by_name = {r.rule.name: r for r in report.results}
        assert by_name["transport.retry_rate"].value \
            == pytest.approx(0.4)

    def test_ratio_rules_skip_under_min_samples(self):
        registry = MetricsRegistry()
        registry.counter("transport.batches").inc(3)  # < 10 floor
        registry.counter("transport.retries").inc(3)
        report = HealthEngine(registry).evaluate()
        by_name = {r.rule.name: r for r in report.results}
        assert by_name["transport.retry_rate"].status == "skipped"

    def test_windowed_evaluation_forgives_history(self):
        registry = MetricsRegistry()
        registry.counter("transport.exhausted").inc(2)  # bad past
        engine = HealthEngine(registry)
        assert engine.evaluate().status == "degraded"
        window = engine.window(rebase=True)
        assert engine.evaluate(window).status == "healthy"

    def test_cadence_evaluates_on_modeled_time_boundaries(self):
        engine = HealthEngine(MetricsRegistry())
        assert engine.maybe_evaluate(100.0) is None  # cadence off
        engine.set_cadence(10.0)
        assert engine.maybe_evaluate(0.0) is not None  # first tick
        assert engine.maybe_evaluate(5.0) is None      # inside period
        assert engine.maybe_evaluate(10.0) is not None
        assert engine.last_report is not None

    def test_degraded_report_lands_in_flight_ring(self):
        from repro.obs.flight import get_flight_recorder
        flight = get_flight_recorder()
        flight.clear()
        registry = MetricsRegistry()
        registry.counter("supervise.breaker_opens").inc()
        HealthEngine(registry).evaluate()
        names = [(r["kind"], r["name"]) for r in flight.events]
        assert ("supervise", "health_degraded") in names
        flight.clear()

    def test_default_rule_names_are_unique(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert len(names) == len(set(names))


# --------------------------------------------------------------------------
# two-clock profiler
# --------------------------------------------------------------------------


class TestProfiler:
    def make_trace(self):
        tracer = Tracer(enabled=True)
        with tracer.span("debug.read_state"):
            with tracer.span("jtag.batch") as batch:
                batch.add_modeled(2.0)
            with tracer.span("jtag.batch") as batch:
                batch.add_modeled(1.0)
        with tracer.span("sim.run") as run:
            run.add_modeled(0.5)
        return tracer

    def test_modeled_self_time_subtracts_children(self):
        from repro.obs.profile import ProfileReport
        report = ProfileReport.from_tracer(self.make_trace())
        commands = {row.name: row for row in report.rows("commands")}
        kernels = {row.name: row for row in report.rows("kernels")}
        read = commands["debug.read_state"]
        # Inclusive: children rolled up; self: everything was charged
        # by the two jtag batches.
        assert read.modeled_seconds == pytest.approx(3.0)
        assert read.modeled_self_seconds == pytest.approx(0.0)
        batch = kernels["jtag.batch"]
        assert batch.count == 2
        assert batch.modeled_self_seconds == pytest.approx(3.0)
        assert kernels["sim.run"].modeled_seconds == pytest.approx(0.5)

    def test_collapsed_stacks_fold_paths(self):
        from repro.obs.profile import ProfileReport
        report = ProfileReport.from_tracer(self.make_trace())
        folded = report.collapsed("modeled")
        lines = dict(line.rsplit(" ", 1) for line in folded.split("\n"))
        assert lines["debug.read_state;jtag.batch"] == "3000000"
        assert lines["sim.run"] == "500000"
        with pytest.raises(ValueError, match="unknown clock"):
            report.collapsed("cpu")

    def test_evicted_parents_fold_under_synthetic_root(self):
        from repro.obs.profile import ProfileReport
        tracer = Tracer(capacity=2, enabled=True)
        with tracer.span("debug.run"):
            with tracer.span("sim.run"):
                pass
            with tracer.span("sim.run"):
                pass
            report = ProfileReport.from_tracer(tracer)  # parent open
        assert "<evicted>;sim.run" in report.collapsed("wall")

    def test_empty_profile_reports_no_spans(self):
        from repro.obs.profile import ProfileReport
        report = ProfileReport.from_tracer(Tracer())
        assert report.span_count == 0
        assert "no spans" in report.describe()


# --------------------------------------------------------------------------
# prometheus export
# --------------------------------------------------------------------------


class TestPrometheusExport:
    def test_counters_gauges_histograms_export(self):
        from repro.obs.export import prometheus_text
        registry = MetricsRegistry()
        registry.counter("transport.batches").inc(7)
        registry.gauge("supervise.breakers_open").set(1)
        registry.histogram("journal.sync_seconds").observe(0.002)
        text = prometheus_text(registry)
        assert "# TYPE zoomie_transport_batches_total counter" in text
        assert "zoomie_transport_batches_total 7" in text
        assert "zoomie_supervise_breakers_open 1" in text
        assert 'zoomie_journal_sync_seconds_bucket{le="+Inf"} 1' in text
        assert "zoomie_journal_sync_seconds_count 1" in text
        assert "zoomie_journal_sync_seconds_sum" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        from repro.obs.export import prometheus_text
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(hist.bounds[0] / 2)
        hist.observe(hist.bounds[-1] * 2)  # overflow
        text = prometheus_text(registry)
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()
                  if line.startswith("zoomie_h_bucket")]
        assert counts == sorted(counts)  # cumulative, never decreasing
        assert counts[0] == 1 and counts[-1] == 2

    def test_export_to_file(self, tmp_path):
        from repro.obs.export import prometheus_text
        registry = MetricsRegistry()
        registry.counter("x").inc()
        path = tmp_path / "metrics.prom"
        text = prometheus_text(registry, path=path)
        assert path.read_text() == text


# --------------------------------------------------------------------------
# bundles
# --------------------------------------------------------------------------


class TestBundleRoundTrip:
    def test_bundle_round_trips_with_trigger_and_health(self, tmp_path):
        from repro.obs.bundle import (
            BUNDLE_FORMAT,
            BUNDLE_VERSION,
            load_bundle,
            write_bundle,
        )
        registry = MetricsRegistry()
        registry.counter("transport.batches").inc(12)
        flight = FlightRecorder(registry=registry)
        flight.note("command", "run")
        flight.trigger("debug.timeout", site="jtag.batch")
        journal = tmp_path / "j.log"
        journal.write_text("zoomie-journal-v1\nline-a\nline-b\n")

        path = write_bundle(tmp_path / "post.zip", registry=registry,
                            flight=flight, journal_path=journal,
                            config={"device": "TEST2"})
        bundle = load_bundle(path)

        assert bundle.manifest["format"] == BUNDLE_FORMAT
        assert bundle.manifest["version"] == BUNDLE_VERSION
        # The triggering event is in the manifest AND is the final
        # record of the archived flight dump.
        assert bundle.manifest["trigger"]["name"] == "debug.timeout"
        dump = bundle.section("flight.json")
        assert dump["records"][-1]["name"] == "debug.timeout"
        assert dump["records"][-1] == dump["trigger"]
        # Health report and metrics snapshot round-trip too.
        health = bundle.section("health.json")
        assert health["status"] in ("healthy", "warn", "degraded")
        assert any(rule["name"] == "transport.retry_rate"
                   for rule in health["rules"])
        metrics = bundle.section("metrics.json")
        assert metrics["transport.batches"]["value"] == 12
        assert "zoomie_transport_batches_total 12" \
            in bundle.section("prometheus.txt")
        assert bundle.section("journal_tail.txt").splitlines()[-1] \
            == "line-b"
        assert bundle.section("config.json") == {"device": "TEST2"}

    def test_wrong_format_and_newer_version_rejected(self, tmp_path):
        import json
        import zipfile

        from repro.obs.bundle import load_bundle
        bad = tmp_path / "bad.zip"
        with zipfile.ZipFile(bad, "w") as archive:
            archive.writestr("manifest.json",
                             json.dumps({"format": "tarball"}))
        with pytest.raises(ValueError, match="not a"):
            load_bundle(bad)
        future = tmp_path / "future.zip"
        with zipfile.ZipFile(future, "w") as archive:
            archive.writestr("manifest.json", json.dumps(
                {"format": "zoomie-obs-bundle", "version": 99}))
        with pytest.raises(ValueError, match="newer"):
            load_bundle(future)

    def test_bundle_includes_bench_trajectory(self, tmp_path):
        from repro.obs.bundle import load_bundle, write_bundle
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        (bench_dir / "BENCH_observability.json").write_text("[{}]")
        (bench_dir / "BENCH_torn.json").write_text("[{")  # torn: skipped
        registry = MetricsRegistry()
        path = write_bundle(tmp_path / "b.zip", registry=registry,
                            flight=FlightRecorder(registry=registry),
                            bench_dir=bench_dir)
        bundle = load_bundle(path)
        assert bundle.section("bench/BENCH_observability.json") == [{}]
        assert bundle.section("bench/BENCH_torn.json") is None


# --------------------------------------------------------------------------
# doctor
# --------------------------------------------------------------------------


class TestDoctor:
    def test_clean_workload_is_healthy(self):
        from repro.obs.doctor import run_doctor
        result = run_doctor(seed=2024)
        assert result.exit_code == 0, result.describe()
        assert result.report.status in ("healthy", "warn")
        assert result.workload["commands"] > 0
        assert result.workload["faults_injected"] == 0
        assert "doctor: pipeline workload" in result.describe()

    def test_chaos_schedule_degrades_and_names_the_rule(self):
        from repro.obs.doctor import run_doctor
        result = run_doctor(seed=2024, chaos_seed=7)
        assert result.exit_code == 1
        assert result.report.status == "degraded"
        assert "transport.retry_rate" in result.report.failed
        assert result.workload["faults_injected"] > 0
        payload = result.as_dict()
        assert payload["status"] == "degraded"
        assert payload["workload"]["chaos_seed"] == 7
