"""Differential tests: the VTI scheduler and compile cache must be
*bit-identical* to the serial cold flow.

Methodology per Guo et al. (PAPERS.md): run the same compile sequence
through two configurations of the tool and demand byte-equal outputs —
modeled seconds, timing reports, link reports, logic-location files,
frame images, and partial bitstreams. Three designs cover the matrix:

- **counters**: two partitionable leaf counters + a static counter on
  the single-SLR test device, with a *real* RTL edit (step change);
- **cohort**: the Cohort SoC (``mmu`` and ``datapath`` partitions) —
  multiple top-level partitions, no memories;
- **cluster**: a two-core SERV cluster on the two-SLR test device —
  per-core LUTRAM register files inside the partitions plus a static
  BRAM instruction memory (memory placement on both sides of the
  boundary, multi-SLR database).
"""

import io

import pytest

from repro.designs import make_cohort_soc, make_cluster, make_counter
from repro.fpga import make_test_device
from repro.rtl import ModuleBuilder, mux
from repro.vti import CompileCache, PartitionSpec, VtiFlow
from repro.vti.cache import module_fingerprint


# --------------------------------------------------------------------------
# designs
# --------------------------------------------------------------------------

def build_leaf(name, step=1, width=8):
    b = ModuleBuilder(name)
    en = b.input("en", 1)
    count = b.reg("count", width)
    b.next(count, mux(en, count + step, count))
    b.output_expr("out", count)
    return b.build()


def counter_farm(leaves=2):
    """``leaves`` partitionable counters plus one static counter."""
    b = ModuleBuilder("farm")
    en = b.input("en", 1)
    for i in range(leaves):
        refs = b.instantiate(build_leaf(f"leaf{i}"), f"c{i}",
                             inputs={"en": en})
        b.output_expr(f"o{i}", refs["out"])
    static = b.instantiate(make_counter(8, name="static_counter"),
                           "static", inputs={"en": en})
    b.output_expr("st", static["out"])
    return b.build()


#: label -> (top factory, device factory, partition paths, changes).
#: ``changes`` maps partition path -> replacement module factory (None
#: recompiles the existing module).
DESIGNS = {
    "counters": (
        counter_farm, make_test_device, ["c0", "c1"],
        {"c0": lambda: build_leaf("leaf0", step=3), "c1": None},
    ),
    "cohort": (
        lambda: make_cohort_soc(with_bug=False),
        lambda: make_test_device(2), ["mmu", "datapath"],
        {"mmu": None, "datapath": None},
    ),
    "cluster": (
        lambda: make_cluster(cores=2, imem_depth=64),
        lambda: make_test_device(2), ["core0", "core1"],
        {"core0": None, "core1": None},
    ),
}


def make_initial(cache, label):
    top_fn, device_fn, paths, changes = DESIGNS[label]
    flow = VtiFlow(device_fn(), cache=cache)
    initial = flow.compile_initial(
        top_fn(), {"clk": 100.0},
        [PartitionSpec(path) for path in paths], debug_slr=0)
    built = {path: (factory() if factory is not None else None)
             for path, factory in changes.items()}
    return flow, initial, built


# --------------------------------------------------------------------------
# equality down to the bit
# --------------------------------------------------------------------------

def ll_text(database):
    out = io.StringIO()
    database.ll.dump(out)
    return out.getvalue()


def assert_databases_identical(a, b):
    if a is None or b is None:
        assert a is None and b is None
        return
    assert a.name == b.name
    assert ll_text(a) == ll_text(b)
    assert a.netlist.fingerprint() == b.netlist.fingerprint()
    assert a.clocks == b.clocks
    assert a.gate_signals == b.gate_signals
    assert a.domain_bits == b.domain_bits
    assert sorted(a.memory_map) == sorted(b.memory_map)
    for name in a.memory_map:
        assert a.memory_map[name] == b.memory_map[name]
    assert set(a.frame_image) == set(b.frame_image)
    for slr in a.frame_image:
        assert a.image_checksum(slr) == b.image_checksum(slr)


def assert_results_identical(a, b):
    assert a.partition_path == b.partition_path
    assert a.version == b.version
    assert a.region_mask == b.region_mask
    assert a.seconds == b.seconds  # bit-identical modeled seconds
    assert a.timing == b.timing
    assert a.link == b.link
    assert a.requirement == b.requirement
    assert module_fingerprint(a.new_top) == module_fingerprint(b.new_top)
    assert a.partial_bitstream == b.partial_bitstream
    assert_databases_identical(a.database, b.database)


# --------------------------------------------------------------------------
# parallel vs serial
# --------------------------------------------------------------------------

@pytest.mark.parametrize("label", sorted(DESIGNS))
class TestParallelVsSerial:
    def test_many_is_bit_identical_across_modes(self, label):
        flow_p, initial_p, changes_p = make_initial(None, label)
        flow_s, initial_s, changes_s = make_initial(None, label)
        results_p, wall_p = flow_p.compile_incremental_many(
            initial_p, changes_p, parallel=True)
        results_s, wall_s = flow_s.compile_incremental_many(
            initial_s, changes_s, parallel=False)
        assert wall_p == wall_s
        assert len(results_p) == len(results_s)
        for a, b in zip(results_p, results_s):
            assert_results_identical(a, b)

    def test_repeated_parallel_runs_are_deterministic(self, label):
        """Thread scheduling must never leak into the merge."""
        flow_a, initial_a, changes_a = make_initial(None, label)
        flow_b, initial_b, changes_b = make_initial(None, label)
        for _round in range(2):
            results_a, wall_a = flow_a.compile_incremental_many(
                initial_a, changes_a, parallel=True, max_workers=2)
            results_b, wall_b = flow_b.compile_incremental_many(
                initial_b, changes_b, parallel=True, max_workers=8)
            assert wall_a == wall_b
            for a, b in zip(results_a, results_b):
                assert_results_identical(a, b)


# --------------------------------------------------------------------------
# cached vs cold
# --------------------------------------------------------------------------

@pytest.mark.parametrize("label", sorted(DESIGNS))
class TestCachedVsCold:
    def test_cache_hits_are_bit_identical_to_cold_compiles(self, label):
        cache = CompileCache()
        flow_c, initial_c, changes_c = make_initial(cache, label)
        flow_x, initial_x, changes_x = make_initial(None, label)
        paths = sorted(changes_c)
        # Two passes over the same edits: the cached flow misses on the
        # first pass and hits on the second; the cold flow recompiles
        # everything. Outputs must not differ anywhere.
        for round_index in range(2):
            for path in paths:
                cached = flow_c.compile_incremental(
                    initial_c, path, changes_c[path])
                cold = flow_x.compile_incremental(
                    initial_x, path, changes_x[path])
                assert_results_identical(cached, cold)
                assert cached.cache_hit == (round_index == 1)
        assert cache.stats.misses == len(paths)
        assert cache.stats.hits == len(paths)

    def test_parallel_many_with_warm_cache_matches_cold(self, label):
        cache = CompileCache()
        flow_c, initial_c, changes_c = make_initial(cache, label)
        flow_x, initial_x, changes_x = make_initial(None, label)
        # Warm the cache, then compare the second (all-hit) round.
        flow_c.compile_incremental_many(initial_c, changes_c)
        flow_x.compile_incremental_many(initial_x, changes_x)
        results_c, wall_c = flow_c.compile_incremental_many(
            initial_c, changes_c, parallel=True)
        results_x, wall_x = flow_x.compile_incremental_many(
            initial_x, changes_x, parallel=False)
        assert wall_c == wall_x
        assert all(r.cache_hit for r in results_c)
        assert not any(r.cache_hit for r in results_x)
        for a, b in zip(results_c, results_x):
            assert_results_identical(a, b)


class TestDiskCache:
    def test_disk_round_trip_matches_cold(self, tmp_path):
        label = "counters"
        first_cache = CompileCache(root=tmp_path / "vticache")
        flow_a, initial_a, changes_a = make_initial(first_cache, label)
        for path in sorted(changes_a):
            flow_a.compile_incremental(initial_a, path, changes_a[path])
        assert first_cache.stats.puts == len(changes_a)

        # A fresh process: empty memory, same directory.
        second_cache = CompileCache(root=tmp_path / "vticache")
        flow_b, initial_b, changes_b = make_initial(second_cache, label)
        flow_x, initial_x, changes_x = make_initial(None, label)
        for path in sorted(changes_b):
            warm = flow_b.compile_incremental(
                initial_b, path, changes_b[path])
            cold = flow_x.compile_incremental(
                initial_x, path, changes_x[path])
            assert warm.cache_hit
            assert_results_identical(warm, cold)
        assert second_cache.stats.disk_hits == len(changes_b)

    def test_corrupt_disk_entry_is_a_miss_not_an_error(self, tmp_path):
        label = "counters"
        root = tmp_path / "vticache"
        cache_a = CompileCache(root=root)
        flow_a, initial_a, changes_a = make_initial(cache_a, label)
        for path in sorted(changes_a):
            flow_a.compile_incremental(initial_a, path, changes_a[path])
        for stored in root.glob("*.vtic"):
            data = stored.read_bytes()
            stored.write_bytes(data[:-10] + b"corruption")

        cache_b = CompileCache(root=root)
        flow_b, initial_b, changes_b = make_initial(cache_b, label)
        flow_x, initial_x, changes_x = make_initial(None, label)
        for path in sorted(changes_b):
            healed = flow_b.compile_incremental(
                initial_b, path, changes_b[path])
            cold = flow_x.compile_incremental(
                initial_x, path, changes_x[path])
            assert not healed.cache_hit  # corrupt object never served
            assert_results_identical(healed, cold)
        assert cache_b.stats.integrity_failures == len(changes_b)
