"""Randomized whole-design fuzzing.

Hypothesis builds random small sequential designs (random combinational
DAGs feeding random registers), then checks system-level invariants that
must hold for *any* design:

- compiled and interpreted simulation agree cycle-for-cycle;
- the optimizer preserves observable behaviour;
- snapshot/restore round-trips through the simulator;
- the Verilog exporter emits structurally sane text;
- technology mapping yields consistent resource accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtl import ModuleBuilder, Simulator, elaborate
from repro.rtl.expr import BinaryOp, Const, Expr, Mux, Slice, UnaryOp
from repro.rtl.verilog import export_design
from repro.vendor.opt import optimize_netlist
from repro.vendor.synth import synthesize

WIDTH = 8

_BINOPS = ["+", "-", "&", "|", "^"]
_CMPOPS = ["==", "<", ">="]


@st.composite
def random_designs(draw):
    """A random module: inputs a/b, a few wires, registers, outputs."""
    b = ModuleBuilder("fuzz")
    pool: list[Expr] = [b.input("a", WIDTH), b.input("b", WIDTH)]

    n_regs = draw(st.integers(1, 4))
    regs = [b.reg(f"r{i}", WIDTH, init=draw(st.integers(0, 255)))
            for i in range(n_regs)]
    pool.extend(regs)

    n_wires = draw(st.integers(1, 6))
    for index in range(n_wires):
        kind = draw(st.sampled_from(["bin", "cmp", "mux", "un", "slice"]))
        x = draw(st.sampled_from(pool))
        y = draw(st.sampled_from(pool))
        if kind == "bin":
            expr = BinaryOp(draw(st.sampled_from(_BINOPS)), x, y)
        elif kind == "cmp":
            bit = BinaryOp(draw(st.sampled_from(_CMPOPS)), x, y)
            expr = Mux(bit, x, y)
        elif kind == "mux":
            sel = draw(st.sampled_from(pool))
            expr = Mux(sel.as_bool(), x, y)
        elif kind == "un":
            expr = UnaryOp(draw(st.sampled_from(["~", "-"])), x)
        else:
            high = draw(st.integers(0, WIDTH - 1))
            low = draw(st.integers(0, high))
            sliced = Slice(x, high, low)
            pad = WIDTH - sliced.width
            from repro.rtl.expr import Concat
            expr = Concat((Const(0, pad), sliced)) if pad else sliced
        pool.append(b.wire_expr(f"w{index}", expr))

    for index, reg in enumerate(regs):
        b.next(reg, draw(st.sampled_from(pool)))
    b.output_expr("out", draw(st.sampled_from(pool)))
    return b.build()


def run_trace(netlist, stimulus, compiled=True):
    sim = Simulator(netlist, compiled=compiled)
    trace = []
    for a, b_val in stimulus:
        sim.poke("a", a)
        sim.poke("b", b_val)
        trace.append(sim.peek("out"))
        sim.step(1)
    trace.append(sim.peek("out"))
    return trace


STIMULUS = st.lists(
    st.tuples(st.integers(0, 255), st.integers(0, 255)),
    min_size=1, max_size=12)


@settings(max_examples=40, deadline=None)
@given(random_designs(), STIMULUS)
def test_compiled_matches_interpreted(design, stimulus):
    netlist = elaborate(design)
    assert run_trace(netlist, stimulus, compiled=True) \
        == run_trace(netlist, stimulus, compiled=False)


@settings(max_examples=40, deadline=None)
@given(random_designs(), STIMULUS)
def test_optimizer_preserves_behaviour(design, stimulus):
    original = elaborate(design)
    optimized = elaborate(design)
    optimize_netlist(optimized)
    assert run_trace(original, stimulus) == run_trace(optimized, stimulus)


@settings(max_examples=25, deadline=None)
@given(random_designs(), STIMULUS)
def test_snapshot_restore_roundtrip(design, stimulus):
    netlist = elaborate(design)
    sim = Simulator(netlist)
    for a, b_val in stimulus:
        sim.poke("a", a)
        sim.poke("b", b_val)
        sim.step(1)
    snap = sim.snapshot()
    mid = sim.peek("out")
    sim.step(7)
    sim.restore(snap)
    assert sim.peek("out") == mid


@settings(max_examples=25, deadline=None)
@given(random_designs())
def test_verilog_export_is_sane(design):
    text = export_design(design)
    assert text.count("module ") == text.count("endmodule")
    assert "out" in text


@settings(max_examples=25, deadline=None)
@given(random_designs())
def test_synthesis_accounting_consistent(design):
    result = synthesize(design, opt="none")
    totals = result.totals
    assert totals.ff == sum(
        reg.width for reg in design.registers.values())
    assert totals.lut >= 0
    # Optimization never increases the count.
    assert synthesize(design, opt="global").totals.lut <= totals.lut
