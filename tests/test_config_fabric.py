"""End-to-end configuration plane tests.

These reproduce the paper's Section 4.5 hypothesis-validation experiments
as executable checks: three constant registers constrained to different
SLRs, read back through the JTAG ring — IDCODE mutation is inert, BOUT
pulse counts select SLRs, and the U250's final SLR needs three pulses.
"""

import pytest

from repro.bitstream import BitstreamAssembler
from repro.config import DesignDatabase, FabricDevice, LLEntry, LogicLocationFile
from repro.config.database import synthesize_frame_words
from repro.errors import ConfigError
from repro.fpga import FRAME_WORDS, FrameAddress, make_test_device, make_u200, make_u250
from repro.fpga.frames import CAPTURE_MINOR, BLOCK_MAIN
from repro.rtl import ModuleBuilder, elaborate

#: The constants the three registers initialize to (one per SLR).
CONSTANTS = [0xA5, 0xB6, 0xC7, 0xD8]


def make_constant_design(device):
    """Paper 4.3: registers initialized to distinct constants, one
    constrained to each chiplet, optimizations off."""
    b = ModuleBuilder("slr_probe")
    for index in range(device.slr_count):
        reg = b.reg(f"r{index}", 8, init=CONSTANTS[index])
        b.output_expr(f"out{index}", reg)
    netlist = elaborate(b.build())

    ll = LogicLocationFile()
    frame_image: dict[int, dict] = {}
    for index in range(device.slr_count):
        space_column = device.slr(index).columns_of_kind("CLB", "CLBM")[0]
        for bit in range(8):
            frame = FrameAddress(
                block_type=BLOCK_MAIN, region=0,
                column=space_column.index, minor=CAPTURE_MINOR)
            ll.add(LLEntry(name=f"r{index}", bit=bit, slr=index,
                           frame=frame, offset=bit))
        # A couple of configuration frames per SLR form the image the
        # bitstream must deliver.
        config_frame = FrameAddress(
            block_type=BLOCK_MAIN, region=0,
            column=space_column.index, minor=0)
        frame_image[index] = {
            config_frame: synthesize_frame_words("slr_probe", config_frame)
        }
    return DesignDatabase(
        name="slr_probe", device=device, netlist=netlist, ll=ll,
        clocks={"clk": 1000}, frame_image=frame_image)


def full_config_stream(db, idcode_overrides=None):
    """A complete multi-SLR configuration program."""
    device = db.device
    asm = BitstreamAssembler(device)
    asm.preamble()
    order = [(device.primary_slr + hops) % device.slr_count
             for hops in range(device.slr_count)]
    overrides = idcode_overrides or {}
    for slr_index in order:
        asm.hop_to_slr(slr_index)
        asm.write_idcode(overrides.get(slr_index))
        for address, words in sorted(db.frame_image[slr_index].items()):
            asm.write_frames(address, [words])
    asm.hop_to_slr(device.primary_slr)
    asm.startup()
    return asm.words


def program(device_factory=make_u200, idcode_overrides=None):
    device = device_factory()
    db = make_constant_design(device)
    fabric = FabricDevice(device)
    fabric.expect(db)
    fabric.jtag.run(full_config_stream(db, idcode_overrides))
    return fabric


def readback_register_frame(fabric, hops, idcode_injection=None):
    """Capture + read the constant register's capture frame, addressing
    the ring with ``hops`` BOUT pulses (0 = stay at primary)."""
    device = fabric.device
    target = (device.primary_slr + hops) % device.slr_count
    column = device.slr(target).columns_of_kind("CLB", "CLBM")[0]
    asm = BitstreamAssembler(device)
    asm.preamble()
    for _ in range(hops):
        asm.write_register("BOUT", [])
    if hops:
        asm.dummy(4)
    if idcode_injection is not None:
        asm.write_idcode(idcode_injection)
    asm.clear_mask()
    asm.capture()
    asm.read_frames(
        FrameAddress(block_type=BLOCK_MAIN, region=0,
                     column=column.index, minor=CAPTURE_MINOR), 1)
    result = fabric.jtag.run(asm.words)
    assert len(result.read_words) == FRAME_WORDS
    return result.read_words[0] & 0xFF  # register bits sit at offset 0..7


class TestProgramming:
    def test_boot_requires_matching_frames(self):
        device = make_u200()
        db = make_constant_design(device)
        fabric = FabricDevice(device)
        fabric.expect(db)
        words = full_config_stream(db)
        # Corrupt one frame-data word.
        from repro.bitstream.words import REGISTERS
        from repro.bitstream.packets import decode_stream, WRITE
        corrupted = list(words)
        # Find an FDRI payload word and flip it.
        for index, word in enumerate(corrupted):
            if word not in (0xFFFF_FFFF, 0xAA99_5566) and index > 20:
                corrupted[index] ^= 0xFFFF
                break
        with pytest.raises(ConfigError):
            fabric.jtag.run(corrupted)

    def test_boot_succeeds_with_correct_stream(self):
        fabric = program()
        assert fabric.booted
        assert fabric.sim is not None

    def test_wrong_device_rejected(self):
        db = make_constant_design(make_u200())
        fabric = FabricDevice(make_u250())
        with pytest.raises(ConfigError):
            fabric.expect(db)

    def test_primary_idcode_enforced(self):
        with pytest.raises(ConfigError):
            program(idcode_overrides={make_u200().primary_slr: 0x1234})

    def test_secondary_idcode_not_enforced(self):
        """Paper 4.5: mutating secondary SLRs' device IDs changes nothing."""
        fabric = program(idcode_overrides={0: 0xDEAD, 2: 0xBEEF})
        assert fabric.booted


class TestSlrHypotheses:
    """The experiments of paper Sections 4.3-4.5, end to end."""

    def test_readback_without_bout_returns_primary(self):
        fabric = program()
        primary = fabric.device.primary_slr
        value = readback_register_frame(fabric, hops=0)
        assert value == CONSTANTS[primary]

    def test_idcode_injection_does_not_select_slr(self):
        """Bitfiltrator's hypothesis, falsified: injecting a different
        IDCODE still reads back the primary SLR's constant."""
        fabric = program()
        primary = fabric.device.primary_slr
        for injected in (0xDEAD_BEEF, 0x1111_1111):
            # Injecting random IDCODEs at the primary would trip its
            # check; the experiment injects *other SLRs'* codes, which on
            # our model (one shared part IDCODE) is the device code.
            value = readback_register_frame(
                fabric, hops=0, idcode_injection=fabric.device.idcode)
            assert value == CONSTANTS[primary]

    def test_bout_pulses_select_each_slr(self):
        fabric = program()
        device = fabric.device
        for hops in range(device.slr_count):
            target = (device.primary_slr + hops) % device.slr_count
            value = readback_register_frame(fabric, hops=hops)
            assert value == CONSTANTS[target], f"hops={hops}"

    def test_u250_final_slr_needs_three_pulses(self):
        """Paper 4.5 'Verifying Repetition Pattern' on the 4-SLR U250."""
        fabric = program(device_factory=make_u250)
        device = fabric.device
        final = (device.primary_slr + 3) % device.slr_count
        value = readback_register_frame(fabric, hops=3)
        assert value == CONSTANTS[final]

    def test_primary_readback_is_fastest(self):
        """Table 3's footnote: the primary SLR reads back slightly faster
        because secondaries pay ring-hop latency."""
        fabric = program()
        times = {}
        for hops in range(fabric.device.slr_count):
            asm_seconds_before = fabric.jtag.total_seconds
            readback_register_frame(fabric, hops=hops)
            times[hops] = fabric.jtag.total_seconds - asm_seconds_before
        assert times[0] < times[1] < times[2]


class TestStateTraffic:
    def test_capture_reflects_current_state(self):
        fabric = program()
        primary = fabric.device.primary_slr
        # Mutate the register in the data plane, then capture + read.
        fabric.sim.force(f"r{primary}", 0x3C)
        value = readback_register_frame(fabric, hops=0)
        assert value == 0x3C

    def test_restore_writes_state_back(self):
        fabric = program()
        primary = fabric.device.primary_slr
        db = fabric.db
        # Write a new value into the capture frame, then GRESTORE.
        entry = db.ll.entries_for_slr(primary)[0]
        memory = fabric.config[primary]
        for bit in range(8):
            memory.set_bit(entry.frame, bit, (0x5A >> bit) & 1)
        asm = BitstreamAssembler(fabric.device)
        asm.preamble().clear_mask().restore()
        fabric.jtag.run(asm.words)
        assert fabric.sim.peek(f"r{primary}") == 0x5A

    def test_mask_restricts_capture_regions(self):
        """Section 4.7: a stale mask makes readback miss regions; Zoomie
        clears it first."""
        fabric = program()
        primary = fabric.device.primary_slr
        fabric.sim.force(f"r{primary}", 0x77)
        device = fabric.device
        column = device.slr(primary).columns_of_kind("CLB", "CLBM")[0]
        # Set the mask to a region that does NOT contain the register
        # (region 1), then capture: the capture frame stays stale.
        asm = BitstreamAssembler(device)
        asm.preamble()
        asm.write_register("MASK", [1 << 1])
        asm.capture()
        asm.read_frames(
            FrameAddress(block_type=BLOCK_MAIN, region=0,
                         column=column.index, minor=CAPTURE_MINOR), 1)
        result = fabric.jtag.run(asm.words)
        stale = result.read_words[0] & 0xFF
        assert stale != 0x77  # mask blocked the capture
        # Now clear the mask (Zoomie's fix) and repeat.
        fresh = readback_register_frame(fabric, hops=0)
        assert fresh == 0x77

    def test_clock_gate_register_freezes_design(self):
        device = make_test_device()
        b = ModuleBuilder("counter")
        count = b.reg("count", 8)
        b.next(count, count + 1)
        b.output_expr("out", count)
        netlist = elaborate(b.build())
        ll = LogicLocationFile()
        column = device.slr(0).columns_of_kind("CLB", "CLBM")[0]
        for bit in range(8):
            ll.add(LLEntry(
                name="count", bit=bit, slr=0,
                frame=FrameAddress(BLOCK_MAIN, 0, column.index,
                                   CAPTURE_MINOR),
                offset=bit))
        db = DesignDatabase(name="counter", device=device, netlist=netlist,
                            ll=ll, clocks={"clk": 1000},
                            frame_image={0: {}, 1: {}})
        fabric = FabricDevice(device)
        fabric.expect(db)
        asm = BitstreamAssembler(device)
        asm.preamble().startup()
        fabric.jtag.run(asm.words)
        fabric.run(5)
        assert fabric.sim.peek("count") == 5
        gate_bit = db.domain_bits["clk"]
        asm2 = BitstreamAssembler(device)
        asm2.preamble().write_register("CLK_GATE", [1 << gate_bit])
        fabric.jtag.run(asm2.words)
        fabric.run(5)
        assert fabric.sim.peek("count") == 5  # frozen
        asm3 = BitstreamAssembler(device)
        asm3.preamble().write_register("CLK_GATE", [0])
        fabric.jtag.run(asm3.words)
        fabric.run(2)
        assert fabric.sim.peek("count") == 7
