"""Differential testing of the simulator's evaluation engines.

Randomized small netlists (seeded, reproducible) are executed in
lockstep on two engines at a time — fused kernels vs the AST-walking
interpreter (the reference), and compiled closures vs the interpreter —
with identical stimulus: pokes, force(), clock-gating toggles, global
and per-domain stepping, and snapshot/restore mid-run. After every
action, *all* signals, every memory word, simulated time, and per-domain
clock bookkeeping must match bit-for-bit.

This is the correctness contract that lets the fused engine be the
default: any divergence between tiers is a bug by definition.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.rtl import (
    BinaryOp,
    Concat,
    Const,
    ModuleBuilder,
    Mux,
    Simulator,
    Slice,
    UnaryOp,
    elaborate,
    plan_cache_stats,
)

# ---------------------------------------------------------------------------
# random design generation
# ---------------------------------------------------------------------------

_BINOPS = ["+", "-", "*", "&", "|", "^"]
_CMPOPS = ["==", "!=", "<", ">=", "<s", ">s"]
_SHIFTS = ["<<", ">>", ">>>"]


def _coerce(expr, width):
    """Zero-extend or truncate ``expr`` to exactly ``width`` bits."""
    if expr.width == width:
        return expr
    if expr.width > width:
        return Slice(expr, width - 1, 0)
    return Concat((Const(0, width - expr.width), expr))


def _rand_expr(rng, pool, width, depth):
    """A random expression tree of exactly ``width`` bits over ``pool``."""
    if depth <= 0 or rng.random() < 0.2:
        if pool and rng.random() < 0.8:
            return _coerce(rng.choice(pool), width)
        return Const(rng.getrandbits(width), width)
    kind = rng.randrange(6)
    if kind == 0:
        return BinaryOp(rng.choice(_BINOPS),
                        _rand_expr(rng, pool, width, depth - 1),
                        _rand_expr(rng, pool, width, depth - 1))
    if kind == 1:
        w = rng.randrange(1, 9)
        return _coerce(BinaryOp(rng.choice(_CMPOPS),
                                _rand_expr(rng, pool, w, depth - 1),
                                _rand_expr(rng, pool, w, depth - 1)), width)
    if kind == 2:
        return Mux(_rand_expr(rng, pool, 1, depth - 1),
                   _rand_expr(rng, pool, width, depth - 1),
                   _rand_expr(rng, pool, width, depth - 1))
    if kind == 3:
        return UnaryOp("~", _rand_expr(rng, pool, width, depth - 1))
    if kind == 4:
        shift = Const(rng.randrange(0, width + 2), 5)
        return BinaryOp(rng.choice(_SHIFTS),
                        _rand_expr(rng, pool, width, depth - 1), shift)
    return _coerce(
        _rand_expr(rng, pool, rng.randrange(1, 2 * width + 1), depth - 1),
        width)


def _rand_design(seed):
    """A random multi-clock design with registers (enable/reset mixes), a
    memory with async read + sync read + write ports, and wires.

    Memory address expressions are 4 bits over a depth-10 array, so
    out-of-range addresses (reads return 0, writes are dropped) are
    exercised constantly.
    """
    rng = random.Random(seed)
    b = ModuleBuilder(f"rand{seed}")
    pool = []
    for i in range(3):
        pool.append(b.input(f"in{i}", rng.randrange(1, 13)))
    domains = ["clk", "aux"]
    regs = []
    for i in range(rng.randrange(4, 7)):
        w = rng.randrange(1, 17)
        enable = _rand_expr(rng, pool, 1, 1) if rng.random() < 0.4 else None
        reset = _rand_expr(rng, pool, 1, 1) if rng.random() < 0.4 else None
        ref = b.reg(f"r{i}", w, init=rng.getrandbits(w),
                    clock=rng.choice(domains), reset=reset,
                    reset_value=rng.getrandbits(w), enable=enable)
        pool.append(ref)
        regs.append((f"r{i}", w))
    mem = b.memory("mem", width=8, depth=10,
                   init={a: rng.getrandbits(8) for a in range(10)})
    # Async read: address from registers/inputs only (the documented
    # supported pattern — addresses never depend on async read data).
    pool.append(b.read_port(mem, "mem_ar", _rand_expr(rng, pool, 4, 2)))
    pool.append(b.read_port(
        mem, "mem_sr", _rand_expr(rng, pool, 4, 2), sync=True,
        enable=_rand_expr(rng, pool, 1, 1) if rng.random() < 0.5 else None,
        clock=rng.choice(domains)))
    for i in range(rng.randrange(3, 6)):
        w = rng.randrange(1, 17)
        pool.append(b.wire_expr(f"w{i}", _rand_expr(rng, pool, w, 3)))
    # Write port sampled post-settle, so it may reference wires freely.
    b.write_port(mem, _rand_expr(rng, pool, 4, 2),
                 _rand_expr(rng, pool, 8, 2),
                 _rand_expr(rng, pool, 1, 2), clock=rng.choice(domains))
    for name, w in regs:
        b.next(name, _rand_expr(rng, pool, w, 3))
    b.output_expr("out", _rand_expr(rng, pool, 8, 3))
    return elaborate(b.build())


# ---------------------------------------------------------------------------
# lockstep driving
# ---------------------------------------------------------------------------

def _state(sim):
    """Complete observable state: every signal, every memory word, time,
    and per-domain clock bookkeeping."""
    sim._settle()
    out = {name: sim.peek(name) for name in sim.netlist.signals}
    for name, words in sim.memories.items():
        out[f"@{name}"] = tuple(words)
    out["@time_ps"] = sim.time_ps
    for name, dom in sim.domains.items():
        out[f"@{name}"] = (dom.cycles, dom.edges_seen,
                           dom.next_edge_ps, dom.gated)
    return out


def _drive(rng, sims, steps):
    """Apply identical random stimulus to all sims, comparing complete
    state after every action."""
    net = sims[0].netlist
    inputs = sorted(net.inputs)
    registers = sorted(net.registers)
    domains = sorted(sims[0].domains)
    for _ in range(steps):
        act = rng.random()
        if act < 0.45:
            name = rng.choice(inputs)
            value = rng.getrandbits(net.width(name))
            for sim in sims:
                sim.poke(name, value)
        elif act < 0.55:
            name = rng.choice(registers)
            value = rng.getrandbits(net.registers[name].width)
            for sim in sims:
                sim.force(name, value)
        elif act < 0.65:
            domain = rng.choice(domains)
            gate = rng.random() < 0.5
            for sim in sims:
                sim.set_clock_gate(domain, gate)
        if rng.random() < 0.3:
            domain = rng.choice(domains)
            n = rng.randrange(1, 4)
            for sim in sims:
                sim.step(n, domain=domain)
        else:
            n = rng.randrange(1, 6)
            for sim in sims:
                sim.step(n)
        reference = _state(sims[-1])
        for sim in sims[:-1]:
            assert _state(sim) == reference, \
                f"{sim.engine} diverged from {sims[-1].engine}"
    # Leave everything ungated so callers can keep driving.
    for domain in domains:
        for sim in sims:
            sim.set_clock_gate(domain, False)


SEEDS = list(range(10))


# ---------------------------------------------------------------------------
# the differential suites
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_fused_matches_interpreted(seed):
    """Fused kernels vs the AST interpreter over hundreds of cycles of
    random stimulus: pokes, force, gating, mixed global/domain stepping."""
    net = _rand_design(seed)
    clocks = {"clk": 1000, "aux": 1000 if seed % 2 == 0 else 700}
    sims = [Simulator(net, clocks=clocks, engine="fused"),
            Simulator(net, clocks=clocks, engine="interp")]
    _drive(random.Random(seed * 31 + 1), sims, 60)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_closures_match_interpreted(seed):
    net = _rand_design(seed)
    sims = [Simulator(net, engine="closures"),
            Simulator(net, engine="interp")]
    _drive(random.Random(seed * 31 + 2), sims, 40)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_snapshot_restore_midrun_differential(seed):
    """Snapshot both engines mid-run, keep running, restore, run again —
    states must stay identical through the whole dance."""
    net = _rand_design(seed)
    rng = random.Random(seed * 31 + 3)
    sims = [Simulator(net, engine="fused"),
            Simulator(net, engine="interp")]
    _drive(rng, sims, 12)
    snaps = [sim.snapshot() for sim in sims]
    _drive(rng, sims, 12)
    for sim, snap in zip(sims, snaps):
        sim.restore(snap)
    _drive(rng, sims, 12)


def test_pre_edge_hook_forces_fallback_and_matches():
    """A pre-edge hook (poking an input between settle and sampling)
    routes the fused engine through the general tick; results must still
    match the interpreter running the same hook."""
    net = _rand_design(101)

    def make(engine):
        sim = Simulator(net, engine=engine)
        counter = {"n": 0}

        def hook(s, ticked):
            counter["n"] += 1
            s.poke("in0", counter["n"])
        sim.pre_edge_hooks.append(hook)
        return sim

    sims = [make("fused"), make("interp")]
    for _ in range(40):
        for sim in sims:
            sim.step(3)
        assert _state(sims[0]) == _state(sims[1])


def test_edge_hooks_observe_identical_sequences():
    """Post-edge hooks fire per committed edge on every engine (the fused
    tick kernel still runs them), and observe identical state."""
    net = _rand_design(55)
    seen = {"fused": [], "interp": []}

    def make(engine):
        sim = Simulator(net, engine=engine)

        def hook(s, ticked):
            seen[engine].append((tuple(sorted(ticked)), s.peek("out"),
                                 s.cycles("clk")))
        sim.edge_hooks.append(hook)
        return sim

    sims = [make("fused"), make("interp")]
    rng = random.Random(9)
    for _ in range(25):
        value = rng.getrandbits(net.width("in1"))
        for sim in sims:
            sim.poke("in1", value)
            sim.step(2)
    assert seen["fused"] == seen["interp"]
    assert len(seen["fused"]) == 25 * 2 * len(sims[0].domains) // 2


def test_gated_domains_disable_hot_loop_but_match():
    """With one domain gated, the batch hot loop must stand down and the
    gated domain's registers must hold, identically across engines."""
    net = _rand_design(77)
    sims = [Simulator(net, engine="fused"),
            Simulator(net, engine="interp")]
    for sim in sims:
        sim.set_clock_gate("aux", True)
    before = {name: sims[0].peek(name)
              for name, reg in net.registers.items() if reg.clock == "aux"}
    for sim in sims:
        sim.step(20)
    assert _state(sims[0]) == _state(sims[1])
    for name, value in before.items():
        assert sims[0].peek(name) == value  # gated domain held its state
    assert sims[0].cycles("aux") == 0
    assert sims[0].domains["aux"].edges_seen == 20


# ---------------------------------------------------------------------------
# satellite regressions
# ---------------------------------------------------------------------------

def test_snapshot_restores_clock_phase():
    """restore() must put clock-phase bookkeeping back (edges_seen,
    next_edge_ps, gating), so a restored multi-clock run replays exactly
    even when domain periods are mutually misaligned."""
    net = _rand_design(13)
    sim = Simulator(net, clocks={"clk": 1000, "aux": 300}, engine="fused")
    sim.poke("in0", 3)
    sim.run_to_time(3100)  # leaves clk/aux edges misaligned
    sim.set_clock_gate("aux", True)
    snap = sim.snapshot()
    assert snap["clocks"]["aux"]["gated"] is True
    sim.set_clock_gate("aux", False)

    first = []
    for _ in range(20):
        sim.step(1)
        first.append(_state(sim))
    sim.restore(snap)
    assert sim.is_gated("aux") is True
    sim.set_clock_gate("aux", False)
    replay = []
    for _ in range(20):
        sim.step(1)
        replay.append(_state(sim))
    assert replay == first


def test_restore_accepts_legacy_snapshots():
    """Snapshots without the clock-phase section (older captures) still
    restore architectural state and committed cycle counts."""
    net = _rand_design(13)
    sim = Simulator(net, engine="fused")
    sim.step(7)
    snap = sim.snapshot()
    del snap["clocks"]
    del snap["read_ports"]
    sim.step(5)
    sim.restore(snap)
    assert sim.cycles("clk") == 7


def test_no_clock_domains_raises_simulation_error():
    """An empty domain map must raise SimulationError, not a bare
    ValueError from min() over an empty sequence."""
    sim = Simulator(_rand_design(1))
    sim.domains.clear()
    with pytest.raises(SimulationError):
        sim.run_to_time(10_000)
    with pytest.raises(SimulationError):
        sim._advance_one_event()


def test_plan_cache_shares_compiled_plans():
    """Rebuilding simulators over the same netlist reuses one compiled
    plan (keyed by structural fingerprint) instead of recompiling."""
    net = _rand_design(42)
    fp = net.fingerprint()
    assert fp == net.fingerprint()  # deterministic
    first = Simulator(net, engine="fused")
    hits_before = plan_cache_stats()["hits"]
    second = Simulator(net, engine="fused")
    third = Simulator(net, engine="closures")
    assert first._plan is second._plan is third._plan
    assert plan_cache_stats()["hits"] >= hits_before + 2
    # A re-elaborated copy of the same module fingerprints identically.
    assert _rand_design(42).fingerprint() == fp
    # A different design does not.
    assert _rand_design(43).fingerprint() != fp


def test_single_settle_per_edge_without_pre_hooks():
    """The general tick settles once per edge when no pre-edge hooks are
    registered (it used to settle twice unconditionally)."""
    net = _rand_design(5)
    sim = Simulator(net, engine="interp")
    calls = {"n": 0}
    inner = sim._settle_fn

    def counting(env):
        calls["n"] += 1
        inner(env)
    sim._settle_fn = counting
    sim.step(10)
    assert calls["n"] <= 10  # one settle per edge (dirty-guarded)
    sim.pre_edge_hooks.append(lambda s, t: s.poke("in0", 1))
    calls["n"] = 0
    sim.step(10)
    assert calls["n"] == 20  # hook dirties the env: settle before + after
