"""Bug-pattern detectors and the ASCII timeline renderer."""

import pytest

from repro.designs import make_counter
from repro.errors import SimulationError
from repro.rtl import (
    PatternDetector,
    Simulator,
    StreamingTrace,
    StuckSignalDetector,
    elaborate,
    render_timeline,
    run_detectors,
    write_during_stall,
)


class FakeTrace:
    """Minimal TraceView stand-in with hand-authored rows."""

    def __init__(self, signals, rows, widths=None):
        self.signals = list(signals)
        self.widths = widths or {name: 8 for name in self.signals}
        self._rows = rows

    def iter_rows(self):
        return iter(self._rows)


def make_trace(**series):
    """Build a FakeTrace from per-signal sample lists."""
    signals = list(series)
    length = len(next(iter(series.values())))
    rows = [(cycle, {name: series[name][cycle] for name in signals})
            for cycle in range(length)]
    return FakeTrace(signals, rows)


class TestPatternDetector:
    def test_coalesces_consecutive_matches_into_episodes(self):
        trace = make_trace(we=[0, 1, 1, 0, 1, 0, 1, 1],
                           stall=[1, 1, 1, 1, 0, 0, 1, 1])
        findings = write_during_stall("we", "stall").scan(trace)
        assert [(f.start_cycle, f.end_cycle, f.samples)
                for f in findings] == [(1, 2, 2), (6, 7, 2)]
        assert findings[0].values == {"we": 1, "stall": 1}
        assert "we asserted while stall is high" in findings[0].message
        assert "cycles 1..2" in findings[0].describe()

    def test_exact_value_and_predicate_conditions(self):
        trace = make_trace(state=[0, 3, 3, 2, 3], count=[9, 1, 2, 3, 4])
        exact = PatternDetector("in-state-3", {"state": 3})
        assert [f.start_cycle for f in exact.scan(trace)] == [1, 4]
        both = PatternDetector(
            "odd-while-3", {"state": 3, "count": lambda v: v % 2 == 1})
        assert [(f.start_cycle, f.samples)
                for f in both.scan(trace)] == [(1, 1)]

    def test_min_span_filters_short_episodes(self):
        trace = make_trace(valid=[1, 0, 1, 1, 1, 0, 1])
        held = PatternDetector("valid-held", {"valid": 1}, min_span=3)
        findings = held.scan(trace)
        assert [(f.start_cycle, f.end_cycle) for f in findings] == [(2, 4)]

    def test_uncaptured_signal_raises(self):
        trace = make_trace(a=[0, 1])
        with pytest.raises(SimulationError):
            PatternDetector("x", {"b": 1}).scan(trace)
        with pytest.raises(SimulationError):
            PatternDetector("x", {})
        with pytest.raises(SimulationError):
            PatternDetector("x", {"a": 1}, min_span=0)


class TestStuckSignalDetector:
    def test_flags_constant_signals_only(self):
        trace = make_trace(live=[0, 1, 2, 3, 4, 5, 6, 7],
                           dead=[9, 9, 9, 9, 9, 9, 9, 9])
        findings = StuckSignalDetector().scan(trace)
        assert len(findings) == 1
        assert findings[0].values == {"dead": 9}
        assert "stuck at 9" in findings[0].message

    def test_needs_enough_samples(self):
        trace = make_trace(dead=[9, 9, 9])
        assert StuckSignalDetector(min_samples=8).scan(trace) == []


class TestRunDetectors:
    def test_findings_sorted_by_cycle(self):
        trace = make_trace(we=[0, 0, 0, 1], stall=[1, 1, 1, 1],
                           dead=[5, 5, 5, 5, 5, 5, 5, 5][:4])
        findings = run_detectors(trace, [
            write_during_stall("we", "stall"),
            StuckSignalDetector(["dead"], min_samples=4),
        ])
        assert [f.detector for f in findings] == [
            "stuck-signal", "write-during-stall(we,stall)"]
        assert findings[0].start_cycle <= findings[1].start_cycle

    def test_end_to_end_on_streaming_capture(self):
        sim = Simulator(elaborate(make_counter(8)))
        sim.poke("en", 1)
        trace = StreamingTrace(sim, ["count", "en"], depth=None)
        trace.run(12)
        trace.stop()
        findings = run_detectors(trace, [
            PatternDetector("count-is-5", {"count": 5}),
            StuckSignalDetector(["en"]),
        ])
        assert {f.detector for f in findings} == {"count-is-5",
                                                  "stuck-signal"}
        hit = next(f for f in findings if f.detector == "count-is-5")
        assert (hit.start_cycle, hit.samples) == (5, 1)


class TestRenderTimeline:
    def test_levels_and_hex_lanes(self):
        trace = make_trace(we=[0, 1, 1, 0], count=[0, 5, 15, 16])
        trace.widths = {"we": 1, "count": 8}
        art = render_timeline(trace)
        lines = art.splitlines()
        assert lines[0].startswith("cycle |0")
        assert lines[1] == "we    |_~~_"
        assert lines[2] == "count |05f#"

    def test_range_marks_and_clipping(self):
        trace = make_trace(v=list(range(10)))
        art = render_timeline(trace, start=4, end=9, max_samples=4,
                              marks=[7])
        lines = art.splitlines()
        assert lines[1] == "v     |6789"
        assert lines[2] == "      | ^  "
        assert "2 older sample(s) clipped" in lines[3]

    def test_empty_and_unknown(self):
        trace = make_trace(v=[1, 2, 3])
        assert "no samples" in render_timeline(trace, start=99)
        with pytest.raises(SimulationError):
            render_timeline(trace, signals=["nope"])
