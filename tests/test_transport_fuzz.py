"""Seeded fault-injection fuzzing of the debug control plane.

Mutation testing for the configuration plane: each case drives a full
debug workload (readback, state writes, memory writes, snapshot/
restore) over a channel perturbed by a seeded :class:`FaultPlan`, and
cross-checks every value the transport delivers against simulator
truth. The invariant fuzzed for: *corruption is either detected (typed
TransportError) or absent — never a silently wrong value.*

Marked ``fuzz`` and wired into the tier-1 run; a failure's seed is in
the test id and every assertion message, so it reproduces with e.g.
``pytest tests/test_transport_fuzz.py -k "seed3"``.
"""

import pytest

from repro import Zoomie, ZoomieProject
from repro.config import FaultPlan, RetryPolicy
from repro.designs import make_cluster
from repro.errors import TransportError

SEEDS = range(6)


def launch():
    project = ZoomieProject(
        design=make_cluster(cores=2, imem_depth=64), device="TEST2",
        clocks={"clk": 100.0}, watch=["retired_count"])
    session = Zoomie(project).launch()
    session.poke_input("en", 1)
    return session


def harsh_plan(seed):
    return FaultPlan(seed=seed, read_flip_rate=0.3, truncate_rate=0.15,
                     drop_hop_rate=0.2, stuck_rate=0.2)


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
def test_fuzzed_channel_never_yields_wrong_values(seed):
    session = launch()
    fabric, dbg = session.fabric, session.debugger
    fabric.enable_fault_injection(harsh_plan(seed),
                                  RetryPolicy(max_attempts=16))
    detected = 0
    for round_index in range(4):
        dbg.resume()
        dbg.run(11 + round_index)
        dbg.pause()
        context = f"seed={seed} round={round_index}"
        try:
            state = dbg.read_state()
        except TransportError:
            detected += 1
            continue
        for name, value in state.values.items():
            assert value == fabric.sim.peek(name), (
                f"{context}: silently corrupt register {name}")
        for name, words in state.memories.items():
            truth = list(fabric.sim.memories[name])
            assert words == truth, (
                f"{context}: silently corrupt memory {name}")
    stats = fabric.transport.stats
    # The harsh plan must actually have bitten somewhere: either a
    # detected-and-retried fault or an exhausted batch.
    assert stats.corrupt_detected + stats.command_faults_detected \
        + stats.stuck_detected + detected > 0, f"seed={seed}: no faults?"


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
def test_fuzzed_writes_apply_exactly_or_error(seed):
    session = launch()
    fabric, dbg = session.fabric, session.debugger
    dbg.run(20)
    dbg.pause()
    fabric.enable_fault_injection(harsh_plan(seed),
                                  RetryPolicy(max_attempts=16))
    mem = fabric.db.netlist.memories["imem"]
    rng_words = [(seed * 31 + i * 7) % (1 << mem.width)
                 for i in range(mem.depth)]
    try:
        dbg.write_state({"core0.acc": (seed + 1) & 0xF,
                         "core1.acc": (seed + 2) & 0xF})
        dbg.write_memory("imem", rng_words)
    except TransportError:
        return  # detected, surfaced, acceptable
    assert fabric.sim.peek("core0.acc") == (seed + 1) & 0xF, f"seed={seed}"
    assert fabric.sim.peek("core1.acc") == (seed + 2) & 0xF, f"seed={seed}"
    assert list(fabric.sim.memories["imem"]) == rng_words, f"seed={seed}"


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", SEEDS, ids=[f"seed{s}" for s in SEEDS])
def test_fuzzed_snapshot_restore_roundtrip(seed):
    session = launch()
    fabric, dbg = session.fabric, session.debugger
    dbg.run(25 + seed)
    dbg.pause()
    fabric.enable_fault_injection(harsh_plan(seed),
                                  RetryPolicy(max_attempts=16))
    try:
        snap = dbg.snapshot(label=f"fuzz{seed}")
        dbg.resume()
        dbg.run(13)
        dbg.pause()
        dbg.restore(snap)
    except TransportError:
        return
    for name, value in snap.values.items():
        if name in fabric.db.netlist.registers:
            assert fabric.sim.peek(name) == value, (
                f"seed={seed}: restore mismatch on {name}")
    for name, words in snap.memories.items():
        assert list(fabric.sim.memories[name]) == words, (
            f"seed={seed}: restore mismatch on memory {name}")
