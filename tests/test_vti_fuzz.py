"""Mutation/fuzz tests for the VTI compile cache and scheduler.

Seeded random sequences of partition edits — grow, shrink, rename
internal state, boundary-preserving rewrites, exact repeats — run
through a cached flow and a cold flow in lockstep (mutation-based
methodology per Zhang et al., PAPERS.md). Invariants:

- the cache never serves a stale artifact: after every edit, the cached
  flow's full output (seconds, timing, databases, partial bitstreams)
  is bit-identical to the cold flow's;
- boundary-incompatible mutants always raise, never link — from both
  flows, hit or miss;
- the hit/miss ledger matches an exact replay of the sequence.
"""

import random

import pytest

from repro.errors import PartitionError
from repro.vti import CompileCache, PartitionSpec, VtiFlow
from repro.vti.cache import module_fingerprint
from tests.test_vti_differential import (
    assert_results_identical,
    counter_farm,
    make_test_device,
)
from repro.rtl import ModuleBuilder, mux

PARTITION = "c0"
OPS_PER_SEQUENCE = 24


def build_mutant(step=1, extra_regs=0, reg_name="count", init=0):
    """A boundary-compatible rewrite of ``leaf0``.

    ``step`` rewrites the update logic, ``extra_regs`` grows the
    partition (pipeline stages), ``reg_name`` renames internal state,
    ``init`` changes only the power-on value — all behind the same
    en/out port contract.
    """
    b = ModuleBuilder("leaf0")
    en = b.input("en", 1)
    count = b.reg(reg_name, 8, init=init)
    out = count
    for index in range(extra_regs):
        stage = b.reg(f"stage{index}", 8)
        b.next(stage, out)
        out = stage
    b.next(count, mux(en, count + step, count))
    b.output_expr("out", out)
    return b.build()


def build_boundary_break(step=1):
    """Same logic, one extra output port — must never link."""
    b = ModuleBuilder("leaf0")
    en = b.input("en", 1)
    count = b.reg("count", 8)
    b.next(count, mux(en, count + step, count))
    b.output_expr("out", count)
    b.output_expr("dbg", count[0])
    return b.build()


def make_flows():
    cache = CompileCache()
    cached = VtiFlow(make_test_device(), cache=cache)
    cold = VtiFlow(make_test_device(), cache=None)
    initial_cached = cached.compile_initial(
        counter_farm(), {"clk": 100.0},
        [PartitionSpec("c0"), PartitionSpec("c1")], debug_slr=0)
    initial_cold = cold.compile_initial(
        counter_farm(), {"clk": 100.0},
        [PartitionSpec("c0"), PartitionSpec("c1")], debug_slr=0)
    return cache, cached, cold, initial_cached, initial_cold


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", [1, 7, 23])
def test_random_edit_sequences_never_serve_stale_artifacts(seed):
    rng = random.Random(seed)
    cache, cached, cold, initial_c, initial_x = make_flows()
    seen: set[tuple] = set()
    history: list[tuple] = []
    expected_hits = expected_misses = break_count = 0

    for _op in range(OPS_PER_SEQUENCE):
        roll = rng.random()
        if roll < 0.2:
            # Boundary break: both flows must refuse to link.
            module_c = build_boundary_break(step=rng.randint(1, 5))
            with pytest.raises(PartitionError):
                cached.compile_incremental(initial_c, PARTITION,
                                           module_c)
            with pytest.raises(PartitionError):
                cold.compile_incremental(initial_x, PARTITION, module_c)
            expected_misses += 1  # probed, raised, never stored
            break_count += 1
            continue
        if roll < 0.4 and history:
            key = history[rng.randrange(len(history))]
        else:
            key = (rng.randint(1, 5), rng.randint(0, 3),
                   rng.choice(["count", "tally", "acc"]),
                   rng.choice([0, 0, 1, 255]))
        step, extra_regs, reg_name, init = key
        # Fresh, content-equal module objects each time: a hit must
        # come from content addressing, never object identity.
        module_for_cached = build_mutant(step, extra_regs, reg_name,
                                         init)
        module_for_cold = build_mutant(step, extra_regs, reg_name, init)
        assert module_fingerprint(module_for_cached) \
            == module_fingerprint(module_for_cold)
        result_c = cached.compile_incremental(
            initial_c, PARTITION, module_for_cached)
        result_x = cold.compile_incremental(
            initial_x, PARTITION, module_for_cold)
        assert_results_identical(result_c, result_x)
        if key in seen:
            assert result_c.cache_hit
            expected_hits += 1
        else:
            assert not result_c.cache_hit
            expected_misses += 1
            seen.add(key)
        history.append(key)

    assert cache.stats.hits == expected_hits
    assert cache.stats.misses == expected_misses
    assert cache.stats.puts == len(seen)
    assert break_count == 0 or cache.stats.misses > len(seen)


@pytest.mark.fuzz
def test_boundary_break_never_hits_even_after_compatible_twin():
    """A compatible module and its boundary-broken twin share internals;
    the broken one must not ride the compatible one's cache entry."""
    _cache, cached, _cold, initial_c, _initial_x = make_flows()
    good = build_mutant(step=2)
    cached.compile_incremental(initial_c, PARTITION, good)
    for _attempt in range(2):
        with pytest.raises(PartitionError):
            cached.compile_incremental(
                initial_c, PARTITION, build_boundary_break(step=2))


@pytest.mark.fuzz
def test_fingerprint_distinguishes_init_values():
    """Netlist.fingerprint() ignores init values by design; the compile
    cache must not — inits land in configuration frames."""
    base = build_mutant(init=0)
    same = build_mutant(init=0)
    hot = build_mutant(init=255)
    assert module_fingerprint(base) == module_fingerprint(same)
    assert module_fingerprint(base) != module_fingerprint(hot)


@pytest.mark.fuzz
def test_fingerprint_ignores_split_markers():
    """split_design stamps partition modules with bookkeeping attrs; the
    pristine user module must hash identically to its prepared twin."""
    module = build_mutant()
    before = module_fingerprint(module)
    module.attributes["vti_partition"] = "c0"
    module.attributes["vti_reset_inserted"] = True
    assert module_fingerprint(module) == before
    module.attributes["real_change"] = 1
    assert module_fingerprint(module) != before
