"""Tests for the observability layer: tracer, metrics, logger.

Unit coverage for the primitives plus the integration contracts the
instrumented stack relies on: modeled seconds roll up child-to-parent,
the disabled path allocates nothing, and a traced debug session yields
a Chrome-trace file whose events mirror the command flow.
"""

import io
import json

import pytest

from repro.obs import (
    NOOP_SPAN,
    MetricsRegistry,
    Observability,
    StructuredLogger,
    Tracer,
    get_observability,
    get_registry,
    get_tracer,
)


@pytest.fixture(autouse=True)
def clean_tracer():
    """The tracer is process-global; leave it as tests expect it."""
    tracer = get_tracer()
    tracer.stop()
    tracer.clear()
    yield
    tracer.stop()
    tracer.clear()


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2
        # Finish order is inner-first; all three retained.
        assert [s.name for s in tracer.spans] == \
            ["inner", "middle", "outer"]

    def test_two_clock_accounting_rolls_up(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent") as parent:
            with tracer.span("child1") as child:
                child.add_modeled(1.5)
            with tracer.span("child2") as child:
                child.add_modeled(0.5)
            parent.add_modeled(0.25)
        # Modeled clock is inclusive, like wall time.
        assert parent.modeled_seconds == pytest.approx(2.25)
        assert parent.wall_seconds > 0
        for span in tracer.spans:
            assert span.finished

    def test_attrs_and_error_marking(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom", phase="x") as span:
                span.set(extra=7)
                raise RuntimeError("no")
        (span,) = tracer.find("boom")
        assert span.attrs["phase"] == "x"
        assert span.attrs["extra"] == 7
        assert span.attrs["error"] == "RuntimeError"

    def test_disabled_path_is_shared_noop(self):
        tracer = Tracer()  # disabled by default
        first = tracer.span("a", k=1)
        second = tracer.span("b")
        assert first is NOOP_SPAN and second is NOOP_SPAN
        # Entering yields None so call sites can guard cheaply.
        with tracer.span("c") as span:
            assert span is None
        assert tracer.spans == [] and tracer.current() is None

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=3, enabled=True)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2
        assert "dropped" in tracer.tree()

    def test_decorator_respects_enable_switch(self):
        tracer = Tracer()
        calls = []

        @tracer.traced("work")
        def work(x):
            calls.append(x)
            return x * 2

        assert work(3) == 6
        assert tracer.spans == []
        tracer.start()
        assert work(4) == 8
        assert [s.name for s in tracer.spans] == ["work"]
        assert calls == [3, 4]

    def test_chrome_export_is_valid_trace_json(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="demo"):
            with tracer.span("inner") as inner:
                inner.add_modeled(0.125)
        events = json.loads(tracer.export_chrome_json())
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid",
                                  "args"}
            assert event["dur"] >= 0
        by_name = {e["name"]: e for e in events}
        assert by_name["inner"]["args"]["modeled_seconds"] == 0.125
        assert by_name["outer"]["args"]["kind"] == "demo"
        # Inner nests inside outer on the wall timeline.
        assert by_name["outer"]["ts"] <= by_name["inner"]["ts"]

    def test_tree_is_preorder_and_indented(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        lines = tracer.tree().split("\n")
        assert lines[0].startswith("parent")
        assert lines[1].startswith("  child")

    def test_orphaned_spans_render_under_evicted_root(self):
        # Mid-session dump: the enclosing span is still open (so not
        # retained) while its finished children are — they must render
        # under a synthetic <evicted> root, not glue themselves to
        # whatever line precedes them at their recorded depth.
        tracer = Tracer(capacity=3, enabled=True)
        with tracer.span("session"):
            for index in range(5):
                with tracer.span(f"cmd{index}"):
                    pass
            text = tracer.tree()
        lines = text.split("\n")
        assert lines[0].startswith("<evicted>")
        assert "3 orphaned span(s)" in lines[0]
        assert [l.strip().split()[0] for l in lines[1:4]] \
            == ["cmd2", "cmd3", "cmd4"]
        # Once the session span closes, the retained subtree is whole
        # again and the synthetic root disappears.
        assert "<evicted>" not in tracer.tree()


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_log_buckets(self):
        hist = MetricsRegistry().histogram(
            "h", scale=1e-6, base=4.0, buckets=16)
        # Bounds are scale * base**i; bisect_right puts a value above
        # bound i into bucket i+1.
        assert hist.bucket_for(0.5e-6) == 0
        assert hist.bucket_for(2e-6) == 1      # between 1e-6 and 4e-6
        assert hist.bucket_for(1e9) == 16      # overflow bucket
        for value in (0.5e-6, 2e-6, 2e-6, 1e9):
            hist.observe(value)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[16] == 1
        assert hist.count == 4
        assert hist.min == 0.5e-6 and hist.max == 1e9
        assert hist.mean == pytest.approx(hist.total / 4)

    def test_get_or_create_and_type_conflicts(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")
        snapshot = registry.as_dict()
        assert snapshot["a"]["type"] == "counter"
        json.loads(registry.dump_json())  # valid JSON

    def test_global_registry_is_stable(self):
        assert get_registry() is get_registry()


class TestLogger:
    def test_jsonl_with_span_correlation(self):
        tracer = get_tracer()
        tracer.start()
        stream = io.StringIO()
        logger = StructuredLogger()
        logger.open(stream)
        try:
            logger.info("outside")
            with tracer.span("op"):
                logger.info("inside", detail=3)
        finally:
            logger.close()
        lines = [json.loads(line) for line
                 in stream.getvalue().splitlines()]
        assert [entry["event"] for entry in lines] == \
            ["outside", "inside"]
        assert "span_id" not in lines[0]
        assert lines[1]["span"] == "op"
        assert lines[1]["detail"] == 3
        assert lines[1]["seq"] > lines[0]["seq"]

    def test_disabled_logger_is_silent(self):
        logger = StructuredLogger()
        assert not logger.enabled
        logger.info("nothing")  # must not raise
        assert logger.records == []


class TestObservabilityHandle:
    def test_facade_bundles_the_singletons(self):
        obs = get_observability()
        assert obs is get_observability()
        assert obs.tracer is get_tracer()
        assert obs.metrics is get_registry()
        fresh = Observability()
        assert fresh.tracer is obs.tracer

    def test_start_stop_tracing(self):
        obs = get_observability()
        obs.start_tracing(capacity=128)
        assert obs.tracing and obs.tracer.capacity == 128
        obs.stop_tracing()
        assert not obs.tracing

    def test_stats_reflect_registry(self):
        obs = get_observability()
        obs.metrics.counter("test_obs.probe").inc(3)
        assert obs.stats()["test_obs.probe"]["value"] >= 3


class TestInstrumentedSession:
    """End-to-end: the stack under trace, both clocks populated."""

    @pytest.fixture(scope="class")
    def session(self):
        from repro import Zoomie, ZoomieProject
        from repro.designs import make_cohort_soc

        project = ZoomieProject(
            design=make_cohort_soc(with_bug=False), device="TEST2",
            clocks={"clk": 100.0}, watch=["issued"])
        session = Zoomie(project).launch()
        session.poke_input("en", 1)
        return session

    def test_debug_commands_become_spans(self, session):
        tracer = get_tracer()
        tracer.start()
        dbg = session.debugger
        dbg.run(max_cycles=5)
        dbg.pause()
        dbg.read_state()
        dbg.resume()
        tracer.stop()
        names = {span.name for span in tracer.spans}
        assert {"debug.run", "debug.pause", "debug.read_state",
                "debug.resume", "jtag.batch", "sim.run"} <= names
        # Two-clock contract: the pause readback charged modeled JTAG
        # seconds, rolled up from its jtag.batch children.
        (pause,) = tracer.find("debug.pause")
        batches = [s for s in tracer.find("jtag.batch")
                   if s.parent_id == pause.span_id]
        assert batches
        assert pause.modeled_seconds == pytest.approx(
            sum(s.modeled_seconds for s in batches))
        assert pause.modeled_seconds > 0
        (read,) = tracer.find("debug.read_state")
        assert read.attrs["registers"] > 0

    def test_transport_metrics_mirror_ring_stats(self, session):
        registry = get_registry()
        dbg = session.debugger
        before = registry.counter("transport.batches").value
        stats_before = session.fabric.transport.stats.batches
        dbg.pause()
        dbg.read_state()
        dbg.resume()
        delta = session.fabric.transport.stats.batches - stats_before
        assert delta > 0
        assert registry.counter("transport.batches").value \
            == before + delta

    def test_disabled_tracing_records_nothing(self, session):
        tracer = get_tracer()
        dbg = session.debugger
        dbg.pause()
        dbg.step(2)
        dbg.resume()
        assert tracer.spans == []
