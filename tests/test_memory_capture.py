"""BRAM/LUTRAM content capture through the configuration plane.

Memory contents are configuration state on real FPGAs: readback sees
them in content frames, and writing content frames while paused alters
them. These tests exercise the full path — placement of memories onto
BRAM/SLICEM columns, GCAPTURE packing, frame readback, FDRI writes, and
snapshot/replay including memories.
"""

import pytest

from repro import Zoomie, ZoomieProject
from repro.designs import make_cluster
from repro.errors import DebugError


@pytest.fixture()
def session():
    project = ZoomieProject(
        design=make_cluster(cores=2, imem_depth=64), device="TEST2",
        clocks={"clk": 100.0}, watch=["retired_count"])
    session = Zoomie(project).launch()
    session.poke_input("en", 1)
    return session


class TestMemoryPlacement:
    def test_memories_mapped_by_kind(self, session):
        memory_map = session.fabric.db.memory_map
        # LUTRAM register files on SLICEM columns, BRAM imem on a BRAM
        # column.
        assert memory_map["core0.rf"].column_kind == "CLBM"
        assert memory_map["core1.rf"].column_kind == "CLBM"
        assert memory_map["imem"].column_kind == "BRAM"

    def test_frames_are_exclusive_per_memory(self, session):
        fabric = session.fabric
        seen = {}
        for name, placement in fabric.db.memory_map.items():
            space = fabric.spaces[placement.slr]
            for address in placement.frame_addresses(space):
                key = (placement.slr, address)
                assert key not in seen, (
                    f"{name} shares frame {address} with {seen.get(key)}")
                seen[key] = name

    def test_small_memories_pack_into_one_column(self, session):
        memory_map = session.fabric.db.memory_map
        rf0 = memory_map["core0.rf"]
        rf1 = memory_map["core1.rf"]
        # Two 640-bit RFs each need one frame; they may share a column
        # at different frame offsets (frame-granular packing).
        if rf0.column == rf1.column:
            assert rf0.start_frame != rf1.start_frame


class TestMemoryReadback:
    def test_snapshot_includes_memories(self, session):
        dbg = session.debugger
        dbg.run(60)
        dbg.pause()
        snap = dbg.snapshot("with-mems")
        assert set(snap.memories) == {"core0.rf", "core1.rf", "imem"}
        sim = session.fabric.sim
        for name, words in snap.memories.items():
            assert words == sim.memories[name], name

    def test_memory_readback_sees_live_updates(self, session):
        dbg = session.debugger
        dbg.run(40)
        dbg.pause()
        first = dbg.snapshot("a").memories["core0.rf"]
        dbg.step(40)
        second = dbg.snapshot("b").memories["core0.rf"]
        assert first != second  # retirements wrote the register file


class TestMemoryWrite:
    def test_write_memory_lands_in_data_plane(self, session):
        dbg = session.debugger
        dbg.run(10)
        dbg.pause()
        mem = session.fabric.db.netlist.memories["imem"]
        new_words = [(i * 3 + 1) & 0xFFFF for i in range(mem.depth)]
        dbg.write_memory("imem", new_words)
        sim = session.fabric.sim
        assert [sim.read_memory("imem", i) for i in range(mem.depth)] \
            == new_words

    def test_wrong_length_rejected(self, session):
        dbg = session.debugger
        dbg.pause()
        with pytest.raises(DebugError):
            dbg.write_memory("imem", [0])

    def test_unmapped_memory_rejected(self, session):
        dbg = session.debugger
        dbg.pause()
        with pytest.raises(DebugError):
            dbg.write_memory("nope", [])


class TestReplayWithMemories:
    def test_restore_rolls_back_memories(self, session):
        dbg = session.debugger
        dbg.run(50)
        dbg.pause()
        snap = dbg.snapshot("checkpoint")
        dbg.step(60)  # more retirements mutate the RFs
        later = dbg.snapshot("later")
        assert later.memories != snap.memories
        dbg.restore(snap)
        replayed = dbg.snapshot("replayed")
        assert replayed.memories == snap.memories

    def test_replay_after_restore_is_deterministic(self, session):
        dbg = session.debugger
        dbg.run(30)
        dbg.pause()
        snap = dbg.snapshot()
        dbg.step(25)
        golden = dbg.snapshot()
        dbg.restore(snap)
        dbg.step(25)
        again = dbg.snapshot()
        assert golden.memories == again.memories
        design_regs = {
            name for name in golden.values
            if not name.startswith("zoomie_")
        }
        for name in design_regs:
            assert golden[name] == again[name], name


class TestSampleOverAccounting:
    """Bugfix regression: sample_over is pure register sampling and must
    not charge BRAM/LUTRAM content readback to every sample."""

    def test_register_snapshot_cheaper_than_with_memories(self, session):
        dbg = session.debugger
        dbg.run(40)
        dbg.pause()
        engine = dbg.engine
        # core0.rf is a mapped LUTRAM under the sampled prefix.
        reg_only = engine.snapshot(prefix="core0",
                                   include_memories=False)
        full = engine.snapshot(prefix="core0")
        assert not reg_only.memories and full.memories
        assert reg_only.acquisition_seconds < full.acquisition_seconds

    def test_sample_over_charges_register_time_only(self, session):
        dbg = session.debugger
        dbg.run(40)
        dbg.pause()
        engine = dbg.engine
        reg_cost = engine.snapshot(
            prefix="core0", include_memories=False).acquisition_seconds
        before = dbg.session_seconds
        dbg.step(1)
        step_cost = dbg.session_seconds - before

        before = dbg.session_seconds
        rows = dbg.sample_over(["core0"], cycles=2, stride=1)
        spent = dbg.session_seconds - before
        assert len(rows) == 3
        # 3 samples of register frames + 2 single-cycle steps — and not
        # a frame more (the memory frames would roughly double it).
        assert spent == pytest.approx(3 * reg_cost + 2 * step_cost,
                                      rel=1e-9)
