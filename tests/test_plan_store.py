"""Tests for the persistent on-disk compiled-plan cache.

The contract: a cold process warm-starts from stored kernel *sources*
keyed by ``Netlist.fingerprint()``, and **any** load defect — bad magic,
truncation, CRC mismatch, foreign fingerprint, stale codegen version,
or a stored source that no longer compiles — is a counted miss, never
an error. Corruption self-heals: the caller regenerates and overwrites.
"""

import json
import zlib
from pathlib import Path

import pytest

from repro.designs import make_cohort_soc, make_counter
from repro.rtl import (
    BatchSimulator,
    Simulator,
    clear_plan_cache,
    elaborate,
    plan_cache_stats,
    set_plan_cache_dir,
)
from repro.rtl import plan_store
from repro.rtl.plan_store import (
    CODEGEN_VERSION,
    PLAN_MAGIC,
    PlanDiskStore,
    resolve_env,
)


@pytest.fixture()
def store(tmp_path):
    """Disk tier redirected to a private directory, memory tier empty —
    each test simulates a cold process against its own store."""
    saved = (plan_store._STORE, plan_store._RESOLVED)
    disk = set_plan_cache_dir(tmp_path / "plans")
    clear_plan_cache()
    yield disk
    plan_store._STORE, plan_store._RESOLVED = saved
    clear_plan_cache()


def _counter_net():
    return elaborate(make_counter(8))


def _reframe(path: Path, record: dict) -> None:
    """Write ``record`` with a *valid* frame (to test body-level checks
    in isolation from the CRC layer)."""
    body = json.dumps(record, sort_keys=True)
    data = body.encode("utf-8")
    header = (f"{PLAN_MAGIC} {len(data):08x} "
              f"{zlib.crc32(data) & 0xFFFFFFFF:08x}\n")
    path.write_text(header + body)


def _run_and_fingerprint(net):
    sim = Simulator(net)
    sim.poke("en", 1)
    sim.step(20)
    return sim.peek("count"), net.fingerprint()


# ---------------------------------------------------------------------------
# the happy path: store on first build, hit on simulated restart
# ---------------------------------------------------------------------------

def test_roundtrip_survives_process_restart(store):
    net = _counter_net()
    expected, fingerprint = _run_and_fingerprint(net)
    assert store.stats["stores"] >= 1
    assert len(store) == 1
    assert (store.root / f"{fingerprint}.plan").exists()

    clear_plan_cache()  # "new process": memory tier gone, disk remains
    hits_before = store.stats["hits"]
    value, _ = _run_and_fingerprint(net)
    assert value == expected
    assert store.stats["hits"] == hits_before + 1


def test_batch_kernels_accumulate_in_same_entry(store):
    net = _counter_net()
    batch = BatchSimulator(net, 4)
    batch.poke("en", 1)
    batch.step(10)
    stored = store.load(net.fingerprint())
    assert "settle" in stored
    assert "b4:settle" in stored
    assert any(key.startswith("b4:run:") for key in stored)

    clear_plan_cache()
    hits_before = store.stats["hits"]
    again = BatchSimulator(net, 4)
    again.poke("en", 1)
    again.step(10)
    assert again.peek("count") == batch.peek("count")
    assert store.stats["hits"] > hits_before


# ---------------------------------------------------------------------------
# every defect is a counted miss, never an error
# ---------------------------------------------------------------------------

def _prime(store, net):
    _, fingerprint = _run_and_fingerprint(net)
    clear_plan_cache()
    return store.root / f"{fingerprint}.plan", fingerprint


@pytest.mark.parametrize("corrupt", [
    lambda text: text.replace(PLAN_MAGIC, "zoomie-rot-v9"),
    lambda text: text[: len(text) // 2],                      # truncated
    lambda text: text[:-20] + "X" * 20,                       # bit-rot
    lambda text: "",                                          # emptied
    lambda text: "not a plan file at all",
], ids=["bad-magic", "truncated", "bit-rot", "empty", "garbage"])
def test_corrupted_entry_is_counted_miss_not_crash(store, corrupt):
    net = _counter_net()
    path, _ = _prime(store, net)
    path.write_text(corrupt(path.read_text()))
    bad_before = store.stats["integrity_failures"]
    misses_before = store.stats["misses"]

    expected, _ = _run_and_fingerprint(net)  # must not raise
    assert expected == 20
    assert store.stats["integrity_failures"] == bad_before + 1
    assert store.stats["misses"] == misses_before + 1
    # The entry self-healed: next cold start hits again.
    clear_plan_cache()
    hits_before = store.stats["hits"]
    _run_and_fingerprint(net)
    assert store.stats["hits"] == hits_before + 1


def test_stale_codegen_version_is_plain_miss(store):
    net = _counter_net()
    path, fingerprint = _prime(store, net)
    record = json.loads(path.read_text().split("\n", 1)[1])
    record["codegen"] = CODEGEN_VERSION + 1
    _reframe(path, record)

    bad_before = store.stats["integrity_failures"]
    misses_before = store.stats["misses"]
    _run_and_fingerprint(net)
    assert store.stats["integrity_failures"] == bad_before  # not rot
    assert store.stats["misses"] == misses_before + 1


def test_foreign_fingerprint_is_integrity_failure(store):
    net = _counter_net()
    path, fingerprint = _prime(store, net)
    record = json.loads(path.read_text().split("\n", 1)[1])
    record["fingerprint"] = "somebody-else"
    _reframe(path, record)
    bad_before = store.stats["integrity_failures"]
    _run_and_fingerprint(net)
    assert store.stats["integrity_failures"] == bad_before + 1


def test_stored_source_that_wont_compile_regenerates(store):
    """A validly framed entry whose *source text* is broken: the compile
    failure is noted as a defect and the kernel is regenerated."""
    net = _counter_net()
    fingerprint = net.fingerprint()
    store.merge(fingerprint, {"settle": "def _settle(env, mems:"})

    bad_before = store.stats["integrity_failures"]
    expected, _ = _run_and_fingerprint(net)  # must not raise
    assert expected == 20
    assert store.stats["integrity_failures"] == bad_before + 1
    # The regenerated source overwrote the broken one.
    assert store.load(fingerprint)["settle"].startswith("def _settle")


def test_merge_is_read_modify_write(store):
    store.merge("fp1", {"a": "def a(): pass"})
    store.merge("fp1", {"b": "def b(): pass"})
    assert set(store.load("fp1")) == {"a", "b"}
    assert len(store) == 1


# ---------------------------------------------------------------------------
# eviction, stats, configuration
# ---------------------------------------------------------------------------

def test_eviction_caps_entry_count(tmp_path):
    disk = PlanDiskStore(tmp_path, limit=3)
    for i in range(6):
        disk.merge(f"fp{i}", {"settle": f"def s{i}(): pass"})
    assert len(disk) == 3
    assert disk.stats["evictions"] == 3
    # The newest write always survives its own eviction pass.
    assert disk.load("fp5") is not None


def test_limit_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        PlanDiskStore(tmp_path, limit=0)


def test_stats_dict_shape_and_plan_cache_stats(store):
    _run_and_fingerprint(_counter_net())
    combined = plan_cache_stats()
    assert {"hits", "misses", "evictions", "size", "disk"} <= set(combined)
    disk = combined["disk"]
    assert disk["enabled"] is True
    assert disk["path"] == str(store.root)
    assert disk["entries"] == 1
    assert disk["stores"] >= 1
    assert {"hits", "misses", "evictions",
            "integrity_failures", "limit"} <= set(disk)


def test_disabled_store_reports_disabled(store):
    set_plan_cache_dir(None)
    clear_plan_cache()
    _run_and_fingerprint(_counter_net())  # memory-only still works
    assert plan_cache_stats()["disk"] == {"enabled": False}


def test_disk_counters_reach_obs_registry(store):
    from repro.obs import get_registry
    registry = get_registry()
    hits_before = registry.counter("sim.plan_cache.disk.hits").value
    net = _counter_net()
    _run_and_fingerprint(net)
    clear_plan_cache()
    _run_and_fingerprint(net)
    assert registry.counter("sim.plan_cache.disk.hits").value \
        == hits_before + 1


def test_resolve_env_parsing_table(tmp_path, monkeypatch):
    for off in ("off", "OFF", "0", "no", "none", "disabled", "", "  "):
        assert resolve_env(off) is None, repr(off)
    assert resolve_env(str(tmp_path)) == tmp_path
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert resolve_env(None) == tmp_path / "xdg" / "zoomie" / "plans"
    monkeypatch.delenv("XDG_CACHE_HOME")
    assert resolve_env(None) == Path.home() / ".cache" / "zoomie" / "plans"


def test_cohort_soc_roundtrips_through_disk(store):
    """The paper's SoC — the design the cold-start acceptance criterion
    is about — survives a store/load cycle bit-identically."""
    net = elaborate(make_cohort_soc(with_bug=False))
    sim = Simulator(net)
    sim.poke("en", 1)
    sim.step(50)
    reference = sim.snapshot()

    clear_plan_cache()
    hits_before = store.stats["hits"]
    warm = Simulator(net)
    warm.poke("en", 1)
    warm.step(50)
    assert warm.snapshot() == reference
    assert store.stats["hits"] == hits_before + 1


# ---------------------------------------------------------------------------
# concurrent deletion (shared-store eviction races)
# ---------------------------------------------------------------------------

def test_concurrent_deletion_is_plain_miss_not_rot(tmp_path, monkeypatch):
    """Another process evicting the entry between our existence check
    and the read must look like a plain miss — no integrity failure,
    no exception (ENOENT is not rot)."""
    disk = PlanDiskStore(tmp_path, limit=4)
    disk.merge("fp-race", {"settle": "def s(): pass"})
    disk._path("fp-race").unlink()
    # Force the exists() probe to say yes so read_text() hits the real
    # FileNotFoundError path, exactly as a racing evictor produces it.
    monkeypatch.setattr(Path, "exists", lambda self: True)
    assert disk.load("fp-race") is None
    assert disk.stats["integrity_failures"] == 0
    assert disk.stats["misses"] == 1


def test_vti_cache_concurrent_deletion_is_plain_miss(tmp_path,
                                                     monkeypatch):
    """Same contract for the VTI CompileCache's disk tier."""
    from repro.vti.cache import CompileCache
    cache = CompileCache(root=tmp_path)
    before = cache.stats.integrity_failures
    monkeypatch.setattr(Path, "exists", lambda self: True)
    assert cache._load_disk("0" * 12) is None
    assert cache.stats.integrity_failures == before
