"""Tests for snapshot parsing, persistence, and long-run replay."""

import io

import pytest

from repro import Zoomie, ZoomieProject
from repro.debug import StateSnapshot, diff_snapshots, parse_capture_frames
from repro.designs import make_cohort_soc
from repro.errors import DebugError


class TestSnapshotObject:
    def test_getitem_and_contains(self):
        snap = StateSnapshot(values={"a.b": 5})
        assert snap["a.b"] == 5
        assert "a.b" in snap
        assert "nope" not in snap
        with pytest.raises(DebugError):
            snap["nope"]

    def test_subset(self):
        snap = StateSnapshot(values={"core.pc": 1, "core.acc": 2,
                                     "bus.req": 3})
        sub = snap.subset("core")
        assert set(sub.values) == {"core.pc", "core.acc"}

    def test_diff(self):
        a = StateSnapshot(values={"x": 1, "y": 2})
        b = StateSnapshot(values={"x": 1, "y": 9})
        assert diff_snapshots(a, b) == {"y": (2, 9)}

    def test_json_roundtrip(self):
        snap = StateSnapshot(
            values={"core.pc": 0xDEAD_BEEF_CAFE, "flag": 1},
            cycle=42, label="checkpoint",
            memories={"imem": [1, 2, 0xFFFF]})
        out = io.StringIO()
        snap.dump(out)
        parsed = StateSnapshot.parse(io.StringIO(out.getvalue()))
        assert parsed.values == snap.values
        assert parsed.cycle == 42
        assert parsed.label == "checkpoint"
        assert parsed.memories == snap.memories

    def test_parse_rejects_foreign_json(self):
        with pytest.raises(DebugError):
            StateSnapshot.parse(io.StringIO('{"format": "other"}'))


class TestParseCaptureFrames:
    def test_partial_frames_yield_partial_registers(self):
        from repro.config import LLEntry, LogicLocationFile
        from repro.fpga import FrameAddress
        from repro.fpga.frames import BLOCK_MAIN, CAPTURE_MINOR, FRAME_WORDS

        frame_a = FrameAddress(BLOCK_MAIN, 0, 0, CAPTURE_MINOR)
        frame_b = FrameAddress(BLOCK_MAIN, 0, 1, CAPTURE_MINOR)
        ll = LogicLocationFile([
            LLEntry("reg_a", bit, 0, frame_a, bit) for bit in range(4)
        ] + [
            LLEntry("reg_b", bit, 0, frame_b, bit) for bit in range(4)
        ])
        words = [0] * FRAME_WORDS
        words[0] = 0b1010
        values = parse_capture_frames({(0, frame_a): words}, ll)
        # reg_a is complete; reg_b's frame was not read -> excluded.
        assert values == {"reg_a": 0b1010}


class TestFileReplay:
    def test_snapshot_survives_session_restart(self, tmp_path):
        """Save a snapshot to disk, relaunch the card from scratch, load
        the snapshot, and verify the replayed run matches the original —
        the paper's 'preserve emulation progress' workflow."""
        def launch():
            project = ZoomieProject(
                design=make_cohort_soc(with_bug=False), device="TEST2",
                clocks={"clk": 100.0}, watch=["issued"])
            session = Zoomie(project).launch()
            session.poke_input("en", 1)
            return session

        first = launch()
        first.debugger.run(30)
        first.debugger.pause()
        snap = first.debugger.snapshot("progress")
        path = tmp_path / "progress.json"
        with path.open("w") as stream:
            snap.dump(stream)
        first.debugger.step(10)
        expected = first.debugger.snapshot("golden")

        # A completely fresh card and session.
        second = launch()
        second.debugger.pause()
        with path.open() as stream:
            loaded = StateSnapshot.parse(stream)
        second.debugger.restore(loaded)
        second.debugger.step(10)
        replayed = second.debugger.snapshot("replayed")

        changed = {
            name for name in diff_snapshots(expected, replayed)
            if not name.startswith("zoomie_")
        }
        assert not changed
