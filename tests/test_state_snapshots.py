"""Tests for snapshot parsing, persistence, and long-run replay."""

import io
import json

import pytest

from repro import Zoomie, ZoomieProject
from repro.config import FabricDevice
from repro.debug import (
    StateSnapshot,
    ZoomieDebugger,
    diff_snapshots,
    instrument_netlist,
    parse_capture_frames,
)
from repro.designs import make_cluster, make_cohort_soc
from repro.errors import DebugError, SnapshotFormatError
from repro.fpga import make_test_device
from repro.rtl import elaborate
from repro.vendor import VivadoFlow
from repro.vendor.place import whole_slr


class TestSnapshotObject:
    def test_getitem_and_contains(self):
        snap = StateSnapshot(values={"a.b": 5})
        assert snap["a.b"] == 5
        assert "a.b" in snap
        assert "nope" not in snap
        with pytest.raises(DebugError):
            snap["nope"]

    def test_subset(self):
        snap = StateSnapshot(values={"core.pc": 1, "core.acc": 2,
                                     "bus.req": 3})
        sub = snap.subset("core")
        assert set(sub.values) == {"core.pc", "core.acc"}

    def test_diff(self):
        a = StateSnapshot(values={"x": 1, "y": 2})
        b = StateSnapshot(values={"x": 1, "y": 9})
        assert diff_snapshots(a, b) == {"y": (2, 9)}

    def test_json_roundtrip(self):
        snap = StateSnapshot(
            values={"core.pc": 0xDEAD_BEEF_CAFE, "flag": 1},
            cycle=42, label="checkpoint",
            memories={"imem": [1, 2, 0xFFFF]})
        out = io.StringIO()
        snap.dump(out)
        parsed = StateSnapshot.parse(io.StringIO(out.getvalue()))
        assert parsed.values == snap.values
        assert parsed.cycle == 42
        assert parsed.label == "checkpoint"
        assert parsed.memories == snap.memories

    def test_parse_rejects_foreign_json(self):
        with pytest.raises(DebugError):
            StateSnapshot.parse(io.StringIO('{"format": "other"}'))


class TestParseHardening:
    def dumped(self, **kw):
        return StateSnapshot(values={"core.pc": 0x10, "flag": 1},
                             memories={"rf": [3, 4]}, cycle=9,
                             label="x", **kw).dumps()

    def test_truncated_dump_names_the_line(self):
        text = self.dumped()
        with pytest.raises(SnapshotFormatError) as info:
            StateSnapshot.parse(io.StringIO(text[:len(text) // 2]))
        assert info.value.line is not None
        assert "truncated" in str(info.value)

    def test_duplicate_signal_names_rejected(self):
        text = ('{"format": "zoomie-snapshot-v1", '
                '"values": {"a": "0x1", "a": "0x2"}}')
        with pytest.raises(SnapshotFormatError, match="duplicate"):
            StateSnapshot.parse(io.StringIO(text))

    def test_bad_hex_value_names_signal(self):
        data = json.loads(self.dumped())
        data["values"]["core.pc"] = "0xZZ"
        with pytest.raises(SnapshotFormatError, match="core.pc"):
            StateSnapshot.parse(io.StringIO(json.dumps(data)))

    def test_bad_memory_word_names_index(self):
        data = json.loads(self.dumped())
        data["memories"]["rf"][1] = 4  # int, not a hex string
        with pytest.raises(SnapshotFormatError, match=r"rf\[1\]"):
            StateSnapshot.parse(io.StringIO(json.dumps(data)))

    def test_missing_values_section(self):
        with pytest.raises(SnapshotFormatError, match="values"):
            StateSnapshot.parse(
                io.StringIO('{"format": "zoomie-snapshot-v1"}'))

    def test_non_object_sections_rejected(self):
        with pytest.raises(SnapshotFormatError):
            StateSnapshot.parse(io.StringIO('[1, 2, 3]'))
        with pytest.raises(SnapshotFormatError, match="cycle"):
            StateSnapshot.parse(io.StringIO(
                '{"format": "zoomie-snapshot-v1", "values": {}, '
                '"cycle": "ten"}'))

    def test_format_error_is_a_debug_error(self):
        # Callers catching the broad DebugError keep working.
        assert issubclass(SnapshotFormatError, DebugError)


class TestLabelValidation:
    @pytest.fixture()
    def debugger(self):
        project = ZoomieProject(
            design=make_cohort_soc(with_bug=False), device="TEST2",
            clocks={"clk": 100.0}, watch=["issued"])
        session = Zoomie(project).launch()
        session.debugger.pause()
        return session.debugger

    @pytest.mark.parametrize("label", ["two\nlines", "a=b", "bell\x07"])
    def test_bad_labels_rejected_before_capture(self, debugger, label):
        with pytest.raises(DebugError):
            debugger.snapshot(label)

    def test_good_label_accepted(self, debugger):
        assert debugger.snapshot("checkpoint 1 (pre-fix)").label \
            == "checkpoint 1 (pre-fix)"


class TestParseCaptureFrames:
    def test_partial_frames_yield_partial_registers(self):
        from repro.config import LLEntry, LogicLocationFile
        from repro.fpga import FrameAddress
        from repro.fpga.frames import BLOCK_MAIN, CAPTURE_MINOR, FRAME_WORDS

        frame_a = FrameAddress(BLOCK_MAIN, 0, 0, CAPTURE_MINOR)
        frame_b = FrameAddress(BLOCK_MAIN, 0, 1, CAPTURE_MINOR)
        ll = LogicLocationFile([
            LLEntry("reg_a", bit, 0, frame_a, bit) for bit in range(4)
        ] + [
            LLEntry("reg_b", bit, 0, frame_b, bit) for bit in range(4)
        ])
        words = [0] * FRAME_WORDS
        words[0] = 0b1010
        values = parse_capture_frames({(0, frame_a): words}, ll)
        # reg_a is complete; reg_b's frame was not read -> excluded.
        assert values == {"reg_a": 0b1010}


class TestFileReplay:
    def test_snapshot_survives_session_restart(self, tmp_path):
        """Save a snapshot to disk, relaunch the card from scratch, load
        the snapshot, and verify the replayed run matches the original —
        the paper's 'preserve emulation progress' workflow."""
        def launch():
            project = ZoomieProject(
                design=make_cohort_soc(with_bug=False), device="TEST2",
                clocks={"clk": 100.0}, watch=["issued"])
            session = Zoomie(project).launch()
            session.poke_input("en", 1)
            return session

        first = launch()
        first.debugger.run(30)
        first.debugger.pause()
        snap = first.debugger.snapshot("progress")
        path = tmp_path / "progress.json"
        with path.open("w") as stream:
            snap.dump(stream)
        first.debugger.step(10)
        expected = first.debugger.snapshot("golden")

        # A completely fresh card and session.
        second = launch()
        second.debugger.pause()
        with path.open() as stream:
            loaded = StateSnapshot.parse(stream)
        second.debugger.restore(loaded)
        second.debugger.step(10)
        replayed = second.debugger.snapshot("replayed")

        changed = {
            name for name in diff_snapshots(expected, replayed)
            if not name.startswith("zoomie_")
        }
        assert not changed


class TestMultiSlrRestore:
    """Regression: a restore must round-trip *every* state element of a
    design split across SLRs — including BRAM output latches (sync
    read-port data registers), which once escaped the logic-location
    file and silently diverged on the first post-restore cycle."""

    def launch(self):
        device = make_test_device()
        netlist = elaborate(make_cluster(cores=2, imem_depth=64))
        inst = instrument_netlist(netlist, watch=["retired_count"])
        flow = VivadoFlow(device)
        result = flow.compile_netlist(
            netlist, {d: 100.0 for d in netlist.clock_domains()},
            gate_signals=inst.gate_signals,
            constraints={"core1": whole_slr(device, 1)})
        fabric = FabricDevice(device)
        fabric.expect(result.database)
        fabric.jtag.run(result.bitstream)
        debugger = ZoomieDebugger(fabric, inst)
        debugger.record_input("en", 1)
        return result, fabric, debugger

    def test_restore_round_trips_across_slrs(self):
        result, fabric, debugger = self.launch()
        debugger.run(38)
        debugger.pause()
        saved = debugger.snapshot("mid-flight")

        # The snapshot must see the memory output latches.
        latches = result.database.netlist.sync_read_outputs()
        assert latches, "cluster design should have sync read ports"
        for name in latches:
            assert name in saved.values, f"latch {name} not captured"

        debugger.step(7)
        expected = debugger.engine.snapshot()

        debugger.restore(saved)
        after_restore = debugger.engine.snapshot()
        assert diff_snapshots(saved, after_restore) == {}
        assert saved.memories == after_restore.memories

        # The replay from the restored state must track the original.
        debugger.step(7)
        replayed = debugger.engine.snapshot()
        assert diff_snapshots(expected, replayed) == {}
        assert expected.memories == replayed.memories
        assert expected.content_key() == replayed.content_key()
