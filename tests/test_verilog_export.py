"""Tests for the Verilog exporter."""

import re

import pytest

from repro.designs import make_cohort_soc, make_counter, make_serv_core
from repro.rtl import ModuleBuilder, elaborate, mux
from repro.rtl.flatten import set_clock_map
from repro.rtl.verilog import export_design, export_module
from io import StringIO


def export_one(module) -> str:
    out = StringIO()
    export_module(module, out)
    return out.getvalue()


class TestBasicEmission:
    def test_counter_module_shape(self):
        text = export_one(make_counter(8))
        assert text.startswith("module counter (")
        assert "input wire clk_clk;" in text
        assert "input wire en;" in text
        assert "output wire [7:0] out;" in text
        assert "reg [7:0] count = 8'h0;" in text
        assert "always @(posedge clk_clk)" in text
        assert text.rstrip().endswith("endmodule")

    def test_balanced_module_and_endmodule(self):
        text = export_design(make_cohort_soc())
        assert text.count("module ") - text.count("endmodule") \
            == text.count("endmodule") * 0  # equal counts
        assert text.count("\nendmodule") == len(
            re.findall(r"^module ", text, re.M))

    def test_one_definition_per_unique_module(self):
        text = export_design(make_cohort_soc())
        assert len(re.findall(r"^module mmu", text, re.M)) == 1
        assert len(re.findall(r"^module lsu", text, re.M)) == 1

    def test_register_with_reset_and_enable(self):
        b = ModuleBuilder("m")
        rst = b.input("rst", 1)
        en = b.input("en", 1)
        r = b.reg("r", 4, init=5, reset=rst, reset_value=9, enable=en)
        b.next(r, r + 1)
        b.output_expr("o", r)
        text = export_one(b.build())
        assert "reg [3:0] r = 4'h5;" in text
        assert "if (en)" in text
        assert "if (rst) r <= 4'h9;" in text

    def test_memory_emission(self):
        b = ModuleBuilder("m")
        addr = b.input("addr", 3)
        memory = b.memory("mem", 8, 8, init={2: 0xAB})
        rd_async = b.read_port(memory, "rd_a", addr, sync=False)
        rd_sync = b.read_port(memory, "rd_s", addr, sync=True)
        b.write_port(memory, addr, b.input("wd", 8), b.input("we", 1))
        b.output_expr("oa", rd_async)
        b.output_expr("os", rd_sync)
        text = export_one(b.build())
        assert "reg [7:0] mem [0:7];" in text
        assert "mem[2] = 8'hab;" in text
        assert "assign rd_a = mem[addr];" in text
        assert "rd_s_q <= mem[addr];" in text
        assert "if (we) mem[addr] <= wd;" in text

    def test_hierarchical_names_sanitized(self):
        netlist = elaborate(make_cohort_soc())
        # Build a flat module-less export via a module wrapper: the
        # exporter takes modules; flat names with dots appear only in
        # instrumented netlists, which are not exported. Check instance
        # connection syntax instead.
        text = export_design(make_cohort_soc())
        assert "." not in [
            line for line in text.splitlines()
            if line.strip().startswith("wire")
        ][0].replace(".", "", 0) or True  # wires have no dots
        assert "mmu mmu (" in text or "mmu_buggy mmu (" in text


class TestExpressions:
    def expr_text(self, build):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output_expr("o", build(b, a, c))
        return export_one(b.build())

    def test_arith_and_compare(self):
        text = self.expr_text(lambda b, a, c: (a + c) ^ c)
        assert "((a + c) ^ c)" in text

    def test_signed_compare_uses_dollar_signed(self):
        text = self.expr_text(
            lambda b, a, c: mux(a.slt(c), a, c))
        assert "$signed(a) < $signed(c)" in text

    def test_mux_ternary(self):
        b = ModuleBuilder("m")
        s = b.input("s", 1)
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output_expr("o", mux(s, a, c))
        text = export_one(b.build())
        assert "(s ? a : c)" in text

    def test_computed_slice_hoisted_to_wire(self):
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output_expr("o", (a + c)[7:4])
        text = export_one(b.build())
        assert "wire [7:0] _zv_t0 = (a + c);" in text
        assert "_zv_t0[7:4]" in text

    def test_concat_and_replicate(self):
        from repro.rtl.expr import Repl, cat
        b = ModuleBuilder("m")
        a = b.input("a", 4)
        b.output_expr("o", cat(a, Repl(a[0], 4)))
        text = export_one(b.build())
        assert "{a, {4{a[0]}}}" in text

    def test_reductions(self):
        from repro.rtl.expr import reduce_and, reduce_xor
        b = ModuleBuilder("m")
        a = b.input("a", 8)
        b.output_expr("o", reduce_and(a) ^ reduce_xor(a))
        text = export_one(b.build())
        assert "(&a)" in text
        assert "(^a)" in text


class TestClockDomains:
    def test_clock_map_propagates_to_instance_connection(self):
        counter = make_counter(8)
        b = ModuleBuilder("top")
        en = b.input("en", 1)
        refs = b.instantiate(counter, "mut", inputs={"en": en})
        b.output_expr("o", refs["out"])
        top = b.build()
        set_clock_map(top.instances["mut"], {"clk": "mut_clk"})
        text = export_design(top)
        assert "input wire clk_mut_clk;" in export_one(top) \
            or ".clk_clk(clk_mut_clk)" in text

    def test_multi_domain_module_gets_both_clocks(self):
        b = ModuleBuilder("m")
        r1 = b.reg("r1", 1, clock="a")
        r2 = b.reg("r2", 1, clock="b")
        b.output_expr("o", r1 ^ r2)
        text = export_one(b.build())
        assert "input wire clk_a;" in text
        assert "input wire clk_b;" in text
        assert "always @(posedge clk_a)" in text
        assert "always @(posedge clk_b)" in text


class TestRealDesignsExport:
    @pytest.mark.parametrize("factory", [
        make_counter, make_serv_core, make_cohort_soc])
    def test_exports_cleanly(self, factory):
        text = export_design(factory())
        assert text.count("module ") >= 1
        # Every declared identifier is sane Verilog (no dots/spaces).
        for match in re.findall(r"(?:wire|reg)\s+(?:\[[^\]]+\]\s*)?"
                                r"([A-Za-z_][A-Za-z_0-9$]*)", text):
            assert "." not in match
