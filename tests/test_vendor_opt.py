"""Tests for the netlist optimizer: folding, propagation, DCE, and —
critically — semantics preservation (bounded equivalence + randomized
lockstep)."""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs import make_cohort_soc, make_counter, make_pipeline
from repro.rtl import ModuleBuilder, Simulator, elaborate, mux
from repro.rtl.expr import BinaryOp, Const, Mux, Ref, Slice
from repro.vendor.opt import OptReport, fold_expr, optimize_netlist


def fold(expr):
    return fold_expr(expr, OptReport())


class TestFolding:
    def test_constant_subtree_evaluated(self):
        expr = BinaryOp("+", Const(3, 8), Const(4, 8))
        folded = fold(expr)
        assert isinstance(folded, Const)
        assert folded.value == 7

    def test_add_zero_identity(self):
        expr = BinaryOp("+", Ref("a", 8), Const(0, 8))
        assert fold(expr) is expr.a

    def test_and_zero_collapses(self):
        folded = fold(BinaryOp("&", Ref("a", 8), Const(0, 8)))
        assert isinstance(folded, Const)
        assert folded.value == 0

    def test_and_allones_identity(self):
        expr = BinaryOp("&", Ref("a", 8), Const(0xFF, 8))
        assert fold(expr) is expr.a

    def test_logical_shortcuts(self):
        a = Ref("a", 1)
        assert fold(BinaryOp("&&", a, Const(1, 1))) is a
        folded = fold(BinaryOp("&&", a, Const(0, 1)))
        assert isinstance(folded, Const) and folded.value == 0
        assert fold(BinaryOp("||", Const(0, 1), a)) is a

    def test_mux_constant_select(self):
        a, b = Ref("a", 8), Ref("b", 8)
        assert fold(Mux(Const(1, 1), a, b)) is a
        assert fold(Mux(Const(0, 1), a, b)) is b

    def test_nested_slices_flatten(self):
        expr = Slice(Slice(Ref("a", 16), 11, 4), 5, 2)
        folded = fold(expr)
        assert isinstance(folded, Slice)
        assert isinstance(folded.a, Ref)
        assert (folded.high, folded.low) == (9, 6)

    def test_full_width_slice_removed(self):
        expr = Slice(Ref("a", 8), 7, 0)
        assert fold(expr) is expr.a

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_folding_preserves_value(self, a, b):
        expr = BinaryOp(
            "^",
            BinaryOp("+", Ref("a", 8), Const(0, 8)),
            Mux(Const(1, 1), Ref("b", 8), Const(99, 8)))
        env = {"a": a, "b": b}
        assert fold(expr).eval(env) == expr.eval(env)


def make_wasteful_design():
    """A design with dead logic and constant-driven wires."""
    b = ModuleBuilder("wasteful")
    en = b.input("en", 1)
    count = b.reg("count", 8)
    b.next(count, mux(en, count + 1, count))
    # Constant wire feeding live logic.
    k = b.wire_expr("k", b.const(3, 8))
    b.output_expr("out", count + b.sig("k"))
    # Dead subtree: registers and wires nothing observes.
    dead1 = b.reg("dead1", 16)
    b.next(dead1, dead1 + 1)
    b.wire_expr("dead_wire", dead1[7:0] ^ b.const(0x5A, 8))
    return b.build()


class TestNetlistPasses:
    def test_constant_propagation_and_dce(self):
        netlist = elaborate(make_wasteful_design())
        report = optimize_netlist(netlist)
        assert report.propagated_constants >= 1
        assert "dead1" not in netlist.registers
        assert "dead_wire" not in netlist.assigns
        assert report.removed_registers >= 1

    def test_optimized_design_still_simulates_identically(self):
        original = elaborate(make_wasteful_design())
        optimized = elaborate(make_wasteful_design())
        optimize_netlist(optimized)
        sim_a = Simulator(original)
        sim_b = Simulator(optimized)
        for cycle in range(20):
            enable = cycle % 3 != 0
            sim_a.poke("en", int(enable))
            sim_b.poke("en", int(enable))
            assert sim_a.peek("out") == sim_b.peek("out")
            sim_a.step(1)
            sim_b.step(1)

    def test_outputs_never_removed(self):
        netlist = elaborate(make_counter(8))
        optimize_netlist(netlist)
        assert "out" in netlist.assigns or "out" in netlist.signals

    def test_memories_with_live_reads_kept(self):
        b = ModuleBuilder("m")
        addr = b.input("addr", 2)
        memory = b.memory("mem", 8, 4, init={1: 7})
        rd = b.read_port(memory, "rd", addr)
        b.write_port(memory, addr, b.input("wd", 8), b.input("we", 1))
        b.output_expr("o", rd)
        netlist = elaborate(b.build())
        optimize_netlist(netlist)
        assert "mem" in netlist.memories

    def test_bounded_equivalence_after_optimization(self):
        from repro.formal.bmc import check_equivalence
        original = elaborate(make_counter(4))
        optimized = elaborate(make_counter(4))
        optimize_netlist(optimized)
        cex = check_equivalence(
            original, optimized, alphabet={"en": [0, 1]},
            outputs=["out"], depth=5)
        assert cex is None

    def test_cohort_optimizes_and_matches(self):
        original = elaborate(make_cohort_soc(with_bug=False))
        optimized = elaborate(make_cohort_soc(with_bug=False))
        report = optimize_netlist(optimized)
        sim_a = Simulator(original)
        sim_b = Simulator(optimized)
        sim_a.poke("en", 1)
        sim_b.poke("en", 1)
        for _ in range(100):
            sim_a.step(1)
            sim_b.step(1)
        for out in ("acc", "results", "issued", "completed"):
            assert sim_a.peek(out) == sim_b.peek(out)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.booleans(),
                          st.integers(0, 65535)),
                min_size=1, max_size=40))
def test_pipeline_equivalence_random_lockstep(stimulus):
    """Optimizer preserves the pipeline's observable behaviour under
    arbitrary stimulus."""
    original = elaborate(make_pipeline(depth=3))
    optimized = elaborate(make_pipeline(depth=3))
    optimize_netlist(optimized)
    sim_a = Simulator(original)
    sim_b = Simulator(optimized)
    for valid, ready, data in stimulus:
        for sim in (sim_a, sim_b):
            sim.poke("in_valid", int(valid))
            sim.poke("out_ready", int(ready))
            sim.poke("in_data", data)
        for out in ("out_valid", "out_data", "in_ready"):
            assert sim_a.peek(out) == sim_b.peek(out)
        sim_a.step(1)
        sim_b.step(1)
