"""Setuptools entry point.

A ``setup.py`` (with no ``[build-system]`` table in pyproject.toml) keeps
``pip install -e .`` working on offline machines that lack the ``wheel``
package: pip falls back to the legacy ``setup.py develop`` path, which needs
nothing beyond setuptools itself.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Zoomie: A Software-like Debugging Tool for "
        "FPGAs' (ASPLOS 2024)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
)
