#!/usr/bin/env python3
"""The gdb-like command-line debugger.

Runs a scripted session against the buggy Cohort SoC by default; pass
``--repl`` to drive it yourself:

    python examples/interactive_debug.py --repl

Commands: break/run/step/print/state/set/snapshot/restore/diff/... —
type 'help' inside the repl.
"""

import sys

from repro import Zoomie, ZoomieProject
from repro.debug.cli import ZoomieCli
from repro.designs import make_cohort_soc

SCRIPT = [
    "watchlist",
    "break issued=2",
    "run",
    "print lsu.issued_count",
    "print lsu.store_pending",
    "state mmu",
    "snapshot stuck",
    "step 4",
    "diff stuck",
    "set lsu.store_pending 0",
    "set mmu.responding 0",
    "set mmu.busy 0",
    "continue",
    "run 50",
    "pause",
    "print datapath.results_count",
    "info",
]


def main() -> None:
    project = ZoomieProject(
        design=make_cohort_soc(with_bug=True), device="TEST2",
        clocks={"clk": 100.0}, watch=["issued", "completed", "results"])
    session = Zoomie(project).launch()
    session.poke_input("en", 1)
    cli = ZoomieCli(session.debugger)

    if "--repl" in sys.argv:
        cli.repl()
        return

    for line in SCRIPT:
        print(f"(zoomie) {line}")
        output = cli.execute(line)
        if output:
            print(output)


if __name__ == "__main__":
    main()
