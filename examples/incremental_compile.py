#!/usr/bin/env python3
"""VTI incremental compilation on the 5400-core SoC (paper Section 5.2).

Reproduces the Figure 7 experiment: compile the CoreScore-style manycore
once, declare one SERV core as the iterated partition, then run five
"edit one core, recompile" turns through both the vendor incremental
mode and VTI, printing the compile-time series.

All times are the calibrated cost model's simulated wall-clock (the real
computation finishes in seconds); ratios, not absolute values, are the
reproduction target.

Run:  python examples/incremental_compile.py
"""

from repro.designs import make_manycore_soc
from repro.fpga import make_u200
from repro.vendor import VivadoFlow
from repro.vendor.cost import format_duration
from repro.vendor.reports import format_utilization_table
from repro.vti import PartitionSpec, VtiFlow


def main() -> None:
    soc = make_manycore_soc(5400)
    device = make_u200()

    print("=== initial compiles ===")
    vendor = VivadoFlow(device)
    vendor_initial = vendor.compile(soc, clocks={"clk": 50.0})
    print(format_utilization_table(vendor_initial))
    print(f"\nvendor initial: {format_duration(vendor_initial.total_seconds)}")

    vti = VtiFlow(device)
    vti_initial = vti.compile_initial(
        soc, {"clk": 50.0}, [PartitionSpec("tile0.core0")])
    print(f"VTI initial:    {format_duration(vti_initial.total_seconds)} "
          f"(region {vti_initial.floorplan.regions['tile0.core0']})")

    print("\n=== five incremental turns (Figure 7) ===")
    print(f"{'run':>4s} {'vendor incremental':>20s} {'Zoomie (VTI)':>14s} "
          f"{'speedup':>8s}")
    for run in range(1, 6):
        vendor_incr = vendor.compile_incremental(
            soc, {"clk": 50.0}, previous=vendor_initial)
        vti_incr = vti.compile_incremental(vti_initial, "tile0.core0")
        speedup = vti_initial.total_seconds / vti_incr.total_seconds
        print(f"#{run:3d} {format_duration(vendor_incr.total_seconds):>20s} "
              f"{format_duration(vti_incr.total_seconds):>14s} "
              f"{speedup:>7.1f}x")

    print("\n=== where VTI's incremental time goes ===")
    last = vti.compile_incremental(vti_initial, "tile0.core0")
    for stage, seconds in last.seconds.items():
        if stage != "total":
            print(f"  {stage:7s} {format_duration(seconds)}")
    print("the tiny partition recompiles in seconds; linking the "
          "million-cell\nstatic checkpoint and emitting the partial "
          "bitstream set the floor.")


if __name__ == "__main__":
    main()
