#!/usr/bin/env python3
"""Case study 2 (paper Section 5.6): software bug or hardware bug?

An Ariane-style core hangs. Deeply nested exceptions are hard to tell
apart from single-level ones, so the paper sets a hardware breakpoint on

    mcause[63] == 0 && MIE == 0 && MPIE == 0

— the state reached only after *two* levels of exception with another
one incoming. When it fires, the registers show pc == mepc == mtvec with
the exception flag high: the CPU is legally looping on a trap handler
whose base address the *software* set to an unmapped region.

Run:  python examples/nested_exceptions.py
"""

from repro import Zoomie, ZoomieProject
from repro.designs import make_ariane_core
from repro.designs.ariane import hang_program, healthy_program


def inspect(dbg) -> dict:
    state = dbg.read_state()
    return {
        "pc": state["pc"],
        "mepc": state["mepc"],
        "mtvec": state["mtvec"],
        "mcause": state["mcause"],
        "MIE": state["MIE"],
        "MPIE": state["MPIE"],
        "exception": state["exception"],
        "instret": state["instret"],
    }


def run_scenario(program, label: str) -> None:
    print(f"\n=== {label} ===")
    project = ZoomieProject(
        design=make_ariane_core(imem_init=program),
        device="TEST2",
        clocks={"clk": 100.0},
        # The case study's breakpoint inputs: trigger slots on the CSR
        # bits that distinguish nesting depth.
        watch=["mcause_out", "pc_out", "exception_out"],
    )
    session = Zoomie(project).launch()
    dbg = session.debugger
    session.poke_input("resetn", 1)

    # The paper's condition is mcause[63]==0 && MIE==0 && MPIE==0; our
    # trigger slots compare whole signals, so we arm on the exceptional
    # path and check the status bits after pausing (the same Algorithm 1
    # composition, driven from the two watched CSRs).
    dbg.set_value_breakpoint({"exception_out": 1}, mode="and")

    deep_nest_seen = False
    for attempt in range(6):
        dbg.run(max_cycles=300)
        if not dbg.is_paused():
            break
        state = inspect(dbg)
        nested = (state["mcause"] >> 63) == 0 \
            and state["MIE"] == 0 and state["MPIE"] == 0
        print(f"exception #{attempt + 1}: pc={state['pc']:#x} "
              f"mepc={state['mepc']:#x} mcause={state['mcause']} "
              f"MIE={state['MIE']} MPIE={state['MPIE']} "
              f"{'<- NESTED (>= 2 levels)' if nested else ''}")
        if nested:
            deep_nest_seen = True
            print("\n--- the paper's observation, verbatim ---")
            print(f"pc ({state['pc']:#x}) == mepc ({state['mepc']:#x}) "
                  f"with the exception flag set ({state['exception']}):")
            print(f"the core re-faults on mtvec={state['mtvec']:#x} "
                  f"every cycle.")
            print("mtvec points outside instruction memory: the trap")
            print("vector was misconfigured by SOFTWARE; the hardware")
            print("is executing legal nested-exception behaviour.")
            break
        # Move off the trigger cycle, re-arm, and continue.
        dbg.step(1)
        dbg.set_value_breakpoint({"exception_out": 1}, mode="and")
        dbg.resume(clear_triggers=False)

    if not deep_nest_seen:
        state = inspect(dbg) if dbg.is_paused() else None
        print(f"no nested exception reached; instret = "
              f"{dbg.read('instret') if dbg.is_paused() else 'n/a'} — "
              f"the software's handler returns cleanly.")


def main() -> None:
    run_scenario(hang_program(),
                 "buggy software: mtvec set to an unmapped address")
    run_scenario(healthy_program(),
                 "correct software: handler at a mapped address")


if __name__ == "__main__":
    main()
