#!/usr/bin/env python3
"""Case study 1 (paper Section 5.5): localizing the Cohort MMU bug.

The SoC's accelerator "returns part of the result before hanging
indefinitely". With traditional tools this took four ILA recompiles (2+
hours); with Zoomie the same localization is one interactive session:
pause the hung design, read everything back, and follow the evidence —
datapath fine -> LSU starved -> bus fine -> MMU never answers the store
channel -> the ready/valid handshake in the MMU drops the requester id.

Run:  python examples/debug_cohort_soc.py
"""

from repro import Zoomie, ZoomieProject
from repro.designs import make_cohort_soc
from repro.designs.cohort import ID_STORE


def main() -> None:
    project = ZoomieProject(
        design=make_cohort_soc(with_bug=True),
        device="TEST2",
        clocks={"clk": 100.0},
        watch=["results", "issued"],
    )
    session = Zoomie(project).launch()
    dbg = session.debugger
    session.poke_input("en", 1)

    # Reproduce the failure: run "software" and observe the hang.
    dbg.run(max_cycles=300)
    print(f"design ran {dbg.cycles()} cycles without pausing — "
          f"it looks hung. Pausing for inspection.")
    dbg.pause()
    state = dbg.read_state()

    print("\n--- step 1: is the datapath computing? ---")
    print(f"datapath.results_count = {state['datapath.results_count']}")
    print(f"datapath.acc           = {state['datapath.acc']:#x}")
    print("-> it produced one result, then stopped receiving work.")

    print("\n--- step 2: is the LSU issuing? ---")
    print(f"lsu.issued_count    = {state['lsu.issued_count']}")
    print(f"lsu.completed_count = {state['lsu.completed_count']}")
    print(f"lsu.load_pending    = {state['lsu.load_pending']}")
    print(f"lsu.store_pending   = {state['lsu.store_pending']}")
    print("-> the store channel has a translation outstanding forever.")

    print("\n--- step 3: is the system bus responsive? ---")
    print(f"bus.reqs_count = {state['bus.reqs_count']}")
    print("-> the bus answers everything it is asked; not the culprit.")

    print("\n--- step 4: what is the MMU doing? ---")
    print(f"mmu.tlb_sel_r  = {state['mmu.tlb_sel_r']} "
          f"(the TLB *did* serve requester id {ID_STORE} last)")
    print(f"mmu.responding = {state['mmu.responding']}")

    # Step the design a few cycles and watch the MMU's response id: it
    # should carry the stored requester id, but the bug hardwires it.
    for _ in range(3):
        dbg.step(2)
        resp = dbg.read("mmu.responding")
        sel = dbg.read("mmu.tlb_sel_r")
        print(f"  stepped: responding={resp} tlb_sel_r={sel}")

    print("\n--- diagnosis ---")
    print("The MMU latches tlb_sel_r = 1 (store) but its response is")
    print("always tagged for requester 0: the ack term dropped the")
    print("'id == i' conjunct — the exact bug of the paper's running")
    print("example. The store queue never sees its answer and the")
    print("pipeline starves.")

    # Verify the fix without recompiling: hide the bug by forcing the
    # stuck store response to complete (Section 3.3's "deliberately hide
    # known bugs to preserve emulation progress").
    print("\n--- step 5: hide the bug in place and resume ---")
    # Complete the wedged store transaction by hand: clear the store
    # queue's pending flag and return the MMU to idle.
    dbg.write_state({
        "lsu.store_pending": 0,
        "mmu.responding": 0,
        "mmu.busy": 0,
    })
    dbg.resume()
    dbg.run(max_cycles=60)
    dbg.pause()
    state2 = dbg.read_state()
    print(f"results now {state2['datapath.results_count']} "
          f"(was {state['datapath.results_count']}) — progress resumed "
          f"until the next store hits the same bug.")
    print(f"\nmodeled JTAG time spent: {dbg.session_seconds:.2f} s")


if __name__ == "__main__":
    main()
