#!/usr/bin/env python3
"""Case study 3 (paper Section 5.7): debugging a 250 MHz network stack.

Integrates Zoomie with the Beehive-style RX pipeline, confirms timing
still closes at 250 MHz with the instrumentation attached, then uses an
AXI transaction breakpoint to catch the first dropped frame in the act —
the class of delayed-manifestation bug that makes ILA iteration and
record/replay painful (Section 5.7's discussion).

Run:  python examples/network_stack_debug.py
"""

from repro import Zoomie, ZoomieProject
from repro.designs import make_beehive_stack
from repro.vendor import VivadoFlow
from repro.fpga import make_u200


def check_timing_with_zoomie() -> None:
    """The paper's integration claim: no timing violations at 250 MHz."""
    flow = VivadoFlow(make_u200())
    result = flow.compile(make_beehive_stack(), clocks={"clk": 250.0})
    print(f"Beehive @250 MHz on U200: timing "
          f"{'MET' if result.timing.met else 'FAILED'} "
          f"(Fmax {result.timing.fmax_mhz['clk']:.0f} MHz)")
    top = result.timing.top_paths(3)
    print("critical paths: " + ", ".join(str(p) for p in top))


def send_frame(session, frame_id: int, beats: int = 4,
               err_beat: int | None = None) -> None:
    """Drive one frame into the PHY side (which cannot backpressure)."""
    sim = session.fabric.sim
    for beat in range(beats):
        sim.poke("phy_valid", 1)
        sim.poke("phy_data", (frame_id << 8) | beat)
        sim.poke("phy_last", int(beat == beats - 1))
        sim.poke("phy_err", int(err_beat == beat))
        session.debugger.run(max_cycles=1)
        if session.debugger.is_paused():
            return
    sim.poke("phy_valid", 0)
    session.debugger.run(max_cycles=1)


def main() -> None:
    check_timing_with_zoomie()

    project = ZoomieProject(
        design=make_beehive_stack(),
        device="TEST2",
        clocks={"clk": 250.0},
        watch=["drops", "frames", "errors"],
    )
    session = Zoomie(project).launch()
    dbg = session.debugger
    session.poke_input("app_ready", 1)

    # Healthy traffic first.
    for frame in range(4):
        send_frame(session, frame)
    dbg.pause()
    state = dbg.read_state()
    print(f"\nafter 4 frames: delivered="
          f"{state['app.frames_delivered']}, "
          f"dropped={state['dropq.dropped_frames']}")
    dbg.resume()

    # Breakpoint on the *first* drop: the erroneous behaviour surfaces
    # long after its cause, so we arm the trigger and then stress the
    # stack with a stalled application.
    dbg.set_value_breakpoint({"drops": 1}, mode="and")
    session.poke_input("app_ready", 0)  # the app stops consuming
    frame = 100
    while not dbg.is_paused() and frame < 140:
        send_frame(session, frame)
        frame += 1

    assert dbg.is_paused(), "expected the drop breakpoint to fire"
    state = dbg.read_state()
    print(f"\npaused at cycle {dbg.cycles()}: the drop queue just shed "
          f"its first frame")
    print(f"  dropq.count (fill)    = {state['dropq.count']}")
    print(f"  dropq.dropping        = {state['dropq.dropping']}")
    print(f"  parser.frames_seen    = {state['parser.frames_seen']}")
    print(f"  app.frames_delivered  = {state['app.frames_delivered']}")
    print("the queue is full because the application stalled — with the")
    print("design frozen at the exact cycle, the back-pressure chain is")
    print("directly visible instead of being reconstructed from a trace.")

    # Everything after the drop queue can be stepped losslessly
    # (Section 6.2): the queue owns the only lossy boundary.
    dbg.step(5)
    print(f"\nstepped 5 cycles; queue fill now {dbg.read('dropq.count')}")
    print(f"modeled JTAG time: {dbg.session_seconds:.2f} s")


if __name__ == "__main__":
    main()
