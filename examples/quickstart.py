#!/usr/bin/env python3
"""Quickstart: a software-like debugging session in ~40 lines.

Builds a small accelerator-ish design, launches it on the emulated
multi-SLR FPGA with Zoomie inserted, and walks the debugger workflow:
breakpoint -> pause -> inspect -> force -> single-step -> resume.

Run:  python examples/quickstart.py
"""

from repro import Zoomie, ZoomieProject
from repro.designs import make_cohort_soc


def main() -> None:
    # 1. A design. make_cohort_soc() is a small SoC with an accelerator
    #    datapath, a load-store unit, an MMU, and a system bus.
    design = make_cohort_soc(with_bug=False)

    # 2. A project: which card, which clocks, which signals get
    #    value-breakpoint trigger slots.
    project = ZoomieProject(
        design=design,
        device="TEST2",
        clocks={"clk": 100.0},
        watch=["issued", "completed"],
    )

    # 3. Launch: instrument, compile, program the emulated card, attach.
    session = Zoomie(project).launch()
    dbg = session.debugger
    session.poke_input("en", 1)

    # 4. A value breakpoint: pause the FPGA when 5 requests were issued.
    dbg.set_value_breakpoint({"issued": 5})
    dbg.run()
    print(f"paused at cycle {dbg.cycles()} "
          f"(issued={dbg.read('lsu.issued_count')})")

    # 5. Full visibility: read back *every* register, no probes chosen
    #    ahead of time, no recompilation.
    state = dbg.read_state()
    print(f"readback returned {len(state)} registers in "
          f"{state.acquisition_seconds * 1000:.0f} ms (modeled)")
    print(f"  datapath.acc        = {state['datapath.acc']:#x}")
    print(f"  mmu.tlb_sel_r       = {state['mmu.tlb_sel_r']}")
    print(f"  lsu.completed_count = {state['lsu.completed_count']}")

    # 6. Manipulate state in place (Section 3.3): poison the accumulator
    #    and watch the design continue from the forced value.
    dbg.force("datapath.acc", 0xABCD)

    # 7. Single-step a few cycles (the Debug Controller's 64-bit cycle
    #    counter), then resume free-running.
    dbg.step(3)
    print(f"after 3 steps: acc = {dbg.read('datapath.acc'):#x}")

    snapshot = dbg.snapshot("before-resume")
    dbg.resume()
    dbg.run(max_cycles=50)
    dbg.pause()
    print(f"ran on; acc now {dbg.read('datapath.acc'):#x}")

    # 8. Replay: restore the snapshot and the design re-executes
    #    identically from that point.
    dbg.restore(snapshot)
    print(f"restored; acc back to {dbg.read('datapath.acc'):#x}")


if __name__ == "__main__":
    main()
