"""Exception hierarchy for the Zoomie reproduction.

Every package-specific error derives from :class:`ReproError` so callers can
catch the whole family with one clause. Sub-families mirror the package
structure: RTL construction, elaboration, simulation, SVA synthesis, the
vendor flow, configuration/bitstream handling, and debugging.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# RTL construction and elaboration
# --------------------------------------------------------------------------

class RtlError(ReproError):
    """Base class for RTL IR errors."""


class WidthError(RtlError):
    """Operand widths are inconsistent or out of range."""


class NameConflictError(RtlError):
    """Two design objects share a name within one scope."""


class UnknownSignalError(RtlError, KeyError):
    """A referenced signal does not exist in the module or netlist."""


class ElaborationError(RtlError):
    """Hierarchy flattening failed (missing module, port mismatch, ...)."""


class CombinationalLoopError(RtlError):
    """The combinational logic contains a cycle."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


# --------------------------------------------------------------------------
# SVA
# --------------------------------------------------------------------------

class SvaError(ReproError):
    """Base class for SVA handling errors."""


class SvaSyntaxError(SvaError):
    """The assertion text could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class UnsynthesizableError(SvaError):
    """The assertion uses a feature outside the synthesizable subset.

    Mirrors the paper's Table 4: local variables, asynchronous resets,
    ``first_match``, simulation-only system functions such as
    ``$isunknown``, and unbounded ranges are rejected with this error.
    """

    def __init__(self, message: str, feature: str = ""):
        super().__init__(message)
        self.feature = feature


# --------------------------------------------------------------------------
# FPGA device / bitstream / configuration
# --------------------------------------------------------------------------

class DeviceError(ReproError):
    """The device model was used inconsistently."""


class BitstreamError(ReproError):
    """Malformed bitstream or packet stream."""


class ConfigError(ReproError):
    """The configuration microcontroller rejected an operation."""


class JtagError(ReproError):
    """JTAG ring misuse (e.g. addressing a non-existent SLR)."""


class TransportError(JtagError):
    """A verified JTAG transaction failed.

    Raised per attempt for channel faults detected before execution
    (``kind="command"`` for framing failures such as dropped BOUT hop
    pulses, ``kind="stuck"`` for a non-responding secondary controller)
    and, with ``attempts`` set, when the retry policy is exhausted.
    ``seconds`` carries the modeled channel time lost to the failure.
    """

    def __init__(self, message: str, kind: str = "transport",
                 attempts: int = 0, seconds: float = 0.0):
        super().__init__(message)
        self.kind = kind
        self.attempts = attempts
        self.seconds = seconds


class CorruptReadbackError(TransportError):
    """Read words failed verification against the golden channel.

    The per-batch CRC32 (or word count, for truncated FDRO bursts) did
    not match what the device-side controller actually sent; the batch
    must be re-issued, never consumed.
    """

    def __init__(self, message: str, kind: str = "corrupt",
                 attempts: int = 0, seconds: float = 0.0):
        super().__init__(message, kind=kind, attempts=attempts,
                         seconds=seconds)


# --------------------------------------------------------------------------
# Vendor flow / VTI
# --------------------------------------------------------------------------

class FlowError(ReproError):
    """A toolchain flow step failed."""


class PlacementError(FlowError):
    """The placer could not fit the design into the target region."""


class RoutingError(FlowError):
    """The router could not complete all nets."""


class TimingError(FlowError):
    """Static timing analysis failed to close timing."""


class PartitionError(FlowError):
    """Invalid VTI partition specification."""


# --------------------------------------------------------------------------
# Debugging
# --------------------------------------------------------------------------

class DebugError(ReproError):
    """Base class for debugger errors."""


class NotPausedError(DebugError):
    """State access was attempted while the design is running."""


class BreakpointError(DebugError):
    """Invalid breakpoint specification."""


class FormalError(ReproError):
    """A bounded model check found a counterexample or was misconfigured."""

    def __init__(self, message: str, trace=None):
        super().__init__(message)
        self.trace = trace
