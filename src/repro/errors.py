"""Exception hierarchy for the Zoomie reproduction.

Every package-specific error derives from :class:`ReproError` so callers can
catch the whole family with one clause. Sub-families mirror the package
structure: RTL construction, elaboration, simulation, SVA synthesis, the
vendor flow, configuration/bitstream handling, and debugging.

Every error carries a ``retryable`` classification: whether re-issuing
the *same* operation against the *same* resource can plausibly succeed
(transient channel faults, torn disk writes) or cannot (corrupt durable
records, exhausted retry budgets, dead sessions). Supervisors and the
chaos harness branch on it via :func:`is_retryable` instead of matching
exception types ad hoc.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library.

    ``retryable`` is a conservative default of False; subclasses (or
    instances) that model transient faults override it.
    """

    #: Whether re-issuing the failed operation can plausibly succeed.
    retryable: bool = False


def is_retryable(error: BaseException) -> bool:
    """Whether ``error`` models a transient fault worth re-attempting.

    Errors outside this library's taxonomy (including raw ``OSError``)
    classify as non-retryable: without a model of the fault there is no
    basis to expect a retry to behave differently.
    """
    return bool(getattr(error, "retryable", False))


# --------------------------------------------------------------------------
# RTL construction and elaboration
# --------------------------------------------------------------------------

class RtlError(ReproError):
    """Base class for RTL IR errors."""


class WidthError(RtlError):
    """Operand widths are inconsistent or out of range."""


class NameConflictError(RtlError):
    """Two design objects share a name within one scope."""


class UnknownSignalError(RtlError, KeyError):
    """A referenced signal does not exist in the module or netlist."""


class ElaborationError(RtlError):
    """Hierarchy flattening failed (missing module, port mismatch, ...)."""


class CombinationalLoopError(RtlError):
    """The combinational logic contains a cycle."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class MutationError(RtlError):
    """The mutation engine could not produce a valid mutant.

    Raised when an operator has no applicable sites in a design, when a
    requested corpus size exceeds the valid (compiling, fingerprint-
    distinct) mutants the site pool can yield, or when a site index no
    longer resolves against the netlist it was enumerated from.
    """


class CampaignError(ReproError):
    """A debug campaign could not complete (unknown design, a mutant
    session that kept crashing past its recovery budget, ...)."""


# --------------------------------------------------------------------------
# SVA
# --------------------------------------------------------------------------

class SvaError(ReproError):
    """Base class for SVA handling errors."""


class SvaSyntaxError(SvaError):
    """The assertion text could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class UnsynthesizableError(SvaError):
    """The assertion uses a feature outside the synthesizable subset.

    Mirrors the paper's Table 4: local variables, asynchronous resets,
    ``first_match``, simulation-only system functions such as
    ``$isunknown``, and unbounded ranges are rejected with this error.
    """

    def __init__(self, message: str, feature: str = ""):
        super().__init__(message)
        self.feature = feature


# --------------------------------------------------------------------------
# FPGA device / bitstream / configuration
# --------------------------------------------------------------------------

class DeviceError(ReproError):
    """The device model was used inconsistently."""


class BitstreamError(ReproError):
    """Malformed bitstream or packet stream."""


class ConfigError(ReproError):
    """The configuration microcontroller rejected an operation."""


class JtagError(ReproError):
    """JTAG ring misuse (e.g. addressing a non-existent SLR)."""


class TransportError(JtagError):
    """A verified JTAG transaction failed.

    Raised per attempt for channel faults detected before execution
    (``kind="command"`` for framing failures such as dropped BOUT hop
    pulses, ``kind="stuck"`` for a non-responding secondary controller)
    and, with ``attempts`` set, when the retry policy is exhausted.
    ``seconds`` carries the modeled channel time lost to the failure.
    """

    def __init__(self, message: str, kind: str = "transport",
                 attempts: int = 0, seconds: float = 0.0):
        super().__init__(message)
        self.kind = kind
        self.attempts = attempts
        self.seconds = seconds
        # Per-attempt channel faults are transient; an *exhausted*
        # transaction (attempts set) or a spent deadline is final — the
        # bounded retry already happened one layer down.
        self.retryable = attempts == 0 and kind != "deadline"


class CorruptReadbackError(TransportError):
    """Read words failed verification against the golden channel.

    The per-batch CRC32 (or word count, for truncated FDRO bursts) did
    not match what the device-side controller actually sent; the batch
    must be re-issued, never consumed.
    """

    def __init__(self, message: str, kind: str = "corrupt",
                 attempts: int = 0, seconds: float = 0.0):
        super().__init__(message, kind=kind, attempts=attempts,
                         seconds=seconds)


# --------------------------------------------------------------------------
# Vendor flow / VTI
# --------------------------------------------------------------------------

class FlowError(ReproError):
    """A toolchain flow step failed."""


class PlacementError(FlowError):
    """The placer could not fit the design into the target region."""


class RoutingError(FlowError):
    """The router could not complete all nets."""


class TimingError(FlowError):
    """Static timing analysis failed to close timing."""


class PartitionError(FlowError):
    """Invalid VTI partition specification."""


# --------------------------------------------------------------------------
# Debugging
# --------------------------------------------------------------------------

class DebugError(ReproError):
    """Base class for debugger errors."""


class NotPausedError(DebugError):
    """State access was attempted while the design is running."""


class BreakpointError(DebugError):
    """Invalid breakpoint specification."""


class SnapshotFormatError(DebugError):
    """A persisted snapshot could not be parsed.

    Raised (instead of bare ``ValueError``/``KeyError``/``IndexError``)
    for truncated dumps, malformed JSON, wrong formats, bad hex values,
    and duplicate signal names. ``line`` carries the 1-based line of the
    first problem when the decoder can localize it, else ``0``.
    """

    def __init__(self, message: str, line: int = 0):
        super().__init__(message)
        self.line = line


class SnapshotIntegrityError(DebugError):
    """A stored snapshot failed integrity verification on load.

    Truncation (byte count below the header's), bit-rot (CRC32
    mismatch), or a content hash that no longer matches the key it is
    filed under. ``kind`` is ``"truncated"``, ``"checksum"``, ``"key"``,
    or ``"missing"``.
    """

    def __init__(self, message: str, kind: str = "checksum"):
        super().__init__(message)
        self.kind = kind


class JournalError(DebugError):
    """Base class for write-ahead journal errors."""


class JournalCorruptError(JournalError):
    """A journal record failed its CRC32/framing check.

    A *torn tail* (the final record cut mid-write by a crash) is normal
    and silently dropped; this error means an interior record — one
    followed by later durable records — is damaged, so replaying past it
    would silently diverge. ``line`` is the 1-based journal line.
    """

    def __init__(self, message: str, line: int = 0):
        super().__init__(message)
        self.line = line


class RecoveryError(DebugError):
    """Session recovery could not complete."""


class RecoveryDivergenceError(RecoveryError):
    """Deterministic replay reproduced different state than the journal
    recorded.

    Raised when re-executing the journal reaches a ``snapshot`` record
    whose re-taken content hash differs from the journaled one —
    the replay-and-compare oracle for debugger-state correctness.
    ``changed`` maps register names to ``(journaled, replayed)`` values
    when the journaled snapshot could be loaded for a full diff.
    """

    def __init__(self, message: str, record_index: int = -1,
                 changed=None):
        super().__init__(message)
        self.record_index = record_index
        self.changed = changed or {}


class SessionCrashedError(DebugError):
    """The (modeled) host process died mid-session.

    Injected by a :class:`~repro.config.transport.CrashPlan` at a chosen
    journaled-command or transport-batch boundary; every subsequent
    operation on the dead session raises this too.
    """


class DebugTimeoutError(DebugError):
    """A debug operation exceeded its modeled-seconds deadline.

    The watchdog aborted the operation, drove the session into a
    safe-paused state through the still-reachable primary controller's
    global clock gates, and surfaced this instead of retrying forever.
    """

    def __init__(self, message: str, operation: str = "",
                 deadline_seconds: float = 0.0,
                 spent_seconds: float = 0.0):
        super().__init__(message)
        self.operation = operation
        self.deadline_seconds = deadline_seconds
        self.spent_seconds = spent_seconds


class ChaosError(ReproError):
    """An injected chaos fault surfaced to the caller unhandled.

    Raised by :mod:`repro.chaos` fault points whose effect is not a
    more specific typed error (scheduler worker death, lost futures,
    fabric power cycles). ``kind`` names the injected fault class;
    ``retryable`` says whether re-running the operation can succeed
    (a restarted compile worker) or not (a power-cycled fabric whose
    session state is gone).
    """

    def __init__(self, message: str, kind: str = "chaos",
                 retryable: bool = False):
        super().__init__(message)
        self.kind = kind
        self.retryable = retryable


class DiskFaultError(ChaosError):
    """An injected disk-I/O fault (torn write, bit-rot, ENOSPC).

    ``kind`` is ``"torn_write"``, ``"bit_rot"``, ``"enospc"``, or
    ``"slow_sync"``. Torn and slow writes are transient — the supervisor
    repairs and re-issues them; a full disk is not fixed by retrying.
    """

    RETRYABLE_KINDS = frozenset({"torn_write", "slow_sync", "bit_rot"})

    def __init__(self, message: str, kind: str = "torn_write"):
        super().__init__(message, kind=kind,
                         retryable=kind in self.RETRYABLE_KINDS)


class CircuitOpenError(ReproError):
    """A per-fabric circuit breaker is open: the operation was refused
    without touching the channel.

    Repeated transport failures tripped the breaker; callers must back
    off (modeled cooldown) or escalate to session recovery on a fresh
    fabric instead of hammering a sick one. Not retryable by
    definition — the breaker exists to stop retries.
    """

    def __init__(self, message: str, failures: int = 0,
                 cooldown_seconds: float = 0.0):
        super().__init__(message)
        self.failures = failures
        self.cooldown_seconds = cooldown_seconds


class FormalError(ReproError):
    """A bounded model check found a counterexample or was misconfigured."""

    def __init__(self, message: str, trace=None):
        super().__init__(message)
        self.trace = trace
