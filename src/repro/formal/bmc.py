"""Explicit-state bounded model checking over RTL netlists.

The checker exhaustively enumerates every input sequence up to a depth
bound (each input drawn from a caller-supplied alphabet) and evaluates an
invariant on every reached state. Depth-first traversal with simulator
snapshots keeps the exploration linear in the number of *edges* rather than
re-simulating prefixes.

For the small, decoupled control modules Zoomie inserts (pause buffers,
trigger logic), exhaustive bounded exploration over all handshake/pause
combinations is a genuine proof of the properties within the bound — the
same style of guarantee model checkers give for protocol FSMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Optional

from ..errors import FormalError
from ..rtl.netlist import Netlist
from ..rtl.simulator import Simulator

#: An invariant receives the settled simulator and the 0-based step index
#: and returns ``None`` when satisfied or a human-readable failure message.
Invariant = Callable[[Simulator, int], Optional[str]]

#: Optional per-step driver called before each step (e.g. to feed a
#: deterministic data counter); receives the simulator and step index.
PreStep = Callable[[Simulator, int], None]


@dataclass
class Counterexample:
    """A concrete input sequence violating the invariant."""

    message: str
    steps: list[dict[str, int]] = field(default_factory=list)
    failed_at: int = 0

    def __str__(self) -> str:
        lines = [f"counterexample at step {self.failed_at}: {self.message}"]
        for index, step in enumerate(self.steps):
            lines.append(f"  step {index}: {step}")
        return "\n".join(lines)


class BoundedChecker:
    """Exhaustive bounded exploration of a netlist's input space."""

    def __init__(self, netlist: Netlist,
                 clocks: Optional[dict[str, int]] = None):
        self.netlist = netlist
        self.clocks = clocks
        self.states_explored = 0

    def run(self,
            alphabet: dict[str, list[int]],
            depth: int,
            invariant: Invariant,
            pre_step: Optional[PreStep] = None,
            fixed_inputs: Optional[dict[str, int]] = None
            ) -> Optional[Counterexample]:
        """Explore all sequences; return the first counterexample or None.

        Parameters
        ----------
        alphabet:
            Input name -> values to enumerate each cycle. Inputs not listed
            (and not in ``fixed_inputs``) stay 0.
        depth:
            Number of cycles to explore.
        invariant:
            Checked on the settled state before every step (with the
            inputs of that step applied) and once more after the final
            step.
        pre_step:
            Deterministic extra driving (applied after the enumerated
            inputs each step).
        fixed_inputs:
            Inputs held constant for the whole exploration.
        """
        unknown = [name for name in alphabet
                   if name not in self.netlist.inputs]
        if unknown:
            raise FormalError(f"alphabet names unknown inputs: {unknown}")

        sim = Simulator(self.netlist, clocks=self.clocks)
        for name, value in (fixed_inputs or {}).items():
            sim.poke(name, value)

        names = sorted(alphabet)
        choices = [alphabet[name] for name in names]
        vectors = [dict(zip(names, combo)) for combo in product(*choices)]
        self.states_explored = 0

        trail: list[dict[str, int]] = []

        def explore(level: int) -> Optional[Counterexample]:
            if level == depth:
                return None
            base = sim.snapshot()
            for vector in vectors:
                for name, value in vector.items():
                    sim.poke(name, value)
                if pre_step is not None:
                    pre_step(sim, level)
                trail.append(dict(vector))
                self.states_explored += 1
                message = invariant(sim, level)
                if message is None:
                    sim.step(1)
                    message = invariant(sim, level)
                if message is not None:
                    return Counterexample(
                        message=message, steps=list(trail), failed_at=level)
                result = explore(level + 1)
                if result is not None:
                    return result
                trail.pop()
                sim.restore(base)
            return None

        return explore(0)

    def assert_holds(self, *args, **kwargs) -> int:
        """Like :meth:`run` but raises :class:`FormalError` on failure.

        Returns the number of explored states on success.
        """
        cex = self.run(*args, **kwargs)
        if cex is not None:
            raise FormalError(str(cex), trace=cex)
        return self.states_explored


def check_equivalence(left: Netlist, right: Netlist,
                      alphabet: dict[str, list[int]],
                      outputs: list[str], depth: int,
                      clocks: Optional[dict[str, int]] = None
                      ) -> Optional[Counterexample]:
    """Bounded sequential equivalence check on shared inputs/outputs.

    Enumerates every full input sequence up to ``depth`` and runs both
    netlists in lockstep, comparing the named outputs before and after
    every step.
    """
    names = sorted(alphabet)
    choices = [alphabet[name] for name in names]
    for sequence in product(product(*choices), repeat=depth):
        sl = Simulator(left, clocks=clocks)
        sr = Simulator(right, clocks=clocks)
        steps = []
        for level, combo in enumerate(sequence):
            vector = dict(zip(names, combo))
            steps.append(vector)
            for name, value in vector.items():
                sl.poke(name, value)
                sr.poke(name, value)
            for name in outputs:
                if sl.peek(name) != sr.peek(name):
                    return Counterexample(
                        message=f"output {name!r} diverged pre-step",
                        steps=steps, failed_at=level)
            sl.step(1)
            sr.step(1)
            for name in outputs:
                if sl.peek(name) != sr.peek(name):
                    return Counterexample(
                        message=f"output {name!r} diverged post-step",
                        steps=steps, failed_at=level)
    return None
