"""Pause buffer correctness properties (paper Section 3.1).

The buffer is verified against :class:`PauseBufferModel`, an executable
specification of the three guarantees:

1. transactions accepted before a pause are delivered during the pause;
2. a side frozen at the cycle of a transaction restarts it after resume —
   nothing is lost or duplicated;
3. an empty buffer with both sides live is a zero-latency passthrough.

:func:`check_pause_buffer` exhaustively explores every combination of
``enq_valid``/``deq_ready``/``enq_live``/``deq_live`` per cycle up to a
depth bound, feeding a distinct payload every cycle, and demands the RTL
matches the model's outputs cycle-exactly. The model itself is validated
against the paper's prose by the unit tests (and by construction encodes
properties 1-3), so agreement is a bounded proof of the RTL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import FormalError
from ..interfaces.pause_buffer import make_pause_buffer
from ..rtl.flatten import elaborate
from ..rtl.simulator import Simulator
from .bmc import BoundedChecker


@dataclass
class PauseBufferModel:
    """Executable golden model of the pause buffer."""

    depth: int = 2
    queue: list[int] = field(default_factory=list)
    delivered: list[int] = field(default_factory=list)
    accepted: list[int] = field(default_factory=list)

    # -- same-cycle (combinational) view ------------------------------------

    def enq_ready(self) -> bool:
        return len(self.queue) < self.depth

    def deq_valid(self, enq_valid: bool, enq_live: bool) -> bool:
        return bool(self.queue) or (enq_valid and enq_live)

    def deq_data(self, enq_data: int) -> int:
        return self.queue[0] if self.queue else enq_data

    # -- clock edge ----------------------------------------------------------

    def step(self, enq_valid: bool, enq_data: int, deq_ready: bool,
             enq_live: bool, deq_live: bool) -> None:
        enq_fire = enq_valid and self.enq_ready() and enq_live
        deq_fire = (self.deq_valid(enq_valid, enq_live)
                    and deq_ready and deq_live)
        if enq_fire and deq_fire and not self.queue:
            # Zero-latency passthrough (property 3).
            self.accepted.append(enq_data)
            self.delivered.append(enq_data)
            return
        if deq_fire:
            self.delivered.append(self.queue.pop(0))
        if enq_fire:
            self.accepted.append(enq_data)
            self.queue.append(enq_data)

    def snapshot(self) -> tuple:
        return (list(self.queue), list(self.delivered), list(self.accepted))

    def restore(self, snap: tuple) -> None:
        self.queue, self.delivered, self.accepted = (
            list(snap[0]), list(snap[1]), list(snap[2]))


def _data_for_step(step: int, width: int) -> int:
    """A distinct, nonzero payload per cycle (mod the width space)."""
    return (step + 1) & ((1 << width) - 1)


def check_pause_buffer(depth: int = 2, data_width: int = 4,
                       bound: int = 4,
                       alphabet: Optional[dict[str, list[int]]] = None
                       ) -> int:
    """Exhaustively check the buffer against the model up to ``bound``.

    Returns the number of explored states; raises :class:`FormalError`
    with a counterexample trace on any mismatch.
    """
    module = make_pause_buffer("pause_buffer", data_width, depth=depth)
    netlist = elaborate(module)
    checker = BoundedChecker(netlist)

    if alphabet is None:
        alphabet = {
            "enq_valid": [0, 1],
            "deq_ready": [0, 1],
            "enq_live": [0, 1],
            "deq_live": [0, 1],
        }

    model = PauseBufferModel(depth=depth)
    model_stack: list[tuple] = []
    last_level = {"value": -1}

    def pre_step(sim: Simulator, level: int) -> None:
        # Maintain the model's DFS position: ``model_stack[level]`` is the
        # model state *before* any step at that level. Entering a level for
        # the first time snapshots the current state; revisiting it (the
        # DFS trying the next input vector) restores that snapshot.
        while len(model_stack) > level + 1:
            model_stack.pop()
        if len(model_stack) == level:
            model_stack.append(model.snapshot())
        model.restore(model_stack[level])
        sim.poke("enq_data", _data_for_step(level, data_width))
        last_level["value"] = level

    checked = {"post": False}

    def invariant(sim: Simulator, level: int) -> Optional[str]:
        enq_valid = bool(sim.peek("enq_valid"))
        enq_live = bool(sim.peek("enq_live"))
        enq_data = sim.peek("enq_data")
        deq_ready = bool(sim.peek("deq_ready"))
        deq_live = bool(sim.peek("deq_live"))

        if not checked["post"]:
            # Pre-step: compare the combinational outputs, then advance
            # the model in lockstep with the simulator's coming edge.
            if bool(sim.peek("enq_ready")) != model.enq_ready():
                return (f"enq_ready mismatch: rtl="
                        f"{sim.peek('enq_ready')} model={model.enq_ready()}")
            want_valid = model.deq_valid(enq_valid, enq_live)
            if bool(sim.peek("deq_valid")) != want_valid:
                return (f"deq_valid mismatch: rtl={sim.peek('deq_valid')} "
                        f"model={want_valid}")
            if want_valid and sim.peek("deq_data") != model.deq_data(enq_data):
                return (f"deq_data mismatch: rtl={sim.peek('deq_data'):#x} "
                        f"model={model.deq_data(enq_data):#x}")
            model.step(enq_valid, enq_data, deq_ready, enq_live, deq_live)
            checked["post"] = True
            return None
        checked["post"] = False
        return None

    states = checker.assert_holds(
        alphabet=alphabet, depth=bound,
        invariant=invariant, pre_step=pre_step)
    return states


def check_pause_buffer_scenarios(data_width: int = 4) -> dict[str, int]:
    """Check the three paper scenarios with deeper, narrower bounds.

    Returns explored-state counts per scenario. Each scenario fixes the
    live signals' envelope so the bound reaches further:

    - ``free-running``: both sides always live (plain queue behaviour);
    - ``producer-pauses``: consumer always live;
    - ``consumer-pauses``: producer always live.
    """
    results: dict[str, int] = {}
    results["free-running"] = check_pause_buffer(
        data_width=data_width, bound=7,
        alphabet={"enq_valid": [0, 1], "deq_ready": [0, 1],
                  "enq_live": [1], "deq_live": [1]})
    results["producer-pauses"] = check_pause_buffer(
        data_width=data_width, bound=5,
        alphabet={"enq_valid": [0, 1], "deq_ready": [0, 1],
                  "enq_live": [0, 1], "deq_live": [1]})
    results["consumer-pauses"] = check_pause_buffer(
        data_width=data_width, bound=5,
        alphabet={"enq_valid": [0, 1], "deq_ready": [0, 1],
                  "enq_live": [1], "deq_live": [0, 1]})
    if any(count <= 0 for count in results.values()):
        raise FormalError("scenario exploration did not run")
    return results
