"""Bounded formal verification.

The paper ships "a set of formally verified pause buffers" (Section 3.1).
This package provides the verification machinery: an explicit-state bounded
model checker over RTL netlists (:mod:`~repro.formal.bmc`) and the pause
buffer correctness properties (:mod:`~repro.formal.properties`), checked by
exhaustive exploration of all input sequences up to a bound against a
golden reference model.
"""

from .bmc import BoundedChecker, Counterexample
from .properties import (
    PauseBufferModel,
    check_pause_buffer,
    check_pause_buffer_scenarios,
)

__all__ = [
    "BoundedChecker",
    "Counterexample",
    "PauseBufferModel",
    "check_pause_buffer",
    "check_pause_buffer_scenarios",
]
