"""Compile-time cost model.

Simulated wall-clock seconds per flow stage, driven by real work metrics
(LUTs mapped, cells placed, nets routed, frames emitted) with constants
calibrated to the paper's published anchor points:

- the 5400-core SERV SoC (~1.1 M LUTs, 95% of a U200) takes ~4.5 hours
  through the monolithic flow (Figure 7's initial bars);
- the vendor incremental mode recovers only ~10% (Figure 7);
- VTI incremental recompiles land around 15 minutes — an 18x speedup —
  dominated by checkpoint linking and partial bitstream generation, not
  by the (tiny) recompiled partition (Section 5.2).

A deterministic, seeded jitter (a few percent) makes repeated runs look
like real tool runs without breaking reproducibility.
"""

from __future__ import annotations

import hashlib
import math

# ---- calibration constants (seconds per unit of work) --------------------

#: Synthesis: per LUT mapped. 1.1M LUTs -> ~67 min.
SYNTH_PER_LUT = 3.7e-3
SYNTH_FIXED = 45.0

#: Placement: per cell placed (LUT+FF+...), superlinear in fill pressure.
PLACE_PER_CELL = 1.45e-3
PLACE_FIXED = 60.0

#: Routing: per net, inflated by congestion.
ROUTE_PER_NET = 2.9e-3
ROUTE_FIXED = 60.0

#: Bitstream generation: per configuration frame.
BITGEN_PER_FRAME = 2.4e-3
BITGEN_FIXED = 40.0

#: Vendor incremental mode: fraction of the full flow it still re-runs
#: (the tool re-places a large halo around any change; Section 5.2's
#: hypothesis) plus a fixed analysis cost.
VENDOR_INCREMENTAL_FRACTION = 0.88
VENDOR_INCREMENTAL_FIXED = 240.0

#: VTI: linking re-reads the routed checkpoint and stitches partitions —
#: proportional to whole-design size but far cheaper than recompiling.
VTI_LINK_PER_CELL = 2.2e-4
VTI_LINK_FIXED = 90.0
#: Partition setup cost of the initial VTI run (per partition).
VTI_PARTITION_SETUP = 45.0
#: Partial bitstream emission for one partition's region.
VTI_PARTIAL_BITGEN_FIXED = 50.0

JITTER = 0.03


def jitter(seed: str, *context) -> float:
    """Deterministic multiplier in [1-JITTER, 1+JITTER]."""
    material = ":".join([seed, *map(str, context)]).encode()
    digest = hashlib.sha256(material).digest()
    unit = int.from_bytes(digest[:8], "big") / 2 ** 64
    return 1.0 + JITTER * (2.0 * unit - 1.0)


def synth_seconds(work_luts: int, seed: str = "", run: int = 0) -> float:
    return (SYNTH_FIXED + SYNTH_PER_LUT * work_luts) \
        * jitter(seed, "synth", run)


def place_seconds(cells: int, congestion: float,
                  seed: str = "", run: int = 0) -> float:
    pressure = 1.0 + 1.6 * max(0.0, congestion - 0.7) / 0.3
    return (PLACE_FIXED + PLACE_PER_CELL * cells * pressure) \
        * jitter(seed, "place", run)


def route_seconds(nets: int, congestion: float,
                  seed: str = "", run: int = 0) -> float:
    detour = 1.0 + 2.5 * congestion ** 3
    return (ROUTE_FIXED + ROUTE_PER_NET * nets * detour) \
        * jitter(seed, "route", run)


def bitgen_seconds(frames: int, seed: str = "", run: int = 0) -> float:
    return (BITGEN_FIXED + BITGEN_PER_FRAME * frames) \
        * jitter(seed, "bitgen", run)


def vendor_incremental_seconds(full_seconds: float,
                               seed: str = "", run: int = 0) -> float:
    """The vendor's incremental mode: barely better than from scratch."""
    return (VENDOR_INCREMENTAL_FIXED
            + VENDOR_INCREMENTAL_FRACTION * full_seconds) \
        * jitter(seed, "vendor-incr", run)


def vti_link_seconds(design_cells: int, seed: str = "", run: int = 0
                     ) -> float:
    return (VTI_LINK_FIXED + VTI_LINK_PER_CELL * design_cells) \
        * jitter(seed, "vti-link", run)


def format_duration(seconds: float) -> str:
    """Human-friendly duration (the benchmarks print these)."""
    if seconds < 90:
        return f"{seconds:.0f} s"
    if seconds < 5400:
        return f"{seconds / 60:.1f} min"
    return f"{seconds / 3600:.2f} h"


def device_frame_count(device) -> int:
    from ..fpga.frames import FrameSpace
    return sum(FrameSpace(slr).frame_count() for slr in device.slrs)


def estimate_full_compile_seconds(work_luts: int, cells: int, nets: int,
                                  congestion: float, frames: int,
                                  seed: str = "", run: int = 0) -> dict:
    """Stage breakdown of one monolithic compile."""
    out = {
        "synth": synth_seconds(work_luts, seed, run),
        "place": place_seconds(cells, congestion, seed, run),
        "route": route_seconds(nets, congestion, seed, run),
        "bitgen": bitgen_seconds(frames, seed, run),
    }
    out["total"] = math.fsum(out.values())
    return out
