"""The monolithic vendor flow and its incremental mode.

:meth:`VivadoFlow.compile` runs synthesis (with global optimization),
placement, routing, timing, and bitstream generation; small designs also
get a full :class:`~repro.config.database.DesignDatabase` and programming
bitstream so they can run on the emulated fabric. Compile times come from
the calibrated cost model; the paper's headline numbers (Figure 7,
Table 2) fall out of these two methods plus :mod:`repro.vti`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..config.database import DesignDatabase, synthesize_frame_words
from ..config.program import build_full_bitstream
from ..fpga.device import Device
from ..fpga.frames import BLOCK_MAIN, FrameAddress
from ..rtl.flatten import elaborate
from ..rtl.module import Module
from ..rtl.netlist import Netlist
from . import cost
from .ila import IlaConfig, IlaInsertion, insert_ila
from .place import PlacementResult, Region, place
from .resources import ResourceVector
from .route import RouteResult, route
from .synth import SynthesisResult, synthesize
from .timing import TimingResult, analyze_timing

#: Designs at or below this many state bits get flattened, simulated,
#: and programmed onto the emulated fabric; bigger ones compile
#: statistically (the 5400-core SoC never needs to *execute* here).
FLATTEN_STATE_BITS = 200_000
FLATTEN_INSTANCES = 5_000


def mhz_to_period_ps(mhz: float) -> int:
    return round(1_000_000 / mhz)


@dataclass
class CompileResult:
    """Everything one flow run produces."""

    name: str
    device: Device
    synth: SynthesisResult
    placement: PlacementResult
    routed: RouteResult
    timing: TimingResult
    #: Percent utilization per resource kind (Table 2 rows).
    utilization: dict[str, float]
    #: Simulated wall-clock breakdown: synth/place/route/bitgen/total.
    seconds: dict[str, float]
    database: Optional[DesignDatabase] = None
    bitstream: Optional[list[int]] = None
    ila: Optional[IlaInsertion] = None
    incremental: bool = False
    run_index: int = 0
    flow: str = "vivado"

    @property
    def total_seconds(self) -> float:
        return self.seconds["total"]

    def used_resources(self) -> dict[str, int]:
        extra = self.ila.resources if self.ila else ResourceVector()
        return (self.synth.totals + extra).as_dict()


class VivadoFlow:
    """The vendor toolchain entry point."""

    def __init__(self, device: Device, seed: str = "vivado"):
        self.device = device
        self.seed = seed
        self._runs = 0

    # ------------------------------------------------------------------
    # full compile
    # ------------------------------------------------------------------

    def compile(self, top: Module, clocks: dict[str, float],
                constraints: Optional[dict[str, Region]] = None,
                ila_configs: Optional[list[IlaConfig]] = None,
                flatten: Optional[bool] = None,
                gate_signals: Optional[dict[str, str]] = None
                ) -> CompileResult:
        """Compile ``top`` targeting ``clocks`` (domain -> MHz)."""
        run = self._runs
        self._runs += 1
        seed = f"{self.seed}:{top.name}"

        synth = synthesize(top, global_opt=True)

        ila: Optional[IlaInsertion] = None
        effective_synth = synth
        if ila_configs:
            ila = insert_ila(ila_configs, self.device.totals()["LUT"])
            effective_synth = replace(
                synth, totals=synth.totals + ila.resources)

        should_flatten = flatten
        if should_flatten is None:
            should_flatten = (
                top.state_bit_count() <= FLATTEN_STATE_BITS
                and top.instance_count() <= FLATTEN_INSTANCES)

        flat: Optional[Netlist] = elaborate(top) if should_flatten else None
        placement = place(effective_synth, self.device,
                          flat=flat, constraints=constraints)
        routed = route(effective_synth, placement)
        if ila is not None:
            routed.congestion = min(
                0.995, routed.congestion + ila.congestion_delta)
        timing = analyze_timing(effective_synth, routed, clocks)

        frames = cost.device_frame_count(self.device)
        seconds = cost.estimate_full_compile_seconds(
            work_luts=effective_synth.totals.lut,
            cells=effective_synth.totals.total_cells(),
            nets=effective_synth.total_nets(),
            congestion=routed.congestion,
            frames=frames,
            seed=seed, run=run)

        utilization = self.device.utilization(
            (effective_synth.totals).as_dict())

        database = None
        bitstream = None
        if flat is not None:
            database = self._build_database(
                top.name, flat, placement, clocks, gate_signals)
            bitstream = build_full_bitstream(database)

        return CompileResult(
            name=top.name, device=self.device, synth=synth,
            placement=placement, routed=routed, timing=timing,
            utilization=utilization, seconds=seconds,
            database=database, bitstream=bitstream, ila=ila,
            run_index=run)

    # ------------------------------------------------------------------
    # netlist-level compile (instrumented designs)
    # ------------------------------------------------------------------

    def compile_netlist(self, netlist: Netlist, clocks: dict[str, float],
                        constraints: Optional[dict[str, Region]] = None,
                        gate_signals: Optional[dict[str, str]] = None
                        ) -> CompileResult:
        """Compile an already-elaborated netlist (Zoomie instrumentation
        edits flat netlists, so the flow accepts them directly)."""
        from .synth import synthesize_netlist

        run = self._runs
        self._runs += 1
        seed = f"{self.seed}:{netlist.name}"
        synth = synthesize_netlist(netlist, opt="local")
        placement = place(synth, self.device, flat=netlist,
                          constraints=constraints)
        routed = route(synth, placement)
        timing = analyze_timing(synth, routed, clocks)
        frames = cost.device_frame_count(self.device)
        seconds = cost.estimate_full_compile_seconds(
            work_luts=synth.totals.lut,
            cells=synth.totals.total_cells(),
            nets=synth.total_nets(),
            congestion=routed.congestion,
            frames=frames,
            seed=seed, run=run)
        utilization = self.device.utilization(synth.totals.as_dict())
        database = self._build_database(
            netlist.name, netlist, placement, clocks, gate_signals)
        bitstream = build_full_bitstream(database)
        return CompileResult(
            name=netlist.name, device=self.device, synth=synth,
            placement=placement, routed=routed, timing=timing,
            utilization=utilization, seconds=seconds,
            database=database, bitstream=bitstream, run_index=run)

    # ------------------------------------------------------------------
    # the vendor's own incremental mode (Figure 7's losing contender)
    # ------------------------------------------------------------------

    def compile_incremental(self, top: Module, clocks: dict[str, float],
                            previous: CompileResult,
                            changed_modules: Optional[list[str]] = None,
                            **kwargs) -> CompileResult:
        """Recompile after an RTL change, reusing the previous checkpoint.

        The vendor tool has no way to know the user's intended iteration
        region in advance; unless a change is confined to a single tile
        it re-places a large halo (Section 5.2's hypothesis, supported by
        SMatch), recovering only ~10%.
        """
        result = self.compile(top, clocks, **kwargs)
        seconds = {
            "total": cost.vendor_incremental_seconds(
                previous.total_seconds, seed=f"{self.seed}:{top.name}",
                run=result.run_index),
        }
        seconds["synth"] = seconds["total"] * 0.22
        seconds["place"] = seconds["total"] * 0.33
        seconds["route"] = seconds["total"] * 0.38
        seconds["bitgen"] = seconds["total"] * 0.07
        return replace(result, seconds=seconds, incremental=True,
                       flow="vivado-incremental")

    # ------------------------------------------------------------------
    # database assembly for fabric-executable designs
    # ------------------------------------------------------------------

    def _build_database(self, name: str, flat: Netlist,
                        placement: PlacementResult,
                        clocks: dict[str, float],
                        gate_signals: Optional[dict[str, str]]
                        ) -> DesignDatabase:
        assert placement.ll is not None
        periods = {domain: mhz_to_period_ps(mhz)
                   for domain, mhz in clocks.items()}
        for domain in flat.clock_domains():
            periods.setdefault(domain, 1000)
        frame_image: dict[int, dict[FrameAddress, list[int]]] = {
            index: {} for index in range(self.device.slr_count)}
        for slr_index in range(self.device.slr_count):
            used_columns = placement.ll.columns_used(slr_index)
            used_regions = placement.ll.regions_used(slr_index)
            for column in sorted(used_columns):
                for region in sorted(used_regions):
                    address = FrameAddress(
                        block_type=BLOCK_MAIN, region=region,
                        column=column, minor=0)
                    frame_image[slr_index][address] = \
                        synthesize_frame_words(name, address)
        return DesignDatabase(
            name=name, device=self.device, netlist=flat,
            ll=placement.ll, clocks=periods, frame_image=frame_image,
            gate_signals=dict(gate_signals or {}),
            memory_map=dict(placement.memory_map))
