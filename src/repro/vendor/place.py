"""Placement: assign logic to device regions and flip-flops to BELs.

Two layers:

- a **coarse floorplan** distributing each (possibly constrained) part of
  the design over column ranges of specific SLRs, with capacity checks;
- for designs small enough to have a flat netlist, **BEL assignment** of
  every register bit to a concrete ``(SLR, column, row, FF slot)`` — the
  source of the logic location file that state readback matches names
  against (paper Section 3.2).

Constraints are hierarchical-prefix keyed regions (the model of Vivado
pblocks + ``CONSTRAIN_SLR`` Tcl the paper uses); VTI supplies them to
keep each debugged partition inside one SLR (Section 3.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..config.logic_loc import LLEntry, LogicLocationFile
from ..errors import PlacementError
from ..fpga.device import Device, FFS_PER_CLB, REGION_ROWS
from ..fpga.frames import FrameSpace
from ..rtl.netlist import Netlist
from .resources import ResourceVector
from .synth import SynthesisResult


@dataclass(frozen=True)
class Region:
    """A placement rectangle: column span x clock-region span of one SLR."""

    slr: int
    col_lo: int
    col_hi: int
    region_lo: int = 0
    region_hi: int = 0

    def columns(self, device: Device):
        slr = device.slr(self.slr)
        return [c for c in slr.columns
                if self.col_lo <= c.index <= self.col_hi]

    def capacity(self, device: Device) -> dict[str, int]:
        slr = device.slr(self.slr)
        rows = (self.region_hi - self.region_lo + 1) * REGION_ROWS
        if rows <= 0 or self.region_hi >= slr.clock_regions:
            raise PlacementError(f"region rows out of range: {self}")
        luts = ffs = lutram = bram = 0
        for column in self.columns(device):
            if column.kind in ("CLB", "CLBM"):
                luts += 8 * rows
                ffs += 16 * rows
                if column.kind == "CLBM":
                    lutram += 8 * rows
            elif column.kind == "BRAM":
                bram += rows // 5
        return {"LUT": luts, "FF": ffs, "LUTRAM": lutram, "BRAM": bram}

    def clock_regions(self) -> set[int]:
        return set(range(self.region_lo, self.region_hi + 1))

    def __str__(self) -> str:
        return (f"SLR{self.slr}[C{self.col_lo}:C{self.col_hi}]"
                f"[R{self.region_lo}:R{self.region_hi}]")


def whole_slr(device: Device, slr: int) -> Region:
    the_slr = device.slr(slr)
    return Region(slr=slr, col_lo=0,
                  col_hi=the_slr.columns[-1].index,
                  region_lo=0, region_hi=the_slr.clock_regions - 1)


def whole_device_regions(device: Device) -> list[Region]:
    return [whole_slr(device, index) for index in range(device.slr_count)]


@dataclass(frozen=True)
class MemoryPlacement:
    """Where one memory's contents live in configuration space.

    A memory owns a contiguous run of whole content frames of one column
    (frames are never shared between memories, so frame-level writes and
    readback stay per-memory). ``start_frame`` indexes the column's
    content-frame sequence from clock region 0.
    """

    name: str
    slr: int
    column: int
    column_kind: str  # BRAM or CLBM (LUTRAM)
    start_frame: int
    bits: int

    def frame_count(self) -> int:
        from ..fpga.frames import FRAME_WORDS
        frame_bits = FRAME_WORDS * 32
        return max(1, math.ceil(self.bits / frame_bits))

    def locate_bit(self, space, bit_index: int):
        """(FrameAddress, offset-in-frame) of one content bit."""
        from ..fpga.frames import FRAME_WORDS
        frame_bits = FRAME_WORDS * 32
        absolute = self.start_frame * frame_bits + bit_index
        return space.content_location(
            self.column, self.column_kind, 0, absolute)

    def frame_addresses(self, space) -> list:
        from ..fpga.frames import FRAME_WORDS
        frame_bits = FRAME_WORDS * 32
        return [
            self.locate_bit(space, index * frame_bits)[0]
            for index in range(self.frame_count())
        ]

    def covers_frame(self, space, address) -> Optional[int]:
        """If ``address`` is one of this memory's frames, return the
        bit base it starts at; else None."""
        from ..fpga.frames import FRAME_WORDS
        frame_bits = FRAME_WORDS * 32
        per_region = space.content_capacity_bits(self.column_kind)
        if address.column != self.column:
            return None
        minors = per_region // frame_bits
        index = address.region * minors + address.minor
        if self.start_frame <= index < self.start_frame \
                + self.frame_count():
            return (index - self.start_frame) * frame_bits
        return None


@dataclass
class PlacementResult:
    """Output of placement."""

    device: Device
    #: Hierarchical prefix -> region it was placed in ("" = the remainder).
    regions: dict[str, Region]
    occupancy: dict[int, ResourceVector]
    ll: Optional[LogicLocationFile]
    #: Half-perimeter wirelength estimate (arbitrary units).
    wirelength: float
    cells_placed: int
    #: SLR boundary crossings of the coarse floorplan.
    slr_crossings: int = 0
    spilled: dict[str, ResourceVector] = field(default_factory=dict)
    #: Memory name -> content-frame placement (flat designs only).
    memory_map: dict[str, MemoryPlacement] = field(default_factory=dict)

    def utilization(self, slr: int) -> float:
        """Binding utilization across all resource kinds (fit check)."""
        capacity = self.device.slr(slr).totals()
        return self.occupancy.get(
            slr, ResourceVector()).max_ratio(capacity)

    def logic_utilization(self, slr: int) -> float:
        """LUT fill fraction — the quantity routing congestion tracks.

        BRAM/LUTRAM columns sit beside their own routing; a BRAM-bound
        design does not congest the general fabric the way LUT fill does.
        """
        capacity = self.device.slr(slr).totals()
        if not capacity["LUT"]:
            return 0.0
        return self.occupancy.get(
            slr, ResourceVector()).lut / capacity["LUT"]

    def peak_utilization(self) -> float:
        return max(
            (self.logic_utilization(index)
             for index in range(self.device.slr_count)), default=0.0)


class _BelCursor:
    """Sequential FF slot allocator within one region."""

    def __init__(self, device: Device, region: Region):
        self.device = device
        self.region = region
        self.columns = [c for c in region.columns(device)
                        if c.kind in ("CLB", "CLBM")]
        if not self.columns:
            raise PlacementError(
                f"region {region} has no logic columns")
        self.row_lo = region.region_lo * REGION_ROWS
        self.row_hi = (region.region_hi + 1) * REGION_ROWS - 1
        self._col = 0
        self._row = self.row_lo
        self._slot = 0

    def next_slot(self) -> tuple[int, int, int]:
        """Returns (column_index, row, ff_slot); advances the cursor."""
        if self._col >= len(self.columns):
            raise PlacementError(
                f"region {self.region} ran out of FF slots")
        out = (self.columns[self._col].index, self._row, self._slot)
        self._slot += 1
        if self._slot == FFS_PER_CLB:
            self._slot = 0
            self._row += 1
            if self._row > self.row_hi:
                self._row = self.row_lo
                self._col += 1
        return out


def _static_region(device: Device,
                   constraints: dict[str, Region]) -> Region:
    """The fallback region for unconstrained (static) logic.

    Reserved partition regions are exclusive — a reconfigured partition's
    frames must not hold static flip-flops — so static logic starts in
    the first column span free of any constraint.
    """
    for slr_index in range(device.slr_count):
        slr = device.slr(slr_index)
        taken_hi = -1
        for region in constraints.values():
            if region.slr == slr_index:
                taken_hi = max(taken_hi, region.col_hi)
        if taken_hi < slr.columns[-1].index:
            return Region(
                slr=slr_index, col_lo=taken_hi + 1,
                col_hi=slr.columns[-1].index,
                region_lo=0, region_hi=slr.clock_regions - 1)
    raise PlacementError(
        "partition regions cover every column of every SLR; no room "
        "for static logic")


def _region_for(prefix_owner: str, constraints: dict[str, Region],
                fallback: Region) -> tuple[str, Region]:
    """Longest-prefix constraint match for a signal owner path."""
    best_key = ""
    best: Optional[Region] = None
    for key, region in constraints.items():
        if prefix_owner == key or prefix_owner.startswith(key + "."):
            if len(key) > len(best_key) or best is None:
                best_key, best = key, region
    if best is None:
        return "", fallback
    return best_key, best


def place(synth: SynthesisResult, device: Device,
          flat: Optional[Netlist] = None,
          constraints: Optional[dict[str, Region]] = None,
          utilization_limit: float = 0.995) -> PlacementResult:
    """Place a synthesized design.

    Raises :class:`PlacementError` when any SLR or constrained region
    overflows. With ``flat`` provided, emits the logic location file.
    """
    constraints = dict(constraints or {})

    # ---- coarse floorplan: spread totals over SLRs ----------------------
    totals = synth.totals
    occupancy: dict[int, ResourceVector] = {
        index: ResourceVector() for index in range(device.slr_count)}
    regions: dict[str, Region] = dict(constraints)

    remaining = totals
    # Constrained parts land in their regions first. Without a flat
    # netlist we cannot size an arbitrary prefix, so constraints on
    # hierarchy prefixes require that the prefix names a unique module
    # instance path whose module synthesis totals we can look up via the
    # path's leaf module name (callers pass module names for aggregates).
    for key in constraints:
        module_name = key.rsplit(".", 1)[-1]
        vector = None
        for candidate in (key, module_name):
            if candidate in synth.per_module:
                vector = synth.per_module[candidate].total
                break
        if vector is None:
            vector = ResourceVector()
        region = constraints[key]
        capacity = region.capacity(device)
        if not vector.fits_in(capacity):
            raise PlacementError(
                f"constraint {key!r}: {vector.as_dict()} does not fit in "
                f"{region} with capacity {capacity}")
        occupancy[region.slr] = occupancy[region.slr] + vector
        remaining = ResourceVector(
            lut=max(0, remaining.lut - vector.lut),
            ff=max(0, remaining.ff - vector.ff),
            lutram=max(0, remaining.lutram - vector.lutram),
            bram=max(0, remaining.bram - vector.bram))

    # The unconstrained remainder spreads *proportionally* across SLRs
    # (real placers balance SLR occupancy to keep congestion uniform),
    # then any residue from rounding/headroom differences fills greedily.
    slr_crossings = 0
    to_spread = remaining
    headrooms: dict[int, ResourceVector] = {}
    total_headroom = ResourceVector()
    for index in range(device.slr_count):
        capacity = device.slr(index).totals()
        headroom = ResourceVector(
            lut=max(0, math.floor(capacity["LUT"] * utilization_limit)
                    - occupancy[index].lut),
            ff=max(0, math.floor(capacity["FF"] * utilization_limit)
                   - occupancy[index].ff),
            lutram=max(0, math.floor(capacity["LUTRAM"] * utilization_limit)
                       - occupancy[index].lutram),
            bram=max(0, math.floor(capacity["BRAM"] * utilization_limit)
                     - occupancy[index].bram))
        headrooms[index] = headroom
        total_headroom = total_headroom + headroom

    def _take(index: int, want: ResourceVector) -> None:
        nonlocal to_spread, slr_crossings
        headroom = headrooms[index]
        got = ResourceVector(
            lut=min(want.lut, headroom.lut, to_spread.lut),
            ff=min(want.ff, headroom.ff, to_spread.ff),
            lutram=min(want.lutram, headroom.lutram, to_spread.lutram),
            bram=min(want.bram, headroom.bram, to_spread.bram))
        occupancy[index] = occupancy[index] + got
        headrooms[index] = ResourceVector(
            lut=headroom.lut - got.lut, ff=headroom.ff - got.ff,
            lutram=headroom.lutram - got.lutram,
            bram=headroom.bram - got.bram)
        to_spread = ResourceVector(
            lut=to_spread.lut - got.lut, ff=to_spread.ff - got.ff,
            lutram=to_spread.lutram - got.lutram,
            bram=to_spread.bram - got.bram)
        if got.total_cells() and index > 0:
            slr_crossings += 1

    # A design that fits inside a single SLR stays there — crossing the
    # interposer costs timing, so real placers only spill when forced.
    if to_spread.total_cells():
        for index in range(device.slr_count):
            if to_spread.fits_in(headrooms[index].as_dict()):
                _take(index, to_spread)
                break
    if to_spread.total_cells() and total_headroom.total_cells():
        for index in range(device.slr_count):
            def share(mine: int, total: int, want: int) -> int:
                return math.ceil(want * mine / total) if total else 0
            _take(index, ResourceVector(
                lut=share(headrooms[index].lut, total_headroom.lut,
                          remaining.lut),
                ff=share(headrooms[index].ff, total_headroom.ff,
                         remaining.ff),
                lutram=share(headrooms[index].lutram,
                             total_headroom.lutram, remaining.lutram),
                bram=share(headrooms[index].bram, total_headroom.bram,
                           remaining.bram)))
    for index in range(device.slr_count):
        if to_spread.total_cells() == 0:
            break
        _take(index, to_spread)
    if to_spread.total_cells() > 0:
        raise PlacementError(
            f"design does not fit on {device.name}: "
            f"{to_spread.as_dict()} left over "
            f"(totals {totals.as_dict()}, "
            f"capacity {device.totals()})")

    # ---- BEL assignment for small (flattened) designs --------------------
    ll: Optional[LogicLocationFile] = None
    memory_map: dict[str, MemoryPlacement] = {}
    if flat is not None:
        ll = LogicLocationFile()
        fallback = _static_region(device, constraints)
        memory_map = _place_memories(device, flat, constraints, fallback)
        cursors: dict[str, _BelCursor] = {}
        spaces = {index: FrameSpace(device.slr(index))
                  for index in range(device.slr_count)}
        def _locate(name: str, width: int, owner: str) -> None:
            key, region = _region_for(owner, constraints, fallback)
            cursor = cursors.get(key)
            if cursor is None:
                cursor = cursors[key] = _BelCursor(device, region)
            for bit in range(width):
                column, row, slot = cursor.next_slot()
                frame, offset = spaces[region.slr].ff_location(
                    column, row, slot)
                ll.add(LLEntry(name=name, bit=bit, slr=region.slr,
                               frame=frame, offset=offset))

        for name, reg in sorted(flat.registers.items()):
            _locate(name, reg.width, flat.owner.get(name, ""))
        # BRAM/LUTRAM output latches (sync read-port data registers) are
        # capture/restore state like any flop, and real .ll files list
        # them; give each one a capture-frame location beside its memory
        # so readback and GRESTORE cover them transparently.
        for mem_name, memory in sorted(flat.memories.items()):
            for port in memory.read_ports:
                if not port.sync:
                    continue
                owner = flat.owner.get(
                    port.name, flat.owner.get(mem_name, ""))
                _locate(port.name, memory.width, owner)

    # ---- wirelength model -------------------------------------------------
    cells = totals.total_cells()
    spread = max(1.0, cells ** 0.5)
    wirelength = cells * spread * 0.1 + slr_crossings * 1_000.0

    return PlacementResult(
        device=device, regions=regions, occupancy=occupancy, ll=ll,
        wirelength=wirelength, cells_placed=cells,
        slr_crossings=slr_crossings, memory_map=memory_map)


def place_partition(flat: Netlist, device: Device, path: str,
                    constraints: dict[str, Region]
                    ) -> tuple[list[LLEntry], dict[str, MemoryPlacement]]:
    """BEL-assign one partition's state into its reserved region.

    The O(partition) core of VTI's incremental database rebuild: instead
    of re-placing the whole design, only signals owned by ``path`` get
    fresh locations. The assignment order mirrors :func:`place` exactly
    (globally sorted registers, then sync read-port latches, consumed by
    one sequential :class:`_BelCursor` per region) — and since regions
    are exclusive, the partition's slot stream never interacts with the
    static region's, so the emitted entries are *identical* to what a
    full re-place would produce and the static checkpoint's entries can
    be reused untouched.

    Memories are assigned by replaying the same first-fit column walk as
    :func:`_place_memories` over every memory (an O(#memories) loop, not
    a placement) and keeping only the partition's rows, so shared-column
    frame cursors line up with the initial compile.
    """
    region = constraints.get(path)
    if region is None:
        raise PlacementError(f"no reserved region for partition {path!r}")
    fallback = _static_region(device, constraints)
    cursor = _BelCursor(device, region)
    space = FrameSpace(device.slr(region.slr))
    entries: list[LLEntry] = []

    def _owned(owner: str) -> bool:
        key, _ = _region_for(owner, constraints, fallback)
        return key == path

    def _locate(name: str, width: int) -> None:
        for bit in range(width):
            column, row, slot = cursor.next_slot()
            frame, offset = space.ff_location(column, row, slot)
            entries.append(LLEntry(name=name, bit=bit, slr=region.slr,
                                   frame=frame, offset=offset))

    for name, reg in sorted(flat.registers.items()):
        if _owned(flat.owner.get(name, "")):
            _locate(name, reg.width)
    for mem_name, memory in sorted(flat.memories.items()):
        for port in memory.read_ports:
            if not port.sync:
                continue
            owner = flat.owner.get(
                port.name, flat.owner.get(mem_name, ""))
            if _owned(owner):
                _locate(port.name, memory.width)

    memory_map = {
        name: placement
        for name, placement in _place_memories(
            device, flat, constraints, fallback).items()
        if _owned(flat.owner.get(name, ""))
    }
    return entries, memory_map


def _place_memories(device: Device, flat: Netlist,
                    constraints: dict[str, Region],
                    fallback: Region) -> dict[str, MemoryPlacement]:
    """Assign each memory a content-frame home (column-region spans).

    BRAM-inferred memories go to BRAM columns, LUTRAM-inferred ones to
    SLICEM (CLBM) columns, within the region their owner is constrained
    to. Allocation is at column-region granularity, first-fit.
    """
    from ..fpga.frames import FrameSpace
    from .synth import LUTRAM_MAX_BITS

    from ..fpga.frames import FRAME_WORDS
    frame_bits = FRAME_WORDS * 32

    # (slr, column) -> next free content frame index.
    cursors: dict[tuple[int, int], int] = {}
    out: dict[str, MemoryPlacement] = {}
    for name, memory in sorted(flat.memories.items()):
        owner = flat.owner.get(name, "")
        _key, region = _region_for(owner, constraints, fallback)
        slr = device.slr(region.slr)
        space = FrameSpace(slr)
        has_async = any(not p.sync for p in memory.read_ports)
        kind = "CLBM" if has_async and memory.bits <= LUTRAM_MAX_BITS \
            else "BRAM"
        candidates = [c for c in region.columns(device)
                      if c.kind == kind]
        if not candidates:
            # Fall back to any column of the right kind on the SLR.
            candidates = slr.columns_of_kind(kind)
        per_region = space.content_capacity_bits(kind)
        column_frames = slr.clock_regions * per_region // frame_bits
        frames_needed = max(1, math.ceil(memory.bits / frame_bits))
        placed = False
        for column in candidates:
            cursor = cursors.get((region.slr, column.index), 0)
            if cursor + frames_needed <= column_frames:
                out[name] = MemoryPlacement(
                    name=name, slr=region.slr, column=column.index,
                    column_kind=kind, start_frame=cursor,
                    bits=memory.bits)
                cursors[(region.slr, column.index)] = \
                    cursor + frames_needed
                placed = True
                break
        if not placed:
            raise PlacementError(
                f"no {kind} column has room for memory {name!r} "
                f"({memory.bits} bits)")
    return out
