"""Synthesis: RTL modules -> technology-mapped resource netlists.

Maps each *unique* module definition once and aggregates by instance
count, which is what lets million-LUT manycore designs (5400 SERV cores)
synthesize in seconds of real time while the cost model still charges the
monolithic flow for every instance — exactly the asymmetry VTI exploits.

Mapping rules (6-input LUT target, documented per operator in
:func:`lut_cost`): registers map 1:1 to FFs; memories with asynchronous
reads and <=1024 bits map to LUTRAM (64 bits per SLICEM LUT), everything
else to BRAM36 blocks; expressions decompose into LUT networks with a
packing factor reflecting LUT6 fusion of small operators.

Cross-module optimization (the vendor's "global" mode, Table 1) shrinks
logic by a documented factor but makes results depend on the *whole*
design — the reason a one-line change invalidates a monolithic compile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter

from .._bits import clog2
from ..rtl.expr import (
    BinaryOp,
    Concat,
    Const,
    Expr,
    Mux,
    Ref,
    Repl,
    Slice,
    UnaryOp,
)
from ..rtl.module import Memory, Module
from .resources import ResourceVector

#: LUT6 packing: adjacent small operators fuse into shared LUTs.
PACKING_FACTOR = 0.85
#: Cross-module (global) optimization shrink on LUTs, applied by the
#: monolithic vendor flow. Partition-local optimization (VTI, Table 1)
#: recovers less — the "area inefficiency" cost of incrementality.
GLOBAL_OPT_FACTOR = 0.93
LOCAL_OPT_FACTOR = 0.95
#: Bits per LUTRAM-configured LUT.
LUTRAM_BITS_PER_LUT = 64
#: Bits per BRAM36 block.
BRAM36_BITS = 36_864
#: Memories at or below this size with async reads become LUTRAM.
LUTRAM_MAX_BITS = 1024


def lut_cost(expr: Expr) -> int:
    """LUTs needed by one expression tree (before packing).

    Per-operator costs for a 6-input LUT architecture:

    - add/sub: 1 LUT per bit (carry chains ride along);
    - multiply: quadratic partial products, ``w*w/4 + w``;
    - bitwise: 1 LUT per bit;
    - constant shifts, slices, concats, replication: wiring, free;
    - variable shifts: a mux layer per shift-amount bit;
    - equality: 3 bit-pairs per LUT plus a reduction tree;
    - ordered compares: carry compare, 1 LUT per 2 bits;
    - mux: 1 LUT per bit (two 2:1 muxes pack per LUT -> 0.5, handled by
      the packing factor);
    - reductions: a 6-ary tree.
    """
    total = 0
    for node in expr.walk():
        total += _node_cost(node)
    return total


def _node_cost(node: Expr) -> int:
    if isinstance(node, (Const, Ref, Slice, Concat, Repl)):
        return 0
    if isinstance(node, UnaryOp):
        if node.op in ("~", "!"):
            return 0  # inversions fuse into consuming LUTs
        if node.op == "-":
            return node.width
        # reductions
        return _tree_luts(node.a.width, arity=6)
    if isinstance(node, Mux):
        return node.width
    if isinstance(node, BinaryOp):
        op = node.op
        width = node.a.width
        if op in ("+", "-"):
            return node.width
        if op == "*":
            return width * width // 4 + width
        if op in ("&", "|", "^"):
            return node.width
        if op in ("<<", ">>", ">>>"):
            if isinstance(node.b, Const):
                return 0
            return node.width * max(1, clog2(max(node.width, 2)))
        if op in ("==", "!="):
            return math.ceil(width / 3) + _tree_luts(
                math.ceil(width / 3), arity=6)
        if op in ("<", ">", "<=", ">=", "<s", ">s", "<=s", ">=s"):
            return math.ceil(width / 2)
        if op in ("&&", "||"):
            return 1
    return 1


def _tree_luts(leaves: int, arity: int) -> int:
    if leaves <= 1:
        return 0
    total = 0
    while leaves > 1:
        groups = math.ceil(leaves / arity)
        total += groups
        leaves = groups
    return total


def _memory_resources(memory: Memory) -> ResourceVector:
    has_async_read = any(not p.sync for p in memory.read_ports)
    if has_async_read and memory.bits <= LUTRAM_MAX_BITS:
        lutram = math.ceil(memory.bits / LUTRAM_BITS_PER_LUT)
        # Address decode/mux logic around the LUTRAM.
        overhead = math.ceil(lutram / 8)
        return ResourceVector(lut=overhead, lutram=lutram)
    brams = math.ceil(memory.bits / BRAM36_BITS)
    return ResourceVector(lut=2 * len(memory.read_ports), bram=brams)


@dataclass
class ModuleSynth:
    """Mapping result for one module definition (excluding children)."""

    name: str
    local: ResourceVector
    #: Including all instantiated children.
    total: ResourceVector
    logic_levels: int
    nets: int
    child_instances: dict[str, int] = field(default_factory=dict)


@dataclass
class SynthesisResult:
    """Whole-design synthesis output."""

    top: str
    per_module: dict[str, ModuleSynth]
    #: Instances of each unique module in the full hierarchy.
    instance_counts: dict[str, int]
    totals: ResourceVector
    #: Optimization mode: "global" (monolithic), "local" (partition), or
    #: "none".
    opt_mode: str
    #: LUTs the tool actually processed (per instance — the cost driver).
    work_luts: int

    def module_totals(self, name: str) -> ResourceVector:
        return self.per_module[name].total

    def logic_levels(self) -> int:
        return max(
            (m.logic_levels for m in self.per_module.values()), default=1)

    def total_nets(self) -> int:
        return sum(
            self.per_module[name].nets * count
            for name, count in self.instance_counts.items())


def _module_levels(module: Module) -> int:
    """Logic depth in LUT levels through this module's local assigns."""
    depth: dict[str, int] = {}
    sorter: TopologicalSorter = TopologicalSorter()
    for target, expr in module.assigns.items():
        deps = [s for s in expr.signals() if s in module.assigns]
        sorter.add(target, *deps)
    try:
        order = list(sorter.static_order())
    except CycleError:
        return 8  # cyclic (caught elsewhere); report something bounded
    for target in order:
        expr = module.assigns.get(target)
        if expr is None:
            continue
        base = max(
            (depth.get(s, 0) for s in expr.signals()), default=0)
        own = _expr_levels(expr)
        depth[target] = base + own
    inputs_to_regs = [
        _expr_levels(reg.next) + max(
            (depth.get(s, 0) for s in reg.next.signals()), default=0)
        for reg in module.registers.values() if reg.next is not None
    ]
    candidates = list(depth.values()) + inputs_to_regs
    return max(candidates, default=1) or 1


def _expr_levels(expr: Expr) -> int:
    """LUT depth of one expression tree (iterative post-order: deep
    linear reduction chains would overflow Python's recursion limit)."""
    levels: dict[int, int] = {}
    stack: list[tuple[Expr, bool]] = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in levels:
            continue
        if isinstance(node, (Const, Ref)):
            levels[id(node)] = 0
            continue
        kids = node.children()
        if not expanded:
            stack.append((node, True))
            stack.extend((kid, False) for kid in kids)
            continue
        inner = max((levels[id(kid)] for kid in kids), default=0)
        levels[id(node)] = inner + (1 if _node_cost(node) > 0 else 0)
    return levels[id(expr)]


def _synthesize_module(module: Module) -> tuple[ResourceVector, int, int]:
    """Local (non-hierarchical) resources, levels, and net count."""
    luts = 0
    for expr in module.assigns.values():
        luts += lut_cost(expr)
    ffs = 0
    for reg in module.registers.values():
        ffs += reg.width
        if reg.next is not None:
            luts += lut_cost(reg.next)
        if reg.enable is not None:
            luts += lut_cost(reg.enable)
        if reg.reset is not None:
            luts += lut_cost(reg.reset)
    vector = ResourceVector(lut=math.ceil(luts * PACKING_FACTOR), ff=ffs)
    for memory in module.memories.values():
        vector = vector + _memory_resources(memory)
        for rport in memory.read_ports:
            vector = vector + ResourceVector(lut=lut_cost(rport.addr))
        for wport in memory.write_ports:
            extra = (lut_cost(wport.addr) + lut_cost(wport.data)
                     + lut_cost(wport.enable))
            vector = vector + ResourceVector(lut=extra)
    nets = (len(module.assigns) + len(module.registers)
            + len(module.wires) + len(module.ports))
    return vector, _module_levels(module), nets


def synthesize_netlist(netlist, opt: str = "local") -> SynthesisResult:
    """Technology-map an already-flattened design.

    Zoomie's instrumentation (Debug Controller, monitors, pause buffers)
    edits the *netlist*, post-elaboration — the same place the real tool
    operates — so the flow needs a netlist-level mapping path. Produces a
    single pseudo-module result.
    """
    luts = 0
    ffs = 0
    for expr in netlist.assigns.values():
        luts += lut_cost(expr)
    for reg in netlist.registers.values():
        ffs += reg.width
        if reg.next is not None:
            luts += lut_cost(reg.next)
        if reg.enable is not None:
            luts += lut_cost(reg.enable)
        if reg.reset is not None:
            luts += lut_cost(reg.reset)
    vector = ResourceVector(lut=math.ceil(luts * PACKING_FACTOR), ff=ffs)
    for memory in netlist.memories.values():
        vector = vector + _memory_resources(memory)
    factor = {"global": GLOBAL_OPT_FACTOR, "local": LOCAL_OPT_FACTOR,
              "none": 1.0}[opt]
    vector = ResourceVector(
        lut=math.ceil(vector.lut * factor), ff=vector.ff,
        lutram=vector.lutram, bram=vector.bram)
    # Logic depth over the flat assign graph.
    depth: dict[str, int] = {}
    for target in netlist.comb_order():
        expr = netlist.assigns.get(target)
        if expr is None:
            continue
        base = max((depth.get(s, 0) for s in expr.signals()), default=0)
        depth[target] = base + _expr_levels(expr)
    reg_levels = [
        _expr_levels(reg.next) + max(
            (depth.get(s, 0) for s in reg.next.signals()), default=0)
        for reg in netlist.registers.values() if reg.next is not None
    ]
    levels = max(list(depth.values()) + reg_levels, default=1) or 1
    nets = len(netlist.signals)
    module_synth = ModuleSynth(
        name=netlist.name, local=vector, total=vector,
        logic_levels=levels, nets=nets)
    return SynthesisResult(
        top=netlist.name,
        per_module={netlist.name: module_synth},
        instance_counts={netlist.name: 1},
        totals=vector,
        opt_mode=opt,
        work_luts=vector.lut,
    )


def synthesize(top: Module, global_opt: bool = True,
               opt: str | None = None) -> SynthesisResult:
    """Synthesize a module hierarchy.

    ``opt`` selects the optimization scope per Table 1: ``"global"``
    (monolithic cross-module, the vendor default), ``"local"``
    (partition-local, what VTI's per-partition compiles get), or
    ``"none"``. The legacy ``global_opt`` bool maps True -> global,
    False -> none.
    """
    if opt is None:
        opt = "global" if global_opt else "none"
    if opt not in ("global", "local", "none"):
        raise ValueError(f"unknown optimization mode {opt!r}")
    # Collect unique modules and instance counts.
    unique: dict[str, Module] = {}
    counts: dict[str, int] = {}

    def visit(module: Module, multiplier: int) -> None:
        if module.name in unique and unique[module.name] is not module:
            # Same name, different definition: disambiguate by identity.
            raise ValueError(
                f"two distinct module definitions named {module.name!r}")
        unique[module.name] = module
        counts[module.name] = counts.get(module.name, 0) + multiplier
        for inst in module.instances.values():
            visit(inst.module, multiplier)

    visit(top, 1)

    per_module: dict[str, ModuleSynth] = {}

    def totals_of(module: Module, memo: dict[str, ResourceVector]
                  ) -> ResourceVector:
        if module.name in memo:
            return memo[module.name]
        local, levels, nets = _synthesize_module(module)
        total = local
        child_instances: dict[str, int] = {}
        for inst in module.instances.values():
            total = total + totals_of(inst.module, memo)
            child_instances[inst.module.name] = \
                child_instances.get(inst.module.name, 0) + 1
        per_module[module.name] = ModuleSynth(
            name=module.name, local=local, total=total,
            logic_levels=levels, nets=nets,
            child_instances=child_instances)
        memo[module.name] = total
        return total

    totals = totals_of(top, {})
    factor = {"global": GLOBAL_OPT_FACTOR, "local": LOCAL_OPT_FACTOR,
              "none": 1.0}[opt]
    if factor != 1.0:
        totals = ResourceVector(
            lut=math.ceil(totals.lut * factor),
            ff=totals.ff, lutram=totals.lutram, bram=totals.bram)

    return SynthesisResult(
        top=top.name,
        per_module=per_module,
        instance_counts=counts,
        totals=totals,
        opt_mode=opt,
        work_luts=totals.lut,
    )
