"""Routing model: net completion, congestion, and wirelength.

Abstract but load-bearing: congestion is derived from real placement
occupancy, drives both the timing model's delay penalty (why the paper's
95%-full SoC fails at 100 MHz) and the cost model's routing runtime, and
an overfull device fails with :class:`~repro.errors.RoutingError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RoutingError
from .place import PlacementResult
from .synth import SynthesisResult

#: Beyond this utilization the router gives up (ripup/retry exhausted).
ROUTABLE_LIMIT = 0.997


@dataclass
class RouteResult:
    """Routing outcome."""

    nets: int
    wirelength: float
    #: Peak per-SLR utilization, the congestion proxy in [0, 1).
    congestion: float
    slr_crossings: int
    success: bool = True


def route(synth: SynthesisResult,
          placement: PlacementResult) -> RouteResult:
    """Route a placed design; raises :class:`RoutingError` if hopeless."""
    congestion = placement.peak_utilization()
    if congestion > ROUTABLE_LIMIT:
        raise RoutingError(
            f"unroutable: peak SLR utilization "
            f"{congestion * 100:.1f}% exceeds "
            f"{ROUTABLE_LIMIT * 100:.1f}%")
    nets = synth.total_nets()
    # Congested designs detour: wirelength inflates superlinearly as the
    # router spreads around hotspots.
    detour = 1.0 + 2.0 * congestion ** 4
    return RouteResult(
        nets=nets,
        wirelength=placement.wirelength * detour,
        congestion=congestion,
        slr_crossings=placement.slr_crossings,
        success=True,
    )
