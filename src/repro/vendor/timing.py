"""Static timing analysis.

Per-clock-domain delay model::

    delay_ns = levels * LUT_NS + congestion_penalty + crossing_penalty

- ``levels``: LUT depth of the critical module (from synthesis);
- ``congestion_penalty``: routing detours explode near full utilization —
  ``K / (1 - u) - K`` — which is exactly why the paper's 95%-utilized
  manycore closes 50 MHz but fails 100 MHz while none of the top paths
  are in Zoomie's (shallow, lightly placed) logic;
- ``crossing_penalty``: fixed cost per SLR boundary on the path.

:func:`analyze_timing` also ranks per-module path delays so callers can
check *whose* logic dominates (paper Section 5.2: "none of the top 10
timing paths were in Zoomie-introduced code").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .route import RouteResult
from .synth import SynthesisResult

#: Delay per LUT level including local routing (ns).
LUT_NS = 0.45
#: Clock-to-out + setup overhead (ns).
FF_OVERHEAD_NS = 0.35
#: Congestion penalty scale (ns).
CONGESTION_K = 0.55
#: Per-SLR-crossing penalty (ns).
CROSSING_NS = 0.9


@dataclass(frozen=True)
class PathReport:
    """One (aggregated per-module) timing path."""

    module: str
    delay_ns: float

    def __str__(self) -> str:
        return f"{self.module}: {self.delay_ns:.2f} ns"


@dataclass
class TimingResult:
    """Timing closure summary."""

    #: domain -> achieved Fmax in MHz.
    fmax_mhz: dict[str, float]
    #: domain -> worst negative slack at the requested frequency (ns;
    #: positive = met).
    slack_ns: dict[str, float]
    met: bool
    paths: list[PathReport] = field(default_factory=list)

    def top_paths(self, count: int = 10) -> list[PathReport]:
        return self.paths[:count]


def congestion_penalty_ns(congestion: float) -> float:
    congestion = min(max(congestion, 0.0), 0.995)
    return CONGESTION_K * (1.0 / (1.0 - congestion) - 1.0)


def analyze_timing(synth: SynthesisResult, routed: RouteResult,
                   clocks: dict[str, float]) -> TimingResult:
    """Analyze a routed design against per-domain target frequencies
    (``clocks``: domain -> MHz)."""
    shared_penalty = (congestion_penalty_ns(routed.congestion)
                      + routed.slr_crossings * CROSSING_NS)

    paths = [
        PathReport(
            module=module.name,
            delay_ns=(module.logic_levels * LUT_NS + FF_OVERHEAD_NS
                      + shared_penalty))
        for module in synth.per_module.values()
    ]
    paths.sort(key=lambda p: p.delay_ns, reverse=True)
    critical_ns = paths[0].delay_ns if paths else FF_OVERHEAD_NS

    fmax: dict[str, float] = {}
    slack: dict[str, float] = {}
    met = True
    for domain, mhz in clocks.items():
        fmax[domain] = 1000.0 / critical_ns
        period_ns = 1000.0 / mhz
        slack[domain] = period_ns - critical_ns
        if slack[domain] < 0:
            met = False
    return TimingResult(fmax_mhz=fmax, slack_ns=slack, met=met, paths=paths)
