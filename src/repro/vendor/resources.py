"""FPGA resource accounting."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceVector:
    """Counts of the four resource kinds tracked throughout the flow
    (the same rows as the paper's Table 2)."""

    lut: int = 0
    ff: int = 0
    lutram: int = 0
    bram: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            lutram=self.lutram + other.lutram,
            bram=self.bram + other.bram,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """Multiply every count (rounding up — hardware is integral)."""
        import math
        return ResourceVector(
            lut=math.ceil(self.lut * factor),
            ff=math.ceil(self.ff * factor),
            lutram=math.ceil(self.lutram * factor),
            bram=math.ceil(self.bram * factor),
        )

    def times(self, count: int) -> "ResourceVector":
        return ResourceVector(
            lut=self.lut * count, ff=self.ff * count,
            lutram=self.lutram * count, bram=self.bram * count)

    def as_dict(self) -> dict[str, int]:
        return {"LUT": self.lut, "FF": self.ff,
                "LUTRAM": self.lutram, "BRAM": self.bram}

    def fits_in(self, capacity: dict[str, int]) -> bool:
        mine = self.as_dict()
        return all(mine[kind] <= capacity.get(kind, 0) for kind in mine)

    def max_ratio(self, capacity: dict[str, int]) -> float:
        """Largest utilization fraction across kinds (the binding one)."""
        mine = self.as_dict()
        ratios = [
            mine[kind] / capacity[kind]
            for kind in mine if capacity.get(kind)
        ]
        return max(ratios) if ratios else 0.0

    def total_cells(self) -> int:
        return self.lut + self.ff + self.lutram + self.bram

    @classmethod
    def from_dict(cls, data: dict[str, int]) -> "ResourceVector":
        return cls(lut=data.get("LUT", 0), ff=data.get("FF", 0),
                   lutram=data.get("LUTRAM", 0), bram=data.get("BRAM", 0))
