"""Integrated Logic Analyzer insertion.

The vendor's debug instrument the paper contrasts Zoomie against
(Sections 2.1, 5.5): probes must be chosen *before* compilation, capture
a bounded window of cycles into BRAM, add real resource and congestion
overhead, and — the core pain — changing the probe set means a full
recompile. :func:`insert_ila` models all of that; the ILA-based debug
loop lives in :mod:`repro.debug.ila_flow`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import FlowError
from .resources import ResourceVector
from .synth import BRAM36_BITS

#: Practical probe budget before the tool falls over (paper: "a very
#: limited subset of signals").
MAX_PROBE_BITS = 4096


@dataclass(frozen=True)
class IlaConfig:
    """One ILA core's configuration."""

    #: Probed signals: (flat name, width).
    probes: tuple[tuple[str, int], ...]
    #: Capture window depth in cycles.
    depth: int = 1024

    @property
    def probe_bits(self) -> int:
        return sum(width for _, width in self.probes)

    def __post_init__(self):
        if not self.probes:
            raise FlowError("an ILA needs at least one probe")
        if self.probe_bits > MAX_PROBE_BITS:
            raise FlowError(
                f"ILA probe budget exceeded: {self.probe_bits} bits "
                f"> {MAX_PROBE_BITS} (the vendor tool's practical limit)")


@dataclass
class IlaInsertion:
    """Result of inserting one or more ILAs."""

    configs: list[IlaConfig] = field(default_factory=list)
    resources: ResourceVector = field(default_factory=ResourceVector)
    #: Added congestion (fraction of device) from probe routing.
    congestion_delta: float = 0.0


def ila_resources(config: IlaConfig) -> ResourceVector:
    """Hardware cost of one ILA core.

    Capture storage is BRAM (``probe_bits x depth``); trigger comparators
    and pipeline registers cost roughly two LUTs and two FFs per probed
    bit, plus a fixed controller.
    """
    bits = config.probe_bits
    brams = math.ceil(bits * config.depth / BRAM36_BITS)
    return ResourceVector(
        lut=2 * bits + 150,
        ff=2 * bits + 120,
        bram=brams,
    )


def insert_ila(configs: list[IlaConfig],
               device_luts: int) -> IlaInsertion:
    """Aggregate the cost of a set of ILA cores on a device.

    ``congestion_delta`` models probe routing pressure: every probed bit
    must be hauled to the capture core, often across the die.
    """
    insertion = IlaInsertion(configs=list(configs))
    total_bits = 0
    for config in configs:
        insertion.resources = insertion.resources + ila_resources(config)
        total_bits += config.probe_bits
    insertion.congestion_delta = min(
        0.15, 3.0 * total_bits / max(device_luts, 1))
    return insertion
