"""Netlist optimization passes: constant folding, propagation, and
dead-code elimination.

These are the concrete mechanics behind the flow's "optimization" knobs
(Table 1): folding works on any netlist; *propagation across hierarchy
boundaries* is what the monolithic flow gets from flattening everything
(and what makes a one-line change invalidate the whole compile). The
passes are semantics-preserving — the test suite proves it by bounded
equivalence checking and randomized lockstep simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtl.expr import BinaryOp, Const, Expr, Mux, Ref, Slice
from ..rtl.netlist import Netlist


@dataclass
class OptReport:
    """What the passes did."""

    folded_nodes: int = 0
    propagated_constants: int = 0
    removed_assigns: int = 0
    removed_registers: int = 0
    removed_signals: int = 0

    def total_changes(self) -> int:
        return (self.folded_nodes + self.propagated_constants
                + self.removed_assigns + self.removed_registers)


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------

def fold_expr(expr: Expr, report: OptReport) -> Expr:
    """Bottom-up constant folding with algebraic identities."""
    kids = expr.children()
    if kids:
        new_kids = tuple(fold_expr(kid, report) for kid in kids)
        if any(a is not b for a, b in zip(kids, new_kids)):
            expr = expr.rebuild(new_kids)

    # Pure constant subtree: evaluate it.
    if not isinstance(expr, (Const, Ref)) and not expr.signals():
        report.folded_nodes += 1
        return Const(expr.eval({}), expr.width)

    # Identities.
    if isinstance(expr, BinaryOp):
        a, b = expr.a, expr.b
        if isinstance(b, Const):
            if expr.op in ("+", "-", "|", "^", "<<", ">>") and b.value == 0:
                report.folded_nodes += 1
                return a
            if expr.op == "&" and b.value == 0:
                report.folded_nodes += 1
                return Const(0, expr.width)
            if expr.op == "&" and b.value == (1 << b.width) - 1:
                report.folded_nodes += 1
                return a
            if expr.op == "&&" and b.value == 1:
                report.folded_nodes += 1
                return a
            if expr.op in ("&&",) and b.value == 0:
                report.folded_nodes += 1
                return Const(0, 1)
            if expr.op == "||" and b.value == 0:
                report.folded_nodes += 1
                return a
            if expr.op == "||" and b.value == 1:
                report.folded_nodes += 1
                return Const(1, 1)
        if isinstance(a, Const):
            if expr.op in ("+", "|", "^") and a.value == 0:
                report.folded_nodes += 1
                return b
            if expr.op == "&" and a.value == 0:
                report.folded_nodes += 1
                return Const(0, expr.width)
            if expr.op == "&&" and a.value == 0:
                report.folded_nodes += 1
                return Const(0, 1)
            if expr.op == "&&" and a.value == 1:
                report.folded_nodes += 1
                return b
            if expr.op == "||" and a.value == 1:
                report.folded_nodes += 1
                return Const(1, 1)
            if expr.op == "||" and a.value == 0:
                report.folded_nodes += 1
                return b
    if isinstance(expr, Mux) and isinstance(expr.sel, Const):
        report.folded_nodes += 1
        return expr.if_true if expr.sel.value else expr.if_false
    if isinstance(expr, Slice) and isinstance(expr.a, Slice):
        inner = expr.a
        report.folded_nodes += 1
        return Slice(inner.a, inner.low + expr.high, inner.low + expr.low)
    if isinstance(expr, Slice) and expr.low == 0 \
            and expr.width == expr.a.width:
        report.folded_nodes += 1
        return expr.a
    return expr


# ---------------------------------------------------------------------------
# constant propagation
# ---------------------------------------------------------------------------

def _propagate(netlist: Netlist, report: OptReport) -> None:
    """Replace references to constant-driven wires with the constants."""
    changed = True
    while changed:
        changed = False
        constants = {
            name: expr for name, expr in netlist.assigns.items()
            if isinstance(expr, Const) and name not in netlist.outputs
        }
        if not constants:
            break

        def substitute(expr: Expr) -> Expr:
            def fn(ref: Ref):
                if ref.name in constants:
                    return constants[ref.name]
                return None
            return expr.substitute(fn)

        for name in list(netlist.assigns):
            before = netlist.assigns[name]
            after = substitute(before)
            if after is not before:
                netlist.assigns[name] = fold_expr(after, report)
                report.propagated_constants += 1
                changed = True
        for reg in netlist.registers.values():
            for attr in ("next", "enable", "reset"):
                expr = getattr(reg, attr)
                if expr is None:
                    continue
                after = substitute(expr)
                if after is not expr:
                    setattr(reg, attr, fold_expr(after, report))
                    report.propagated_constants += 1
                    changed = True
        for memory in netlist.memories.values():
            for port in memory.read_ports:
                port.addr = substitute(port.addr)
                if port.enable is not None:
                    port.enable = substitute(port.enable)
            for port in memory.write_ports:
                port.addr = substitute(port.addr)
                port.data = substitute(port.data)
                port.enable = substitute(port.enable)


# ---------------------------------------------------------------------------
# dead code elimination
# ---------------------------------------------------------------------------

def _live_set(netlist: Netlist) -> set[str]:
    """Signals transitively reachable from outputs and memory writes."""
    deps: dict[str, set[str]] = {}
    for name, expr in netlist.assigns.items():
        deps[name] = expr.signals()
    for name, reg in netlist.registers.items():
        signals: set[str] = set()
        for attr in (reg.next, reg.enable, reg.reset):
            if attr is not None:
                signals |= attr.signals()
        deps[name] = signals
    for memory in netlist.memories.values():
        for port in memory.read_ports:
            signals = set(port.addr.signals())
            if port.enable is not None:
                signals |= port.enable.signals()
            signals.add(memory.name)
            deps[port.name] = signals

    roots: set[str] = set(netlist.outputs)
    # Memory writes keep their support alive (state side effects), and
    # live memories keep their write ports' support alive; start with
    # all memories as potential roots and prune unread ones below only
    # if nothing reads them and no output depends on them. A memory with
    # any read port that is live keeps its writes.
    live: set[str] = set()
    frontier = list(roots)
    while frontier:
        name = frontier.pop()
        if name in live:
            continue
        live.add(name)
        for dep in deps.get(name, ()):
            if dep not in live:
                frontier.append(dep)
        if name in netlist.memories:
            memory = netlist.memories[name]
            for port in memory.write_ports:
                for dep in (port.addr.signals() | port.data.signals()
                            | port.enable.signals()):
                    if dep not in live:
                        frontier.append(dep)
    return live


def _eliminate_dead(netlist: Netlist, report: OptReport) -> None:
    live = _live_set(netlist)
    keep = live | netlist.inputs | netlist.outputs
    for name in list(netlist.assigns):
        if name not in keep:
            del netlist.assigns[name]
            report.removed_assigns += 1
    for name in list(netlist.registers):
        if name not in keep:
            del netlist.registers[name]
            report.removed_registers += 1
    for name in list(netlist.memories):
        if name not in keep:
            memory = netlist.memories.pop(name)
            for port in memory.read_ports:
                netlist.signals.pop(port.name, None)
            report.removed_registers += 1
    for name in list(netlist.signals):
        if name not in keep and name not in netlist.memories \
                and not any(name == p.name
                            for m in netlist.memories.values()
                            for p in m.read_ports):
            netlist.signals.pop(name)
            netlist.owner.pop(name, None)
            report.removed_signals += 1


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def optimize_netlist(netlist: Netlist) -> OptReport:
    """Run fold -> propagate -> DCE in place; returns the report."""
    report = OptReport()
    for name in list(netlist.assigns):
        netlist.assigns[name] = fold_expr(netlist.assigns[name], report)
    for reg in netlist.registers.values():
        if reg.next is not None:
            reg.next = fold_expr(reg.next, report)
        if reg.enable is not None:
            reg.enable = fold_expr(reg.enable, report)
        if reg.reset is not None:
            reg.reset = fold_expr(reg.reset, report)
    _propagate(netlist, report)
    _eliminate_dead(netlist, report)
    netlist.validate()
    return report
