"""Human-readable flow reports (Table 2 / timing-summary formatting)."""

from __future__ import annotations

from .flow import CompileResult
from .cost import format_duration


def format_utilization_table(result: CompileResult) -> str:
    """Render utilization in the paper's Table 2 layout."""
    used = result.used_resources()
    lines = [
        f"Resource usage of {result.name!r} on {result.device.name}",
        f"{'':10s} {'Utilization':>12s} {'Percentage':>11s}",
    ]
    for kind in ("LUT", "LUTRAM", "FF", "BRAM"):
        percent = result.utilization.get(kind, 0.0)
        lines.append(f"{kind:10s} {used.get(kind, 0):>12,d} {percent:>10.2f}%")
    return "\n".join(lines)


def format_timing_summary(result: CompileResult, top_paths: int = 10) -> str:
    lines = [f"Timing summary for {result.name!r} "
             f"({'MET' if result.timing.met else 'FAILED'})"]
    for domain, fmax in sorted(result.timing.fmax_mhz.items()):
        slack = result.timing.slack_ns[domain]
        lines.append(
            f"  {domain}: Fmax {fmax:7.1f} MHz, slack {slack:+.2f} ns")
    lines.append(f"  top {top_paths} paths:")
    for path in result.timing.top_paths(top_paths):
        lines.append(f"    {path}")
    return "\n".join(lines)


def format_compile_summary(result: CompileResult) -> str:
    lines = [
        f"{result.flow} compile of {result.name!r}: "
        f"{format_duration(result.total_seconds)}",
    ]
    for stage in ("synth", "place", "route", "bitgen"):
        if stage in result.seconds:
            lines.append(
                f"  {stage:7s} {format_duration(result.seconds[stage])}")
    lines.append(
        f"  peak SLR utilization "
        f"{result.placement.peak_utilization() * 100:.1f}%")
    return "\n".join(lines)
