"""The vendor FPGA toolchain model ("Vivado").

Implements the monolithic compilation flow the paper contrasts VTI
against (Table 1): whole-design synthesis with cross-module optimization,
region-constrained placement, congestion-aware routing, static timing
analysis, ILA insertion, bitstream generation, and the vendor's own
(weak) incremental mode. Wall-clock costs come from
:mod:`~repro.vendor.cost`, a model calibrated to the paper's published
compile times and driven by real work metrics of these stages.
"""

from .resources import ResourceVector
from .synth import ModuleSynth, SynthesisResult, synthesize
from .place import PlacementResult, Region, place
from .route import RouteResult, route
from .timing import TimingResult, analyze_timing
from .ila import IlaConfig, insert_ila
from .flow import CompileResult, VivadoFlow
from .reports import format_utilization_table

__all__ = [
    "CompileResult",
    "IlaConfig",
    "ModuleSynth",
    "PlacementResult",
    "Region",
    "ResourceVector",
    "RouteResult",
    "SynthesisResult",
    "TimingResult",
    "VivadoFlow",
    "analyze_timing",
    "format_utilization_table",
    "insert_ila",
    "place",
    "route",
    "synthesize",
]
