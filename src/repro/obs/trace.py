"""Span-based tracing with two clocks per span.

Zoomie sessions live in two time bases at once: the host's wall clock
(what the Python process actually spends) and **modeled hardware
seconds** (what the emulated JTAG channel, simulated design, and
compile-time model charge — the numbers behind the paper's Table 3 and
Figure 7). A profiler that shows only one of them is lying about the
other, so every :class:`Span` here carries both:

- ``wall_seconds`` — measured with ``time.perf_counter`` around the
  span body;
- ``modeled_seconds`` — accumulated explicitly via
  :meth:`Span.add_modeled` by the instrumented layers (transport batch
  seconds, simulated picoseconds, VTI stage seconds), and rolled up
  into the parent when the span finishes, so both clocks are inclusive.

Tracing is **off by default** and must stay near-free when disabled:
hot call sites guard on :attr:`Tracer.enabled` (one attribute read) and
:meth:`Tracer.span` returns one shared no-op context manager without
allocating a span. ``benchmarks/bench_obs_overhead.py`` pins the
disabled-path overhead below 3% on the fused-simulator hot loop.

Finished spans land in a bounded ring buffer (oldest evicted first) and
export as:

- Chrome-trace / Perfetto JSON (:meth:`Tracer.export_chrome` — load the
  file at https://ui.perfetto.dev or ``chrome://tracing``);
- a human-readable indented tree (:meth:`Tracer.tree`).

The tracer is deliberately single-threaded (like the debugger it
instruments); there is one process-global instance from
:func:`get_tracer`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Span", "Tracer", "get_tracer"]


@dataclass
class Span:
    """One traced operation, carrying both clocks."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    depth: int = 0
    #: ``time.perf_counter()`` at start/end (host wall clock).
    start_wall: float = 0.0
    end_wall: Optional[float] = None
    #: Modeled hardware seconds charged to this span, inclusive of
    #: finished children (each child rolls its total into its parent).
    modeled_seconds: float = 0.0
    attrs: dict = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        end = self.end_wall if self.end_wall is not None \
            else time.perf_counter()
        return end - self.start_wall

    @property
    def finished(self) -> bool:
        return self.end_wall is not None

    def set(self, **attrs) -> "Span":
        """Attach key/value attributes (JSON-safe values, please)."""
        self.attrs.update(attrs)
        return self

    def add_modeled(self, seconds: float) -> "Span":
        """Charge modeled hardware seconds to this span."""
        self.modeled_seconds += seconds
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._finish(self)

    # Injected by Tracer.span(); declared for clarity.
    tracer: "Tracer" = None  # type: ignore[assignment]


class _NoopSpan:
    """The shared disabled-path span: every method is a no-op.

    One instance exists per process; entering it allocates nothing, so
    ``with tracer.span(...)`` costs a method call and an identity
    ``__enter__`` when tracing is off. The hottest call sites avoid
    even that by guarding on ``tracer.enabled`` first.
    """

    __slots__ = ()

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def add_modeled(self, seconds: float) -> "_NoopSpan":
        return self

    def __enter__(self) -> None:
        # Yield None so call sites can distinguish "no span" cheaply
        # (``if sp is not None: sp.set(...)``).
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Bounded-retention span recorder with a context-manager API.

    ``capacity`` bounds how many *finished* spans are retained; the
    active span stack is unbounded (it is as deep as the call stack).
    """

    def __init__(self, capacity: int = 4096, enabled: bool = False):
        self.enabled = enabled
        self.capacity = capacity
        #: Finished spans, oldest first (ring buffer semantics).
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1
        self._dropped = 0
        #: Callbacks fired with each finished span (the structured
        #: logger hooks in here for span-correlated events).
        self.on_finish: list[Callable[[Span], None]] = []

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Enable tracing (keeps previously recorded spans)."""
        self.enabled = True

    def stop(self) -> None:
        """Disable tracing; open spans still finish and record."""
        self.enabled = False

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Finished spans evicted by the ring buffer so far."""
        return self._dropped

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, /, **attrs):
        """Open a span as a context manager.

        Disabled: returns the shared :data:`NOOP_SPAN` — no allocation.
        ``name`` is positional-only so an attribute may also be called
        ``name`` (e.g. the poked input's signal name).
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            start_wall=time.perf_counter(),
            attrs=attrs,
        )
        span.tracer = self
        self._next_id += 1
        self._stack.append(span)
        return span

    def add_modeled(self, seconds: float) -> None:
        """Charge modeled seconds to the innermost open span, if any."""
        if self._stack:
            self._stack[-1].modeled_seconds += seconds

    def _finish(self, span: Span) -> None:
        span.end_wall = time.perf_counter()
        # Out-of-order exits (generators, re-raised frames) still
        # unwind correctly: pop through to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        # Inclusive modeled clock: roll this span's total into its
        # parent, mirroring how wall time nests naturally.
        if self._stack and span.parent_id == self._stack[-1].span_id:
            self._stack[-1].modeled_seconds += span.modeled_seconds
        self.spans.append(span)
        if len(self.spans) > self.capacity:
            del self.spans[: len(self.spans) - self.capacity]
            self._dropped += 1
        for callback in self.on_finish:
            callback(span)

    def traced(self, name: Optional[str] = None, **attrs):
        """Decorator form: trace every call of the wrapped function."""

        def decorate(fn):
            label = name or fn.__qualname__

            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                with self.span(label, **attrs):
                    return fn(*args, **kwargs)

            wrapper.__name__ = fn.__name__
            wrapper.__qualname__ = fn.__qualname__
            wrapper.__doc__ = fn.__doc__
            wrapper.__wrapped__ = fn
            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def export_chrome(self) -> list[dict]:
        """Finished spans as Chrome-trace "X" (complete) events.

        The returned list serializes to a JSON array that Perfetto and
        ``chrome://tracing`` load directly. Both clocks ride along:
        ``ts``/``dur`` are wall microseconds; ``args`` carries
        ``modeled_seconds`` (and every span attribute).
        """
        events = []
        for span in self.spans:
            if not span.finished:
                continue
            args = {"modeled_seconds": round(span.modeled_seconds, 9)}
            args.update(span.attrs)
            events.append({
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": span.start_wall * 1e6,
                "dur": (span.end_wall - span.start_wall) * 1e6,
                "args": args,
            })
        return events

    def export_chrome_json(self, path=None) -> str:
        """Chrome-trace JSON text; also written to ``path`` if given."""
        text = json.dumps(self.export_chrome(), indent=1)
        if path is not None:
            with open(path, "w") as stream:
                stream.write(text + "\n")
        return text

    def tree(self) -> str:
        """Human dump: one indented line per span, both clocks.

        The tree is rebuilt from parent links over the *retained* spans
        rather than trusting each span's recorded depth: after ring
        eviction a span's parent may be gone, and indenting such an
        orphan at its original depth silently glues it under whatever
        line happens to precede it. Orphans render under a synthetic
        ``<evicted>`` root instead, so long sessions with small rings
        keep every retained subtree visible and honestly labeled.
        """
        if not self.spans:
            return "(no spans recorded)"
        retained = {span.span_id for span in self.spans}
        children: dict[Optional[int], list[Span]] = {}
        orphans: list[Span] = []
        # Finish order puts children before parents; start order is the
        # pre-order walk a tree dump wants.
        for span in sorted(self.spans,
                           key=lambda s: (s.start_wall, s.span_id)):
            if span.parent_id is not None \
                    and span.parent_id not in retained:
                orphans.append(span)
            else:
                children.setdefault(span.parent_id, []).append(span)
        lines = []

        def render(span: Span, depth: int) -> None:
            attrs = " ".join(
                f"{key}={value!r}" for key, value in span.attrs.items())
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"wall={span.wall_seconds * 1e3:.3f}ms  "
                f"modeled={span.modeled_seconds:.6f}s"
                + (f"  [{attrs}]" if attrs else ""))
            for child in children.get(span.span_id, ()):
                render(child, depth + 1)

        for root in children.get(None, ()):
            render(root, 0)
        if orphans:
            lines.append(f"<evicted>  ({len(orphans)} orphaned span(s) "
                         f"whose parents left the ring buffer)")
            for orphan in orphans:
                render(orphan, 1)
        if self._dropped:
            lines.append(f"... ({self._dropped} eviction(s) — older "
                         f"spans dropped by the ring buffer)")
        return "\n".join(lines)

    def find(self, name: str) -> list[Span]:
        """Finished spans with the given name (test/assertion helper)."""
        return [span for span in self.spans if span.name == name]


#: The process-global tracer every instrumented layer guards on. The
#: object is mutated in place (never replaced) so modules may bind it
#: at import time.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER
