"""Always-on flight recorder: the black box under the debugger.

Tracing (:mod:`.trace`) is opt-in and costs real memory; metrics
(:mod:`.metrics`) are always on but carry no ordering. The flight
recorder fills the gap between them the way an aircraft FDR does: a
bounded ring of the most recent *notes* — debug commands, transport
batches, simulator runs, VTI compiles, chaos injections, supervisor
events — cheap enough to leave on unconditionally (one attribute check,
one small dict, one deque append per note; the <5% gate in
``benchmarks/bench_obs_overhead.py`` holds it to that), even with the
full tracer off.

When something goes wrong the ring is **dumped automatically**. Four
trigger classes are wired through the stack:

- ``debug.timeout`` — a :class:`~repro.errors.DebugTimeoutError` from
  the command watchdog or a supervised-I/O modeled deadline;
- ``breaker.open`` — a :class:`~repro.chaos.supervise.CircuitBreaker`
  transitioning to OPEN;
- ``debug.exception`` — any other exception escaping a debugger
  command verb;
- ``journal.corrupt`` — a :class:`~repro.errors.JournalCorruptError`
  surfaced while replaying the write-ahead journal.

A dump is a self-contained JSON document: the triggering event (always
the *last* record in the ring), the full note ring, the sticky
low-churn event ring (chaos/supervisor notes survive batch chatter),
the structured-log tail, recent tracer spans (when tracing was on),
a metrics snapshot, and counter deltas since the recorder's last
rebase. ``zoomie obs bundle`` (:mod:`.bundle`) archives the latest
dump alongside the health report and BENCH trajectory.

Two rings, not one: high-frequency notes (a transport batch per
command, a simulator run per step) would evict a once-per-campaign
chaos injection long before anyone reads the dump, so notes whose
``kind`` is in :data:`FlightRecorder.STICKY_KINDS` are *also* kept in
a separate, slower-moving ring.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Callable, Optional

from .log import get_logger
from .metrics import Counter, MetricsRegistry, get_registry
from .trace import get_tracer

__all__ = ["FLIGHT_VERSION", "FlightRecorder", "get_flight_recorder"]

#: Bumped whenever the dump document shape changes; consumers (the
#: bundle loader, external tooling) gate on it.
FLIGHT_VERSION = 1


class FlightRecorder:
    """Bounded always-on ring of recent stack events, auto-dumped.

    Mirrors the tracer/registry singletons: one process-global instance
    from :func:`get_flight_recorder`, mutated in place and never
    replaced, so modules may bind it at import time. Construct private
    instances (with their own ``registry``) for scoped tests.
    """

    #: Note kinds that are also retained in the slow-moving ``events``
    #: ring so rare, important records outlive batch chatter.
    STICKY_KINDS = frozenset({"chaos", "supervise", "trigger", "journal"})

    def __init__(self, capacity: int = 512, events_capacity: int = 256,
                 log_tail: int = 64, span_tail: int = 128,
                 registry: Optional[MetricsRegistry] = None):
        self.enabled = True
        self.capacity = capacity
        self.log_tail = log_tail
        self.span_tail = span_tail
        #: High-churn ring: every note lands here, oldest evicted first.
        self.records: deque = deque(maxlen=capacity)
        #: Low-churn ring: only STICKY_KINDS notes land here.
        self.events: deque = deque(maxlen=events_capacity)
        #: Directory auto-dumps are written into (None = memory only).
        self.dump_dir: Optional[Path] = None
        #: The most recent dump document (tests and ``obs bundle``).
        self.last_dump: Optional[dict] = None
        #: Callbacks fired with each dump document (campaign tests
        #: collect dumps here without touching the filesystem).
        self.on_dump: list[Callable[[dict], None]] = []
        self.dump_count = 0
        self._registry = registry
        self._seq = 0
        self._dumping = False
        self._metrics_base: dict[str, float] = {}

    # ------------------------------------------------------------------
    # recording (the hot path)
    # ------------------------------------------------------------------

    def note(self, kind: str, name: str, **fields) -> Optional[dict]:
        """Record one event; ``fields`` must be JSON-safe scalars.

        This is called per debug command, per transport batch, and per
        simulator run — keep it one allocation and two appends. Field
        names must not collide with ``seq``/``wall``/``kind``/``name``.
        """
        if not self.enabled:
            return None
        self._seq += 1
        record = {"seq": self._seq, "wall": time.perf_counter(),
                  "kind": kind, "name": name}
        if fields:
            record.update(fields)
        self.records.append(record)
        if kind in self.STICKY_KINDS:
            self.events.append(record)
        return record

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------

    def _resolve_registry(self,
                          registry: Optional[MetricsRegistry] = None
                          ) -> MetricsRegistry:
        if registry is not None:
            return registry
        if self._registry is not None:
            return self._registry
        return get_registry()

    def rebase_metrics(self,
                       registry: Optional[MetricsRegistry] = None) -> None:
        """Snapshot counter values; dumps report deltas since here."""
        registry = self._resolve_registry(registry)
        self._metrics_base = {
            name: registry.get(name).value for name in registry.names()
            if isinstance(registry.get(name), Counter)}

    def _metric_deltas(self, registry: MetricsRegistry) -> dict[str, float]:
        deltas = {}
        for name in registry.names():
            instrument = registry.get(name)
            if not isinstance(instrument, Counter):
                continue
            delta = instrument.value - self._metrics_base.get(name, 0)
            if delta:
                deltas[name] = delta
        return deltas

    def snapshot(self, trigger: Optional[dict] = None,
                 registry: Optional[MetricsRegistry] = None) -> dict:
        """The dump document for the recorder's current state."""
        registry = self._resolve_registry(registry)
        tracer = get_tracer()
        spans = [
            {"name": span.name, "span_id": span.span_id,
             "parent_id": span.parent_id,
             "wall_seconds": round(span.wall_seconds, 9),
             "modeled_seconds": round(span.modeled_seconds, 9),
             "attrs": dict(span.attrs)}
            for span in tracer.spans[-self.span_tail:]]
        return {
            "format": "zoomie-flight",
            "version": FLIGHT_VERSION,
            "trigger": trigger,
            "records": list(self.records),
            "events": list(self.events),
            "log_tail": list(get_logger().records[-self.log_tail:]),
            "spans": spans,
            "metrics": registry.as_dict(),
            "metric_deltas": self._metric_deltas(registry),
        }

    def trigger(self, name: str,
                registry: Optional[MetricsRegistry] = None,
                **fields) -> Optional[dict]:
        """Record the triggering event and dump the recorder.

        The trigger note is appended *before* the snapshot, so it is
        always the final record of the dump — post-mortem readers scan
        backwards from it. Re-entrant triggers (an exception raised by
        a dump callback) are swallowed: one crash, one dump.
        """
        if not self.enabled or self._dumping:
            return None
        self._dumping = True
        try:
            record = self.note("trigger", name, **fields)
            dump = self.snapshot(trigger=record, registry=registry)
            self.last_dump = dump
            self.dump_count += 1
            resolved = self._resolve_registry(registry)
            resolved.counter("flight.dumps").inc()
            resolved.counter(f"flight.dumps.{name}").inc()
            if self.dump_dir is not None:
                path = (Path(self.dump_dir) /
                        f"flight-{self._seq:06d}-"
                        f"{name.replace('.', '-')}.json")
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(path, "w") as stream:
                    json.dump(dump, stream, indent=1, default=repr)
                    stream.write("\n")
                dump["path"] = str(path)
            for callback in list(self.on_dump):
                callback(dump)
            return dump
        finally:
            self._dumping = False

    # ------------------------------------------------------------------
    # maintenance / reading
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop recorded state (tests); leaves ``enabled`` untouched."""
        self.records.clear()
        self.events.clear()
        self.last_dump = None
        self.dump_count = 0
        self._metrics_base = {}

    def describe(self) -> str:
        """Human summary of the ring for the CLI."""
        lines = [f"flight recorder: {'on' if self.enabled else 'off'}, "
                 f"{len(self.records)}/{self.capacity} record(s), "
                 f"{len(self.events)} sticky event(s), "
                 f"{self.dump_count} dump(s)"]
        for record in list(self.records)[-12:]:
            extras = " ".join(
                f"{key}={value!r}" for key, value in record.items()
                if key not in ("seq", "wall", "kind", "name"))
            lines.append(f"  #{record['seq']} {record['kind']}."
                         f"{record['name']}"
                         + (f"  [{extras}]" if extras else ""))
        return "\n".join(lines)


#: The process-global recorder every instrumented layer binds at import
#: time (mutated in place, never replaced — same contract as the
#: tracer and registry singletons).
_FLIGHT = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return _FLIGHT
