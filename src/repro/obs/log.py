"""Structured JSONL logging with span correlation.

One event per line, each a self-contained JSON object::

    {"event": "transport.retry", "level": "warn", "seq": 12,
     "span_id": 44, "span": "jtag.batch", "attempt": 2, ...}

``span_id``/``span`` tie an event to the innermost open tracer span, so
a log stream and an exported trace cross-reference without guessing.
Timestamps are the tracer's wall clock (``time.perf_counter`` seconds,
monotonic within a process) — good for ordering and deltas, which is
what debug-session forensics need.

Logging is off by default: with no sink installed, :meth:`emit` is one
attribute test. Sinks may be a path (append), a file object, or any
``callable(str)``; an in-memory ring of recent records is kept for the
CLI and tests regardless of sink.
"""

from __future__ import annotations

import io
import json
import time
from pathlib import Path
from typing import Callable, Optional, Union

from .trace import get_tracer

__all__ = ["StructuredLogger", "get_logger"]

LEVELS = ("debug", "info", "warn", "error")


class StructuredLogger:
    """JSONL event emitter, span-correlated, off until given a sink."""

    def __init__(self, retain: int = 1024):
        self._sink: Optional[Callable[[str], None]] = None
        self._owned_stream: Optional[io.TextIOBase] = None
        self.retain = retain
        #: Recent event dicts (ring buffer), newest last.
        self.records: list[dict] = []
        self._seq = 0

    @property
    def enabled(self) -> bool:
        return self._sink is not None

    # ------------------------------------------------------------------
    # sink management
    # ------------------------------------------------------------------

    def open(self, sink: Union[str, Path, io.TextIOBase,
                               Callable[[str], None]]) -> None:
        """Install a sink: a path (appended), stream, or callable."""
        self.close()
        if isinstance(sink, (str, Path)):
            stream = open(sink, "a")
            self._owned_stream = stream
            self._sink = lambda line: (stream.write(line + "\n"),
                                       stream.flush())
        elif callable(sink):
            self._sink = sink
        else:
            self._sink = lambda line: (sink.write(line + "\n"),
                                       sink.flush())

    def close(self) -> None:
        if self._owned_stream is not None:
            self._owned_stream.close()
            self._owned_stream = None
        self._sink = None

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------

    def emit(self, event: str, level: str = "info", **fields) -> None:
        """Record one structured event (no-op with no sink installed)."""
        if self._sink is None:
            return
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; use {LEVELS}")
        record = {
            "event": event,
            "level": level,
            "seq": self._seq,
            "wall": time.perf_counter(),
        }
        self._seq += 1
        current = get_tracer().current()
        if current is not None:
            record["span_id"] = current.span_id
            record["span"] = current.name
        record.update(fields)
        self.records.append(record)
        if len(self.records) > self.retain:
            del self.records[: len(self.records) - self.retain]
        self._sink(json.dumps(record, sort_keys=True, default=str))

    def debug(self, event: str, **fields) -> None:
        self.emit(event, level="debug", **fields)

    def info(self, event: str, **fields) -> None:
        self.emit(event, level="info", **fields)

    def warn(self, event: str, **fields) -> None:
        self.emit(event, level="warn", **fields)

    def error(self, event: str, **fields) -> None:
        self.emit(event, level="error", **fields)


#: Process-global logger (mutated in place, never replaced).
_LOGGER = StructuredLogger()


def get_logger() -> StructuredLogger:
    return _LOGGER
