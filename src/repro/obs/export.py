"""Prometheus text-exposition export of a metrics registry.

The registry's dotted names map onto the Prometheus data model the
standard way: ``transport.batch_seconds`` becomes
``zoomie_transport_batch_seconds``; counters get the ``_total``
suffix; log-bucket histograms export cumulative ``_bucket{le=...}``
series plus ``_sum``/``_count``, exactly the shape ``histogram_quantile``
expects on the scrape side. No client library, no HTTP server — the
output is the plain text-exposition format (version 0.0.4), which the
future multi-tenant session server can serve per tenant registry and
which tests can assert on as a string.
"""

from __future__ import annotations

import re
from typing import Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, \
    get_registry

__all__ = ["prometheus_text"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(registry: Optional[MetricsRegistry] = None,
                    namespace: str = "zoomie", path=None) -> str:
    """The registry in Prometheus text-exposition format.

    Also written to ``path`` when given. Unknown instrument types are
    skipped rather than crashing the scrape.
    """
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for name in registry.names():
        instrument = registry.get(name)
        metric = f"{namespace}_{_sanitize(name)}"
        if isinstance(instrument, Counter):
            lines.append(f"# HELP {metric}_total Zoomie counter "
                         f"{name}")
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# HELP {metric} Zoomie gauge {name}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# HELP {metric} Zoomie histogram {name}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(instrument.bounds,
                                    instrument.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_fmt(bound)}"}} '
                    f'{cumulative}')
            cumulative += instrument.counts[-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_fmt(instrument.total)}")
            lines.append(f"{metric}_count {instrument.count}")
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w") as stream:
            stream.write(text)
    return text
