"""Post-mortem bundles: one archive with everything a debugger needs.

``zoomie obs bundle FILE`` (and :func:`write_bundle`) packs the
current observability state into a single zip with a **versioned
manifest** — the FPGA equivalent of a core dump plus `sosreport`:

- ``manifest.json`` — format name, :data:`BUNDLE_VERSION`, section
  list, and the triggering flight event (if any), so tooling can
  reject bundles it does not understand before reading anything else;
- ``flight.json`` — the latest flight-recorder dump (or a live
  snapshot when nothing has triggered);
- ``metrics.json`` / ``prometheus.txt`` — the registry snapshot in
  both machine shapes;
- ``health.json`` — a :class:`~repro.obs.health.HealthReport`;
- ``trace.json`` — Chrome-trace events for whatever spans the ring
  still holds;
- ``journal_tail.txt`` — the last lines of the write-ahead command
  journal (optional);
- ``config.json`` — caller-supplied session/config context (optional);
- ``bench/BENCH_*.json`` — the benchmark trajectory (optional), so a
  perf regression report travels with the crash it accompanied.

:func:`load_bundle` reverses the packing for tests and tooling; the
round-trip (write, load, find the triggering event / health report /
metrics snapshot) is part of the acceptance gate for this layer.
"""

from __future__ import annotations

import json
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .export import prometheus_text
from .flight import FlightRecorder, get_flight_recorder
from .health import HealthEngine, HealthReport
from .metrics import MetricsRegistry, get_registry
from .trace import get_tracer

__all__ = ["BUNDLE_FORMAT", "BUNDLE_VERSION", "Bundle", "load_bundle",
           "write_bundle"]

BUNDLE_FORMAT = "zoomie-obs-bundle"
#: Bump on any manifest/section shape change.
BUNDLE_VERSION = 1

#: How many journal lines ride along in the bundle tail.
JOURNAL_TAIL_LINES = 64


@dataclass
class Bundle:
    """A loaded bundle: the manifest plus parsed sections."""

    path: Path
    manifest: dict
    sections: dict[str, object]

    def section(self, name: str):
        return self.sections.get(name)


def write_bundle(path, registry: Optional[MetricsRegistry] = None,
                 flight: Optional[FlightRecorder] = None,
                 health: Optional[HealthReport] = None,
                 journal_path=None, config: Optional[dict] = None,
                 bench_dir=None) -> Path:
    """Write the post-mortem archive; returns its path.

    ``health`` defaults to a fresh full-history evaluation over
    ``registry``; pass a report to preserve the windowed evaluation a
    caller already ran. ``bench_dir`` is scanned for ``BENCH_*.json``
    trajectory files.
    """
    registry = registry if registry is not None else get_registry()
    flight = flight if flight is not None else get_flight_recorder()
    if health is None:
        health = HealthEngine(registry).evaluate()
    dump = flight.last_dump if flight.last_dump is not None \
        else flight.snapshot(registry=registry)
    sections: dict[str, object] = {
        "flight.json": dump,
        "metrics.json": registry.as_dict(),
        "health.json": health.as_dict(),
        "trace.json": get_tracer().export_chrome(),
    }
    text_sections: dict[str, str] = {
        "prometheus.txt": prometheus_text(registry),
    }
    if config is not None:
        sections["config.json"] = config
    if journal_path is not None and Path(journal_path).exists():
        lines = Path(journal_path).read_text().splitlines()
        text_sections["journal_tail.txt"] = \
            "\n".join(lines[-JOURNAL_TAIL_LINES:]) + "\n"
    if bench_dir is not None:
        for bench in sorted(Path(bench_dir).glob("BENCH_*.json")):
            try:
                sections[f"bench/{bench.name}"] = \
                    json.loads(bench.read_text())
            except (OSError, ValueError):
                continue  # a torn BENCH file must not block a dump
    manifest = {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "created_unix": time.time(),
        "trigger": dump.get("trigger"),
        "sections": sorted(list(sections) + list(text_sections)),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with zipfile.ZipFile(path, "w",
                         compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("manifest.json",
                         json.dumps(manifest, indent=1, default=repr))
        for name, payload in sections.items():
            archive.writestr(
                name, json.dumps(payload, indent=1, default=repr))
        for name, text in text_sections.items():
            archive.writestr(name, text)
    return path


def load_bundle(path) -> Bundle:
    """Re-open a bundle; ``.json`` sections come back parsed."""
    path = Path(path)
    with zipfile.ZipFile(path) as archive:
        manifest = json.loads(archive.read("manifest.json"))
        if manifest.get("format") != BUNDLE_FORMAT:
            raise ValueError(
                f"{path} is not a {BUNDLE_FORMAT} archive "
                f"(format={manifest.get('format')!r})")
        if manifest.get("version", 0) > BUNDLE_VERSION:
            raise ValueError(
                f"{path} is bundle version {manifest.get('version')}, "
                f"newer than this reader ({BUNDLE_VERSION})")
        sections: dict[str, object] = {}
        for name in archive.namelist():
            if name == "manifest.json":
                continue
            raw = archive.read(name)
            if name.endswith(".json"):
                sections[name] = json.loads(raw)
            else:
                sections[name] = raw.decode()
    return Bundle(path=path, manifest=manifest, sections=sections)
