"""Declarative SLO / health rules over the metrics registry.

The metrics registry says what *happened*; this module says whether
that is *okay*. A :class:`HealthRule` is one machine-checkable service
objective — "retries per verified batch stay under 10%", "no circuit
breaker opened", "journal syncs land under their modeled deadline at
p99" — evaluated against a :class:`MetricsWindow` (counter/histogram
*deltas* since a baseline snapshot, so one degraded hour does not
condemn a process forever, and so multiple engines can watch disjoint
windows of the same registry).

Everything is **registry-scoped, not process-global**: a
:class:`HealthEngine` binds to the registry it was given, so the
planned multi-tenant session server can run one engine per tenant
registry. :func:`get_health_engine` supplies the conventional
process-global instance the CLI's ``doctor`` verb and the
:class:`~repro.obs.Observability` facade use.

Evaluation is on demand (``engine.evaluate()``) or on a modeled-time
cadence: ``engine.set_cadence(seconds)`` plus cheap
``engine.maybe_evaluate(modeled_now)`` calls from an instrumented
layer — the debugger ticks it with the channel's modeled clock after
each command, which keeps "how often do we check" in the same time
base as every deadline in the stack.

Rules that lack data (a histogram with no samples, a denominator under
``min_samples``) report ``skipped`` rather than guessing. Severity is
two-level: ``fail`` rules make the report ``degraded`` (nonzero
``doctor`` exit); ``warn`` rules mark it ``warn`` but keep the exit
clean — cache hit rates on a cold first run are low by construction,
not broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .flight import get_flight_recorder
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    quantile_from_buckets,
)

__all__ = [
    "DEFAULT_RULES",
    "HealthEngine",
    "HealthReport",
    "HealthRule",
    "MetricsWindow",
    "RuleResult",
    "get_health_engine",
]


@dataclass
class HistogramDelta:
    """New histogram observations since a window's baseline."""

    name: str
    bounds: list
    counts: list
    count: int
    total: float
    low: Optional[float]
    high: Optional[float]

    def quantile(self, p: float) -> Optional[float]:
        return quantile_from_buckets(
            self.bounds, self.counts, self.count, self.low, self.high, p)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsWindow:
    """A registry view since a baseline snapshot.

    Counters and histograms read as deltas (a fresh window over a
    long-lived registry sees only what happened after
    :meth:`rebase`); gauges read current — they are already
    point-in-time. Missing instruments read as zero / None, so rules
    can reference metrics a given workload never touched.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 rebase: bool = False):
        self.registry = registry if registry is not None \
            else get_registry()
        self._base_counters: dict[str, float] = {}
        self._base_hists: dict[str, tuple] = {}
        if rebase:
            self.rebase()

    def rebase(self) -> None:
        """Snapshot the baseline; reads become deltas since now."""
        self._base_counters.clear()
        self._base_hists.clear()
        for name in self.registry.names():
            instrument = self.registry.get(name)
            if isinstance(instrument, Counter):
                self._base_counters[name] = instrument.value
            elif isinstance(instrument, Histogram):
                self._base_hists[name] = (
                    instrument.count, list(instrument.counts),
                    instrument.total)

    def counter(self, name: str) -> float:
        instrument = self.registry.get(name)
        if not isinstance(instrument, Counter):
            return 0.0
        return instrument.value - self._base_counters.get(name, 0)

    def gauge(self, name: str) -> float:
        instrument = self.registry.get(name)
        if not isinstance(instrument, Gauge):
            return 0.0
        return instrument.value

    def histogram(self, name: str) -> Optional[HistogramDelta]:
        instrument = self.registry.get(name)
        if not isinstance(instrument, Histogram):
            return None
        base_count, base_counts, base_total = self._base_hists.get(
            name, (0, None, 0.0))
        count = instrument.count - base_count
        if count <= 0:
            return None
        if base_counts is None:
            counts = list(instrument.counts)
        else:
            counts = [now - then for now, then
                      in zip(instrument.counts, base_counts)]
        return HistogramDelta(
            name=name, bounds=list(instrument.bounds), counts=counts,
            count=count, total=instrument.total - base_total,
            low=instrument.min, high=instrument.max)


@dataclass(frozen=True)
class HealthRule:
    """One declarative objective: probe a window, compare a bound.

    ``kind`` is the direction of health: ``"max"`` rules violate when
    the probed value exceeds ``threshold``; ``"min"`` rules violate
    when it falls below. A probe returning None means "not enough
    data" and the rule is skipped.
    """

    name: str
    description: str
    kind: str  # "max" | "min"
    threshold: float
    probe: Callable[[MetricsWindow], Optional[float]]
    severity: str = "fail"  # "fail" | "warn"

    def __post_init__(self) -> None:
        if self.kind not in ("max", "min"):
            raise ValueError(
                f"health rule {self.name!r}: kind must be max or min, "
                f"got {self.kind!r}")
        if self.severity not in ("fail", "warn"):
            raise ValueError(
                f"health rule {self.name!r}: severity must be fail or "
                f"warn, got {self.severity!r}")

    def check(self, window: MetricsWindow) -> "RuleResult":
        value = self.probe(window)
        if value is None:
            status = "skipped"
        elif (value > self.threshold if self.kind == "max"
              else value < self.threshold):
            status = "violated"
        else:
            status = "ok"
        return RuleResult(rule=self, status=status, value=value)


@dataclass
class RuleResult:
    """Outcome of one rule against one window."""

    rule: HealthRule
    status: str  # "ok" | "violated" | "skipped"
    value: Optional[float]

    def as_dict(self) -> dict:
        return {
            "name": self.rule.name,
            "description": self.rule.description,
            "kind": self.rule.kind,
            "threshold": self.rule.threshold,
            "severity": self.rule.severity,
            "status": self.status,
            "value": self.value,
        }


@dataclass
class HealthReport:
    """Every rule's outcome plus the rolled-up verdict."""

    results: list[RuleResult] = field(default_factory=list)

    @property
    def status(self) -> str:
        worst = "healthy"
        for result in self.results:
            if result.status != "violated":
                continue
            if result.rule.severity == "fail":
                return "degraded"
            worst = "warn"
        return worst

    @property
    def failed(self) -> list[str]:
        """Names of violated fail-severity rules (degrade the exit)."""
        return [result.rule.name for result in self.results
                if result.status == "violated"
                and result.rule.severity == "fail"]

    @property
    def warnings(self) -> list[str]:
        return [result.rule.name for result in self.results
                if result.status == "violated"
                and result.rule.severity == "warn"]

    @property
    def exit_code(self) -> int:
        return 1 if self.status == "degraded" else 0

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "failed": self.failed,
            "warnings": self.warnings,
            "rules": [result.as_dict() for result in self.results],
        }

    def describe(self) -> str:
        lines = [f"health: {self.status}"
                 + (f"  (failed: {', '.join(self.failed)})"
                    if self.failed else "")]
        for result in self.results:
            value = ("-" if result.value is None
                     else f"{result.value:.6g}")
            bound = (f"<= {result.rule.threshold:g}"
                     if result.rule.kind == "max"
                     else f">= {result.rule.threshold:g}")
            marker = {"ok": "ok ", "violated": "BAD",
                      "skipped": "-- "}[result.status]
            lines.append(
                f"  [{marker}] {result.rule.name:<28} {value:>10} "
                f"(want {bound}) — {result.rule.description}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# default rule set
# --------------------------------------------------------------------------


def _ratio(numerator: str, denominator: str, min_samples: float):
    def probe(window: MetricsWindow) -> Optional[float]:
        den = window.counter(denominator)
        if den < min_samples:
            return None
        return window.counter(numerator) / den
    return probe


def _hit_rate(hits: str, misses: str, min_samples: float):
    def probe(window: MetricsWindow) -> Optional[float]:
        hit = window.counter(hits)
        total = hit + window.counter(misses)
        if total < min_samples:
            return None
        return hit / total
    return probe


def _histogram_quantile(name: str, p: float):
    def probe(window: MetricsWindow) -> Optional[float]:
        delta = window.histogram(name)
        return None if delta is None else delta.quantile(p)
    return probe


def _counter(name: str):
    return lambda window: window.counter(name)


#: The stock SLO set. Thresholds are service objectives for a healthy
#: session, not physical limits; scoped engines may pass their own.
DEFAULT_RULES: tuple[HealthRule, ...] = (
    HealthRule(
        "transport.retry_rate",
        "verified-transport retries per batch",
        "max", 0.10,
        _ratio("transport.retries", "transport.batches", 10)),
    HealthRule(
        "transport.crc_failure_rate",
        "CRC-detected corrupt readbacks per batch",
        "max", 0.05,
        _ratio("transport.corrupt_detected", "transport.batches", 10)),
    HealthRule(
        "transport.exhausted",
        "batches that exhausted bounded retries",
        "max", 0.0, _counter("transport.exhausted")),
    HealthRule(
        "supervise.breaker_opens",
        "circuit-breaker OPEN transitions in the window",
        "max", 0.0, _counter("supervise.breaker_opens")),
    HealthRule(
        "journal.corrupt_dumps",
        "journal-corruption flight dumps in the window",
        "max", 0.0, _counter("flight.dumps.journal.corrupt")),
    HealthRule(
        "journal.sync_latency_p99",
        "modeled journal sync latency p99 (seconds)",
        "max", 0.5, _histogram_quantile("journal.sync_seconds", 0.99)),
    HealthRule(
        "chaos.recovery_mttr_p99",
        "modeled seconds to recover from an injected fault, p99",
        "max", 120.0, _histogram_quantile("chaos.mttr_seconds", 0.99)),
    HealthRule(
        "supervise.deadline_hits",
        "supervised operations that blew a modeled deadline",
        "max", 0.0, _counter("supervise.deadline_hits"),
        severity="warn"),
    HealthRule(
        "sim.plan_cache.hit_rate",
        "simulator plan-cache hit rate",
        "min", 0.5,
        _hit_rate("sim.plan_cache.hits", "sim.plan_cache.misses", 4),
        severity="warn"),
    HealthRule(
        "vti.compile_cache.hit_rate",
        "VTI incremental compile-cache hit rate",
        "min", 0.25,
        _hit_rate("vti.cache.hits", "vti.cache.misses", 4),
        severity="warn"),
)


class HealthEngine:
    """Rules bound to one registry, evaluated on demand or on cadence."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 rules=None):
        self.registry = registry if registry is not None \
            else get_registry()
        self.rules: list[HealthRule] = list(
            DEFAULT_RULES if rules is None else rules)
        #: Modeled seconds between cadence evaluations (None = off).
        self.cadence_seconds: Optional[float] = None
        self.last_report: Optional[HealthReport] = None
        self._next_eval: Optional[float] = None

    def add_rule(self, rule: HealthRule) -> None:
        self.rules.append(rule)

    def window(self, rebase: bool = True) -> MetricsWindow:
        """A fresh window over this engine's registry."""
        return MetricsWindow(self.registry, rebase=rebase)

    def evaluate(self,
                 window: Optional[MetricsWindow] = None) -> HealthReport:
        """Check every rule; default window is the registry's full
        history (no baseline)."""
        if window is None:
            window = MetricsWindow(self.registry, rebase=False)
        report = HealthReport(
            results=[rule.check(window) for rule in self.rules])
        self.last_report = report
        if report.status == "degraded":
            # Degradations are flight-worthy events (not dump triggers:
            # the condition persists; the *cause* already dumped).
            get_flight_recorder().note(
                "supervise", "health_degraded",
                rules=",".join(report.failed))
        return report

    def set_cadence(self, seconds: Optional[float]) -> None:
        self.cadence_seconds = seconds
        self._next_eval = None

    def maybe_evaluate(
            self, modeled_now: float) -> Optional[HealthReport]:
        """Cadence tick: evaluate when modeled time crosses the next
        boundary. Costs one attribute check when cadence is off."""
        if self.cadence_seconds is None:
            return None
        if self._next_eval is not None and modeled_now < self._next_eval:
            return None
        self._next_eval = modeled_now + self.cadence_seconds
        return self.evaluate()


#: Process-global engine over the process-global registry (the CLI's
#: `doctor` verb and the Observability facade). Scoped servers build
#: their own HealthEngine(registry) per tenant.
_ENGINE = HealthEngine()


def get_health_engine() -> HealthEngine:
    return _ENGINE
