"""A unified metrics registry: counters, gauges, log-bucket histograms.

Before this layer every subsystem kept its numbers in a private corner:
:class:`~repro.config.transport.TransportStats` counted batches with no
user-facing reader, the journal knew its sync points, the simulator's
plan cache kept a module-level dict, and the VTI flow scattered stage
seconds across result objects. The registry gives them one address
space — dotted metric names, three instrument kinds, one
``as_dict()``/JSON snapshot the CLI and benchmarks read.

Instruments are cheap enough to leave on unconditionally at batch/
command granularity (an attribute add per increment); only *tracing*
has an off switch. Histograms use fixed logarithmic buckets (powers of
``base`` starting at ``scale``), the standard shape for latency-like
quantities spanning decades — a modeled readback is microseconds, a VTI
initial compile is hours.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import Optional, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "quantile_from_buckets",
]


def quantile_from_buckets(bounds, counts, count, low_clamp, high_clamp,
                          p: float) -> Optional[float]:
    """Shared bucket-quantile math (histograms *and* windowed deltas).

    Linear interpolation inside the covering bucket, clamped to the
    observed ``[low_clamp, high_clamp]``; the overflow bucket (one past
    ``bounds``) interpolates up to ``high_clamp``. Returns None when
    ``count`` is zero.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"quantile wants p in [0, 1], got {p}")
    if not count:
        return None
    target = p * count
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= target:
            low = bounds[index - 1] if index else 0.0
            if index < len(bounds):
                high = bounds[index]
            else:
                high = high_clamp if high_clamp is not None else bounds[-1]
            fraction = (target - cumulative) / bucket_count
            value = low + fraction * (high - low)
            if low_clamp is not None:
                value = max(value, low_clamp)
            if high_clamp is not None:
                value = min(value, high_clamp)
            return value
        cumulative += bucket_count
    return high_clamp


class Counter:
    """A monotonically increasing count (events, items, seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r}: increments must be >= 0")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value (queue depth, cache size, last rate)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed log-bucket histogram.

    Bucket upper bounds are ``scale * base**i`` for ``i`` in
    ``range(buckets)``; observations above the last bound land in the
    overflow bucket. The default (scale=1e-6, base=4, 16 buckets)
    spans 1 µs to ~4295 s — the full range of modeled times in this
    repository, from a single JTAG word to an initial VTI compile.
    """

    __slots__ = ("name", "scale", "base", "bounds", "counts",
                 "count", "total", "min", "max")

    def __init__(self, name: str, scale: float = 1e-6,
                 base: float = 4.0, buckets: int = 16):
        if scale <= 0 or base <= 1 or buckets < 1:
            raise ValueError(
                f"histogram {name!r}: need scale > 0, base > 1, "
                f"buckets >= 1")
        self.name = name
        self.scale = scale
        self.base = base
        self.bounds = [scale * base ** i for i in range(buckets)]
        self.counts = [0] * (buckets + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def bucket_for(self, value: Union[int, float]) -> int:
        """Index of the bucket ``value`` would land in."""
        return bisect_right(self.bounds, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, p: float) -> Optional[float]:
        """Estimate the ``p``-quantile (``0 <= p <= 1``) from buckets.

        Linear interpolation inside the covering log bucket, clamped to
        the observed ``[min, max]`` so estimates never stray outside the
        data. The overflow bucket interpolates up to ``max``. Returns
        None on an empty histogram — callers (the health engine) treat
        that as "not enough samples", not as zero latency.
        """
        return quantile_from_buckets(
            self.bounds, self.counts, self.count, self.min, self.max, p)

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "bounds": self.bounds,
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Get-or-create instrument store keyed by dotted names."""

    def __init__(self):
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, **kwargs) -> Histogram:
        return self._get(name, Histogram, **kwargs)

    # ------------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        return self._instruments.get(name)

    def as_dict(self) -> dict[str, dict]:
        """Every instrument's snapshot, keyed by name (sorted)."""
        return {name: self._instruments[name].as_dict()
                for name in self.names()}

    def dump_json(self, path=None) -> str:
        text = json.dumps(self.as_dict(), indent=1)
        if path is not None:
            with open(path, "w") as stream:
                stream.write(text + "\n")
        return text

    def summary(self) -> str:
        """Human one-line-per-metric dump for the CLI."""
        lines = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                lines.append(
                    f"{name}: n={instrument.count} "
                    f"mean={instrument.mean:.6g} "
                    f"min={instrument.min if instrument.min is not None else '-'} "
                    f"max={instrument.max if instrument.max is not None else '-'}")
            else:
                lines.append(f"{name}: {instrument.value:g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        """Drop every instrument (tests; never done by the CLI)."""
        self._instruments.clear()


#: Process-global registry, mutated in place so modules may bind it at
#: import time (mirrors the tracer singleton).
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY
