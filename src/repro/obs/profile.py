"""Two-clock attribution profiler over recorded spans.

The tracer answers "what happened, in order"; this module answers
"where did the time go" — in *both* clocks. Every Zoomie span carries
host wall seconds (what the Python process spent) and modeled hardware
seconds (what the emulated JTAG channel, simulated design, and compile
model charged). The profiler rolls the retained span ring into cost
tables:

- **commands** — ``debug.*`` verbs, the user-facing unit of work;
- **kernels** — ``sim.*`` / ``jtag.*`` / ``transport.*``, where the
  modeled hardware seconds are actually generated;
- **vti** — per-stage compile costs from the VTI flow;
- **other** — everything else.

Each row reports inclusive and *self* time per clock. Modeled seconds
are recorded inclusively (children roll into parents at finish), so
self time is inclusive minus the sum of direct children — the number
that answers "where did the modeled JTAG seconds go" without double
counting. Inclusive totals only sum *top-level occurrences* of a name
(spans with no same-named ancestor), so a recursive verb is not
counted twice.

:meth:`ProfileReport.collapsed` exports folded stacks in the
``a;b;c <value>`` format consumed by flame-graph tooling
(https://github.com/brendangregg/FlameGraph, speedscope, etc.), with
the value in integer microseconds of either clock's self time. Spans
whose parents were evicted from the ring fold under ``<evicted>``,
matching the tree exporter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .trace import Span, Tracer, get_tracer

__all__ = ["ProfileReport", "ProfileRow", "profile_spans"]

#: Category → span-name prefixes, first match wins.
CATEGORIES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("commands", ("debug.",)),
    ("kernels", ("sim.", "jtag.", "transport.")),
    ("vti", ("vti.",)),
)


def _category(name: str) -> str:
    for category, prefixes in CATEGORIES:
        if name.startswith(prefixes):
            return category
    return "other"


@dataclass
class ProfileRow:
    """Aggregated cost of one span name, both clocks."""

    name: str
    count: int = 0
    #: Inclusive totals over top-level occurrences only.
    wall_seconds: float = 0.0
    modeled_seconds: float = 0.0
    #: Self time (inclusive minus direct children) over every span.
    wall_self_seconds: float = 0.0
    modeled_self_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "wall_seconds": round(self.wall_seconds, 9),
            "wall_self_seconds": round(self.wall_self_seconds, 9),
            "modeled_seconds": round(self.modeled_seconds, 9),
            "modeled_self_seconds": round(self.modeled_self_seconds, 9),
        }


class ProfileReport:
    """Cost tables + folded stacks computed from one span set."""

    def __init__(self, tables: dict[str, list[ProfileRow]],
                 stacks_wall: dict[str, float],
                 stacks_modeled: dict[str, float],
                 span_count: int, dropped: int):
        self.tables = tables
        self._stacks = {"wall": stacks_wall, "modeled": stacks_modeled}
        self.span_count = span_count
        self.dropped = dropped

    @classmethod
    def from_tracer(cls, tracer: Optional[Tracer] = None
                    ) -> "ProfileReport":
        tracer = tracer if tracer is not None else get_tracer()
        report = profile_spans(tracer.spans)
        report.dropped = tracer.dropped
        return report

    # ------------------------------------------------------------------

    def rows(self, category: str) -> list[ProfileRow]:
        return self.tables.get(category, [])

    def collapsed(self, clock: str = "wall") -> str:
        """Folded flame-graph stacks; ``clock`` is wall or modeled.

        Values are integer microseconds of self time, aggregated over
        identical stacks; zero-valued stacks are kept (count 0 lines
        are legal and preserve shape for diffs).
        """
        if clock not in self._stacks:
            raise ValueError(
                f"unknown clock {clock!r}; want one of "
                f"{sorted(self._stacks)}")
        return "\n".join(
            f"{stack} {int(round(seconds * 1e6))}"
            for stack, seconds in sorted(self._stacks[clock].items()))

    def as_dict(self) -> dict:
        return {
            "span_count": self.span_count,
            "dropped": self.dropped,
            "tables": {category: [row.as_dict() for row in rows]
                       for category, rows in self.tables.items()},
        }

    def describe(self) -> str:
        """Human cost tables, hottest modeled-self first."""
        if not self.span_count:
            return ("(no spans recorded — `trace start` before the "
                    "workload to profile it)")
        lines = [f"profile over {self.span_count} span(s)"
                 + (f" ({self.dropped} eviction(s) — oldest spans "
                    f"missing)" if self.dropped else "")]
        header = (f"  {'name':<32} {'calls':>6} {'wall':>10} "
                  f"{'wall-self':>10} {'modeled':>11} {'mod-self':>11}")
        for category in ("commands", "kernels", "vti", "other"):
            rows = self.tables.get(category)
            if not rows:
                continue
            lines.append(f"{category}:")
            lines.append(header)
            for row in rows:
                lines.append(
                    f"  {row.name:<32} {row.count:>6} "
                    f"{row.wall_seconds * 1e3:>8.2f}ms "
                    f"{row.wall_self_seconds * 1e3:>8.2f}ms "
                    f"{row.modeled_seconds:>10.6f}s "
                    f"{row.modeled_self_seconds:>10.6f}s")
        return "\n".join(lines)


def profile_spans(spans: Iterable[Span]) -> ProfileReport:
    """Build a :class:`ProfileReport` from finished spans."""
    finished = [span for span in spans if span.finished]
    by_id = {span.span_id: span for span in finished}
    child_wall: dict[int, float] = {}
    child_modeled: dict[int, float] = {}
    for span in finished:
        if span.parent_id in by_id:
            child_wall[span.parent_id] = \
                child_wall.get(span.parent_id, 0.0) + span.wall_seconds
            child_modeled[span.parent_id] = \
                child_modeled.get(span.parent_id, 0.0) + \
                span.modeled_seconds

    paths: dict[int, tuple[str, ...]] = {}

    def path(span: Span) -> tuple[str, ...]:
        cached = paths.get(span.span_id)
        if cached is not None:
            return cached
        if span.parent_id is None:
            prefix: tuple[str, ...] = ()
        else:
            parent = by_id.get(span.parent_id)
            prefix = ("<evicted>",) if parent is None else path(parent)
        result = prefix + (span.name,)
        paths[span.span_id] = result
        return result

    rows: dict[str, ProfileRow] = {}
    stacks_wall: dict[str, float] = {}
    stacks_modeled: dict[str, float] = {}
    for span in finished:
        stack = path(span)
        wall_self = max(
            0.0, span.wall_seconds - child_wall.get(span.span_id, 0.0))
        modeled_self = max(
            0.0,
            span.modeled_seconds - child_modeled.get(span.span_id, 0.0))
        row = rows.setdefault(span.name, ProfileRow(name=span.name))
        row.count += 1
        row.wall_self_seconds += wall_self
        row.modeled_self_seconds += modeled_self
        if span.name not in stack[:-1]:  # top-level occurrence
            row.wall_seconds += span.wall_seconds
            row.modeled_seconds += span.modeled_seconds
        key = ";".join(stack)
        stacks_wall[key] = stacks_wall.get(key, 0.0) + wall_self
        stacks_modeled[key] = \
            stacks_modeled.get(key, 0.0) + modeled_self

    tables: dict[str, list[ProfileRow]] = {}
    for row in rows.values():
        tables.setdefault(_category(row.name), []).append(row)
    for category_rows in tables.values():
        category_rows.sort(
            key=lambda r: (r.modeled_self_seconds, r.wall_self_seconds),
            reverse=True)
    return ProfileReport(tables, stacks_wall, stacks_modeled,
                         span_count=len(finished), dropped=0)
