"""``zoomie doctor``: run a seeded workload, judge it with the SLOs.

The health engine (:mod:`.health`) can judge any live registry; this
module gives CI and operators a *self-contained* verdict: compile the
stock pipeline design, drive a seeded debugger workload over it, then
evaluate the SLO rules over a metrics window scoped to exactly that
workload (so a long-lived process's history cannot contaminate the
verdict).

Run as a module (the ``zoomie doctor`` entry point for scripts/CI)::

    PYTHONPATH=src python -m repro.obs.doctor --json
    PYTHONPATH=src python -m repro.obs.doctor --json --chaos-seed 7

Exit status is the health verdict: 0 when the workload meets every
fail-severity SLO, 1 when degraded — with ``--chaos-seed`` a seeded
:class:`~repro.chaos.schedule.FaultSchedule` (channel bit-flips plus a
device hang) is installed for the workload, which deterministically
pushes the transport retry rate over its objective; CI asserts the
clean run exits 0 and the chaos run exits nonzero, naming the rule.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .health import HealthEngine, HealthReport
from .metrics import MetricsRegistry, get_registry

__all__ = ["DoctorResult", "main", "run_doctor"]

#: Channel read-flip probability the chaos run injects: high enough
#: that the ~dozens-of-batches workload reliably exceeds the 10%
#: retry-rate SLO, low enough that bounded retries still converge.
CHAOS_READ_FLIP_RATE = 0.3


class DoctorResult:
    """The health report plus what produced it."""

    def __init__(self, report: HealthReport, workload: dict):
        self.report = report
        self.workload = workload

    @property
    def exit_code(self) -> int:
        return self.report.exit_code

    def as_dict(self) -> dict:
        data = self.report.as_dict()
        data["workload"] = self.workload
        return data

    def describe(self) -> str:
        w = self.workload
        chaos = (f"chaos seed {w['chaos_seed']}, "
                 f"{w['faults_injected']} fault(s) injected"
                 if w.get("chaos_seed") is not None else "no chaos")
        return (f"doctor: {w['design']} workload, seed {w['seed']}, "
                f"{w['commands']} command(s), {w['errors']} surfaced "
                f"error(s), {chaos}\n" + self.report.describe())


def _run_workload(seed: int, chaos_seed: Optional[int]) -> dict:
    """Drive the seeded pipeline workload; returns workload facts.

    Deferred imports throughout — the debugger stack imports
    :mod:`repro.obs`, so the doctor (the only obs module that needs
    the stack) loads it lazily, mirroring the chaos campaign.
    """
    from ..chaos.campaign import (
        _apply_step,
        _design_builders,
        _fresh_session,
        _script_for,
    )
    from ..chaos.schedule import FaultSchedule, FaultSpec, install_chaos
    from ..errors import ReproError

    compiled = _design_builders()["pipeline"]()
    script = _script_for("pipeline", compiled, seed)
    fabric, debugger = _fresh_session(compiled)

    schedule = None
    if chaos_seed is not None:
        schedule = FaultSchedule(
            seed=chaos_seed,
            specs=[FaultSpec(site="transport.batch", kind="device_hang",
                             at=2, count=2)],
        ).with_transport(read_flip_rate=CHAOS_READ_FLIP_RATE)
        fabric.enable_fault_injection(schedule.transport_plan())

    commands = 0
    errors = 0

    def drive(registry=None):
        nonlocal commands, errors
        steps = list(script)
        # Extra readback rounds: enough verified batches that the
        # ratio rules clear their min-sample floors.
        extra = [("resume",), ("run", 40), ("pause",)]
        for step in steps + extra * 3:
            try:
                _apply_step(debugger, step)
                if debugger.is_paused():
                    debugger.read_state()
            except ReproError:
                # Doctor keeps driving a degraded session: the verdict
                # comes from the SLO rules, not the first failure.
                errors += 1
            commands += 1

    faults_injected = 0
    if schedule is not None:
        registry = schedule.registry()
        with install_chaos(registry):
            drive()
        faults_injected = registry.faults_fired
    else:
        drive()
    return {
        "design": "pipeline",
        "seed": seed,
        "chaos_seed": chaos_seed,
        "commands": commands,
        "errors": errors,
        "faults_injected": faults_injected,
    }


def run_doctor(seed: int = 2024, chaos_seed: Optional[int] = None,
               registry: Optional[MetricsRegistry] = None
               ) -> DoctorResult:
    """Seeded workload + windowed health evaluation."""
    engine = HealthEngine(registry)
    window = engine.window(rebase=True)  # scope the verdict to the run
    workload = _run_workload(seed, chaos_seed)
    report = engine.evaluate(window)
    return DoctorResult(report, workload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="zoomie doctor",
        description="seeded debug workload + SLO health verdict")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    parser.add_argument("--seed", type=int, default=2024,
                        help="workload script seed")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="install a seeded FaultSchedule for the "
                             "workload (expect a degraded verdict)")
    args = parser.parse_args(argv)
    result = run_doctor(seed=args.seed, chaos_seed=args.chaos_seed)
    if args.json:
        print(json.dumps(result.as_dict(), indent=1, default=repr))
    else:
        print(result.describe())
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
