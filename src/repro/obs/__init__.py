"""Zoomie's observability layer: tracing, metrics, structured logging.

The paper's pitch is making FPGA debugging observable like software
debugging; this package applies the same standard to the debugger
itself. Three zero-dependency primitives:

- :mod:`trace` — span tracing with *two clocks per span* (host wall
  time and modeled hardware seconds), ring-buffer retention, and
  Chrome-trace/Perfetto + tree exporters. Off by default, near-free
  when disabled.
- :mod:`metrics` — a unified registry of counters, gauges, and
  log-bucket histograms that the transport, journal, snapshot store,
  simulator, and VTI flow publish into.
- :mod:`log` — span-correlated JSONL event logging.

:class:`Observability` bundles the three process-global instances into
the handle exposed as ``ZoomieProject.observability`` /
``Zoomie.observability``; ``zoomie trace ...`` and ``zoomie stats`` in
the debug CLI drive the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .log import StructuredLogger, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import NOOP_SPAN, Span, Tracer, get_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Observability",
    "Span",
    "StructuredLogger",
    "Tracer",
    "get_logger",
    "get_observability",
    "get_registry",
    "get_tracer",
]


@dataclass
class Observability:
    """The one handle over tracer + metrics + logger."""

    tracer: Tracer = field(default_factory=get_tracer)
    metrics: MetricsRegistry = field(default_factory=get_registry)
    logger: StructuredLogger = field(default_factory=get_logger)

    # -- tracing ---------------------------------------------------------

    def start_tracing(self, capacity: int | None = None) -> None:
        if capacity is not None:
            self.tracer.capacity = capacity
        self.tracer.start()

    def stop_tracing(self) -> None:
        self.tracer.stop()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def export_trace(self, path=None) -> str:
        """Chrome-trace JSON of everything recorded so far."""
        return self.tracer.export_chrome_json(path)

    def trace_tree(self) -> str:
        return self.tracer.tree()

    # -- metrics ---------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        return self.metrics.as_dict()

    def dump_stats(self, path=None) -> str:
        return self.metrics.dump_json(path)


#: Process-global bundle (the tracer/registry/logger singletons are
#: shared, so every Observability() sees the same state; this instance
#: is what the facade properties hand out).
_OBSERVABILITY = Observability()


def get_observability() -> Observability:
    return _OBSERVABILITY
