"""Zoomie's observability layer: the telemetry pipeline.

The paper's pitch is making FPGA debugging observable like software
debugging; this package applies the same standard to the debugger
itself:

- :mod:`trace` — span tracing with *two clocks per span* (host wall
  time and modeled hardware seconds), ring-buffer retention, and
  Chrome-trace/Perfetto + tree exporters. Off by default, near-free
  when disabled.
- :mod:`metrics` — a unified registry of counters, gauges, and
  log-bucket histograms (with programmatic quantiles) that the
  transport, journal, snapshot store, simulator, and VTI flow publish
  into.
- :mod:`log` — span-correlated JSONL event logging.
- :mod:`flight` — the always-on flight recorder: a bounded ring of
  recent commands/batches/chaos events, auto-dumped on timeouts,
  breaker opens, unhandled command exceptions, and journal corruption.
- :mod:`profile` — two-clock attribution profiler (per-command,
  per-kernel, per-VTI-stage cost tables; folded flame-graph stacks).
- :mod:`health` — declarative, registry-scoped SLO rules evaluated on
  demand or on a modeled-time cadence.
- :mod:`export` / :mod:`bundle` — Prometheus text exposition and the
  ``zoomie obs bundle`` post-mortem archive.

:class:`Observability` bundles the process-global instances into the
handle exposed as ``ZoomieProject.observability`` /
``Zoomie.observability``; ``zoomie trace ...``, ``zoomie stats``,
``zoomie doctor``, ``zoomie profile``, and ``zoomie obs ...`` in the
debug CLI drive the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .flight import FlightRecorder, get_flight_recorder
from .log import StructuredLogger, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .trace import NOOP_SPAN, Span, Tracer, get_tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Observability",
    "Span",
    "StructuredLogger",
    "Tracer",
    "get_flight_recorder",
    "get_logger",
    "get_observability",
    "get_registry",
    "get_tracer",
]


@dataclass
class Observability:
    """The one handle over tracer + metrics + logger + flight."""

    tracer: Tracer = field(default_factory=get_tracer)
    metrics: MetricsRegistry = field(default_factory=get_registry)
    logger: StructuredLogger = field(default_factory=get_logger)
    flight: FlightRecorder = field(default_factory=get_flight_recorder)

    # -- tracing ---------------------------------------------------------

    def start_tracing(self, capacity: int | None = None) -> None:
        if capacity is not None:
            self.tracer.capacity = capacity
        self.tracer.start()

    def stop_tracing(self) -> None:
        self.tracer.stop()

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def export_trace(self, path=None) -> str:
        """Chrome-trace JSON of everything recorded so far."""
        return self.tracer.export_chrome_json(path)

    def trace_tree(self) -> str:
        return self.tracer.tree()

    # -- metrics ---------------------------------------------------------

    def stats(self) -> dict[str, dict]:
        return self.metrics.as_dict()

    def dump_stats(self, path=None) -> str:
        return self.metrics.dump_json(path)

    def prometheus(self, path=None) -> str:
        """The registry in Prometheus text-exposition format."""
        from .export import prometheus_text
        return prometheus_text(self.metrics, path=path)

    # -- health / profiling / post-mortem --------------------------------

    def health_report(self, windowed: bool = False):
        """Evaluate the process-global health engine (see
        :mod:`.health`); ``windowed=True`` reads deltas since the last
        windowed call instead of full history."""
        from .health import get_health_engine
        engine = get_health_engine()
        if windowed:
            return engine.evaluate(engine.window(rebase=False))
        return engine.evaluate()

    def profile(self):
        """Two-clock :class:`~repro.obs.profile.ProfileReport` over
        the retained span ring."""
        from .profile import ProfileReport
        return ProfileReport.from_tracer(self.tracer)

    def flight_dump(self):
        """The latest flight dump, or a live snapshot."""
        if self.flight.last_dump is not None:
            return self.flight.last_dump
        return self.flight.snapshot(registry=self.metrics)

    def write_bundle(self, path, **kwargs):
        """Write a post-mortem archive (see :mod:`.bundle`)."""
        from .bundle import write_bundle
        kwargs.setdefault("registry", self.metrics)
        kwargs.setdefault("flight", self.flight)
        return write_bundle(path, **kwargs)


#: Process-global bundle (the tracer/registry/logger/flight singletons
#: are shared, so every Observability() sees the same state; this
#: instance is what the facade properties hand out).
_OBSERVABILITY = Observability()


def get_observability() -> Observability:
    return _OBSERVABILITY
