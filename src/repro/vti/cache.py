"""Content-addressed artifact cache for VTI incremental compiles.

An incremental recompile of an unchanged partition module repeats the
expensive, *version-independent* work: boundary check, partition-local
synthesis, requirement estimation, region timing, elaboration of the
stitched top, and the partition's BEL re-placement. All of that is a
pure function of (device, flow seed, baseline checkpoint, partition
spec, region, old module netlist, new module netlist) — so it is keyed
by a SHA-256 fingerprint over exactly those inputs and memoized here.

What is *never* cached: modeled stage seconds (their jitter is keyed by
the compile's version so serial, parallel, and cached flows stay
bit-identical — they are recomputed arithmetically each call) and every
version-dependent artifact (the ``{base}.v{version}`` database name, the
frame words synthesized from it, and the partial bitstream).

Entries optionally persist to a directory following the
``SnapshotStore`` pattern (PR 3): a ``magic length crc32`` header over a
JSON body, temp-file + rename writes, and any integrity failure on load
is treated as a miss — the cache self-heals by recompiling.
"""

from __future__ import annotations

import hashlib
import json
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..chaos.schedule import fault_point
from ..chaos.supervise import note_degradation
from ..config.logic_loc import LLEntry
from ..errors import DiskFaultError
from ..obs import get_registry
from ..rtl.module import Module
from ..rtl.netlist import Netlist
from ..vendor.place import MemoryPlacement
from ..vendor.resources import ResourceVector
from ..vendor.timing import PathReport, TimingResult
from .estimate import RegionRequirement
from .link import boundary_signature

#: Header magic of every stored cache entry file.
CACHE_MAGIC = "zoomie-vticache-v1"
#: Filename suffix of stored entries.
SUFFIX = ".vtic"
#: In-memory entries kept before LRU eviction.
DEFAULT_CAPACITY = 256

#: Module attributes stamped by ``split_design`` (reset insertion); they
#: mark bookkeeping, not netlist content, so fingerprints skip them —
#: the pristine user module and its partition-prepared twin must hash
#: identically.
_SPLIT_MARKERS = ("vti_partition", "vti_reset_inserted")


# --------------------------------------------------------------------------
# fingerprinting
# --------------------------------------------------------------------------

def module_fingerprint(module: Module) -> str:
    """Structural SHA-256 of a module hierarchy, init values included.

    ``Netlist.fingerprint()`` deliberately excludes register and memory
    init values (two designs differing only in initial contents share a
    plan). A compile cache cannot: inits land in configuration frames,
    so they are part of this key, as are reset values, port interfaces,
    every expression (their ``repr``s are deterministic), and instance
    wiring. Shared child definitions hash once (memo by identity).
    """
    memo: dict[int, str] = {}

    def digest(m: Module) -> str:
        known = memo.get(id(m))
        if known is not None:
            return known
        sha = hashlib.sha256()

        def put(text: str) -> None:
            sha.update(text.encode("utf-8"))
            sha.update(b"\x00")

        put(f"module {m.name}")
        for name in sorted(m.ports):
            port = m.ports[name]
            put(f"port {port.name} {port.width} {port.direction}")
        for name in sorted(m.wires):
            put(f"wire {name} {m.wires[name]}")
        for name in sorted(m.assigns):
            put(f"assign {name} = {m.assigns[name]!r}")
        for name in sorted(m.registers):
            reg = m.registers[name]
            put(f"reg {name} w{reg.width} init{reg.init} clk{reg.clock} "
                f"next({reg.next!r}) en({reg.enable!r}) "
                f"rst({reg.reset!r}) rv{reg.reset_value}")
        for name in sorted(m.memories):
            memory = m.memories[name]
            put(f"mem {name} w{memory.width} d{memory.depth}")
            for addr in sorted(memory.init):
                put(f"mem-init {addr} {memory.init[addr]}")
            for port in memory.read_ports:
                put(f"rd {port.name} a({port.addr!r}) s{port.sync} "
                    f"en({port.enable!r}) clk{port.clock}")
            for port in memory.write_ports:
                put(f"wr a({port.addr!r}) d({port.data!r}) "
                    f"en({port.enable!r}) clk{port.clock}")
        for text in m.assertions:
            put(f"assert {text}")
        for key in sorted(m.attributes):
            if key in _SPLIT_MARKERS:
                continue
            put(f"attr {key} = {m.attributes[key]!r}")
        for name in sorted(m.instances):
            inst = m.instances[name]
            put(f"inst {name} of {digest(inst.module)}")
            for pname in sorted(inst.inputs):
                put(f"in {pname} = {inst.inputs[pname]!r}")
            for pname in sorted(inst.outputs):
                put(f"out {pname} -> {inst.outputs[pname]}")
        memo[id(m)] = sha.hexdigest()
        return memo[id(m)]

    return digest(module)


def compile_fingerprint(*, part: str, seed: str, base_name: str,
                        partition_path: str, over_provision: float,
                        region: str, baseline: Module,
                        module: Module) -> str:
    """Content address of one incremental compile's cacheable work.

    ``baseline`` (the partition module the initial compile split out) is
    part of the key because a hit also vouches for the boundary check —
    which was proven against exactly this baseline.
    """
    material = "\x00".join([
        CACHE_MAGIC, part, seed, base_name, partition_path,
        f"{over_provision:.6f}", region,
        boundary_signature(baseline), boundary_signature(module),
        module_fingerprint(baseline), module_fingerprint(module),
    ])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# entries
# --------------------------------------------------------------------------

@dataclass
class CacheEntry:
    """The version-independent artifacts of one incremental compile.

    ``flat``, ``new_top``, ``partition_ll``, and ``partition_memories``
    are filled lazily by the database rebuild (designs without a fabric
    database never compute them); ``flat`` and ``new_top`` live only in
    memory — a disk round-trip recomputes them from the netlist on first
    use, which is still O(partition) stitching, not O(design) placement.
    """

    fingerprint: str
    partition_path: str
    boundary_nets: int
    requirement: RegionRequirement
    timing: TimingResult
    partition_nets: int
    partition_ll: Optional[list[LLEntry]] = None
    partition_memories: Optional[dict[str, MemoryPlacement]] = None
    flat: Optional[Netlist] = None
    new_top: Optional[Module] = None
    hits: int = 0


def _entry_to_record(entry: CacheEntry) -> dict:
    record = {
        "fingerprint": entry.fingerprint,
        "partition_path": entry.partition_path,
        "boundary_nets": entry.boundary_nets,
        "requirement": {
            "partition_path": entry.requirement.partition_path,
            "raw": entry.requirement.raw.as_dict(),
            "over_provision": entry.requirement.over_provision,
            "estimated": entry.requirement.estimated.as_dict(),
        },
        "timing": {
            "fmax_mhz": entry.timing.fmax_mhz,
            "slack_ns": entry.timing.slack_ns,
            "met": entry.timing.met,
            "paths": [[p.module, p.delay_ns] for p in entry.timing.paths],
        },
        "partition_nets": entry.partition_nets,
    }
    if entry.partition_ll is not None:
        record["partition_ll"] = [e.to_line() for e in entry.partition_ll]
    if entry.partition_memories is not None:
        record["partition_memories"] = {
            name: [p.name, p.slr, p.column, p.column_kind,
                   p.start_frame, p.bits]
            for name, p in entry.partition_memories.items()
        }
    return record


def _entry_from_record(record: dict) -> CacheEntry:
    req = record["requirement"]
    timing = record["timing"]
    partition_ll = None
    if "partition_ll" in record:
        partition_ll = [LLEntry.from_line(line)
                        for line in record["partition_ll"]]
    partition_memories = None
    if "partition_memories" in record:
        partition_memories = {
            name: MemoryPlacement(
                name=row[0], slr=row[1], column=row[2],
                column_kind=row[3], start_frame=row[4], bits=row[5])
            for name, row in record["partition_memories"].items()
        }
    return CacheEntry(
        fingerprint=record["fingerprint"],
        partition_path=record["partition_path"],
        boundary_nets=record["boundary_nets"],
        requirement=RegionRequirement(
            partition_path=req["partition_path"],
            raw=ResourceVector.from_dict(req["raw"]),
            over_provision=req["over_provision"],
            estimated=ResourceVector.from_dict(req["estimated"])),
        timing=TimingResult(
            fmax_mhz=dict(timing["fmax_mhz"]),
            slack_ns=dict(timing["slack_ns"]),
            met=timing["met"],
            paths=[PathReport(module=module, delay_ns=delay)
                   for module, delay in timing["paths"]]),
        partition_nets=record["partition_nets"],
        partition_ll=partition_ll,
        partition_memories=partition_memories,
    )


# --------------------------------------------------------------------------
# the cache
# --------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Per-instance counters (the registry aggregates across instances)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    puts: int = 0
    evictions: int = 0
    integrity_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses,
            "disk_hits": self.disk_hits, "puts": self.puts,
            "evictions": self.evictions,
            "integrity_failures": self.integrity_failures,
        }

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CompileCache:
    """LRU, content-addressed store of :class:`CacheEntry` objects.

    Thread-safe: the scheduler's worker threads probe and fill it
    concurrently. With ``root`` set, entries also persist on disk and
    survive the process — a cold process warm-starts from the store.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 root=None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.root: Optional[Path] = None
        if root is not None:
            self.root = Path(root)
            self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        registry = get_registry()
        self._m_hits = registry.counter("vti.cache.hits")
        self._m_misses = registry.counter("vti.cache.misses")
        self._m_disk_hits = registry.counter("vti.cache.disk_hits")
        self._m_puts = registry.counter("vti.cache.puts")
        self._m_evictions = registry.counter("vti.cache.evictions")
        self._m_bad = registry.counter("vti.cache.integrity_failures")
        self._m_entries = registry.gauge("vti.cache.entries")

    # -- lookup ------------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        """The entry filed under ``fingerprint``, or None (a miss)."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is not None:
                self._entries.move_to_end(fingerprint)
                entry.hits += 1
                self.stats.hits += 1
                self._m_hits.inc()
                return entry
            entry = self._load_disk(fingerprint)
            if entry is not None:
                entry.hits += 1
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._m_hits.inc()
                self._m_disk_hits.inc()
                self._insert(fingerprint, entry)
                return entry
            self.stats.misses += 1
            self._m_misses.inc()
            return None

    def put(self, entry: CacheEntry) -> None:
        """File a freshly compiled entry under its fingerprint."""
        with self._lock:
            self.stats.puts += 1
            self._m_puts.inc()
            self._insert(entry.fingerprint, entry)
            if self.root is not None:
                self._store_disk(entry)

    def _insert(self, fingerprint: str, entry: CacheEntry) -> None:
        self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._m_evictions.inc()
        self._m_entries.set(len(self._entries))

    def clear(self) -> int:
        """Drop every entry (memory and disk); returns how many."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if self.root is not None:
                for path in self.root.glob(f"*{SUFFIX}"):
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        continue  # concurrent clear/evict got it first
                    dropped += 1
            self._m_entries.set(0)
            return dropped

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            if fingerprint in self._entries:
                return True
        return self.root is not None \
            and self._disk_path(fingerprint).exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        with self._lock:
            keys = set(self._entries)
        if self.root is not None:
            keys.update(p.name[:-len(SUFFIX)]
                        for p in self.root.glob(f"*{SUFFIX}"))
        return sorted(keys)

    # -- disk store (SnapshotStore pattern) --------------------------------

    def _disk_path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / f"{fingerprint}{SUFFIX}"

    def _store_disk(self, entry: CacheEntry) -> None:
        body = json.dumps(_entry_to_record(entry), sort_keys=True)
        data = body.encode("utf-8")
        header = (f"{CACHE_MAGIC} {len(data):08x} "
                  f"{zlib.crc32(data) & 0xFFFFFFFF:08x}\n")
        path = self._disk_path(entry.fingerprint)
        fault = fault_point("vticache.store")
        if fault is not None:
            # Failed persistence degrades to memory-only: the in-memory
            # entry is already filed, so correctness is untouched. A
            # torn write leaves a partial object the next load counts
            # as an integrity failure and overwrites.
            if fault.kind == "torn_write":
                text = header + body
                path.write_text(text[:fault.rng.randrange(
                    len(CACHE_MAGIC), len(text))])
            note_degradation("cache.write_skipped", site="vticache.store",
                             detail=fault.kind)
            return
        try:
            tmp = path.with_suffix(".tmp")
            tmp.write_text(header + body)
            tmp.rename(path)
        except OSError:
            note_degradation("cache.write_skipped", site="vticache.store")

    def _load_disk(self, fingerprint: str) -> Optional[CacheEntry]:
        """Load one entry from disk; any defect is a miss, not an error.

        A corrupt cache must never block a compile — the flow simply
        recompiles and overwrites the bad object — but each defect is
        counted so rot is visible in ``stats``.
        """
        if self.root is None:
            return None
        path = self._disk_path(fingerprint)
        fault = fault_point("vticache.load")
        if fault is not None and fault.kind == "bit_rot" and path.exists():
            from ..rtl.plan_store import _flip_byte
            _flip_byte(path, fault.rng)
        if not path.exists():
            return None
        try:
            text = path.read_text()
        except FileNotFoundError:
            # Concurrent deletion (another process clearing or evicting
            # the shared store) between the existence check and the
            # read: a plain miss, never an error or a counted defect.
            return None
        except OSError:
            self.stats.integrity_failures += 1
            self._m_bad.inc()
            return None
        try:
            newline = text.index("\n")
            magic, length_hex, crc_hex = text[:newline].split(" ")
            if magic != CACHE_MAGIC:
                raise ValueError(f"bad magic {magic!r}")
            body = text[newline + 1:]
            data = body.encode("utf-8")
            if len(data) != int(length_hex, 16):
                raise ValueError(
                    f"{len(data)} bytes where the header promises "
                    f"{int(length_hex, 16)}")
            if zlib.crc32(data) & 0xFFFFFFFF != int(crc_hex, 16):
                raise ValueError("CRC32 mismatch (bit-rot or tampering)")
            record = json.loads(body)
            if record.get("fingerprint") != fingerprint:
                raise ValueError("entry mis-filed under foreign key")
            return _entry_from_record(record)
        except (ValueError, KeyError, IndexError, TypeError, OSError):
            self.stats.integrity_failures += 1
            self._m_bad.inc()
            note_degradation("cache.cold_recompile", site="vticache.load",
                             detail=fingerprint[:12])
            return None

    # -- reporting ---------------------------------------------------------

    def stats_dict(self) -> dict:
        with self._lock:
            out = self.stats.as_dict()
            out["entries"] = len(self._entries)
            out["capacity"] = self.capacity
            out["hit_rate"] = round(self.stats.hit_rate(), 4)
            out["disk"] = str(self.root) if self.root is not None else None
            return out

    def summary(self) -> str:
        stats = self.stats_dict()
        lines = [
            f"vti compile cache: {stats['entries']}/{stats['capacity']} "
            f"entries",
            f"  hits {stats['hits']}  misses {stats['misses']}  "
            f"hit-rate {stats['hit_rate'] * 100:.1f}%",
            f"  puts {stats['puts']}  evictions {stats['evictions']}  "
            f"disk-hits {stats['disk_hits']}  "
            f"integrity-failures {stats['integrity_failures']}",
        ]
        if stats["disk"]:
            lines.append(f"  disk store: {stats['disk']}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# process-wide default
# --------------------------------------------------------------------------

_DEFAULT_CACHE: Optional[CompileCache] = None
_DEFAULT_LOCK = threading.Lock()


def get_default_cache() -> CompileCache:
    """The process-wide cache every :class:`VtiFlow` shares by default."""
    global _DEFAULT_CACHE
    with _DEFAULT_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = CompileCache()
        return _DEFAULT_CACHE
