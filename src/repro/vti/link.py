"""Partition linking: stitching routed fragments after routing.

Table 1: software links after compilation, the monolithic vendor flow
never links, VTI links **after routing** — the static region's routed
checkpoint is combined with freshly routed partition fragments. Linking
enforces the partial-reconfiguration boundary contract: an updated
partition must keep its port interface (names, widths, directions)
bit-identical, because the static region's routing to the region pins is
not re-done.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PartitionError
from ..rtl.module import Instance, Module


@dataclass(frozen=True)
class LinkReport:
    """Outcome of one link step."""

    partition_path: str
    boundary_nets: int
    static_cells: int


def boundary_signature(module: Module) -> str:
    """Canonical text form of a module's port interface.

    The region-pin contract linking enforces, in one comparable string:
    sorted ``name:width:direction`` triples. Two modules link against
    the same static checkpoint iff their signatures match; the compile
    cache folds this into its content address so a hit also vouches for
    the boundary check.
    """
    return ";".join(
        f"{p.name}:{p.width}:{p.direction}"
        for p in sorted(module.ports.values(), key=lambda p: p.name))


def check_boundary_compatible(old: Module, new: Module) -> int:
    """Verify the port interface is unchanged; returns boundary net count."""
    old_ports = {p.name: (p.width, p.direction)
                 for p in old.ports.values()}
    new_ports = {p.name: (p.width, p.direction)
                 for p in new.ports.values()}
    if old_ports != new_ports:
        missing = set(old_ports) - set(new_ports)
        added = set(new_ports) - set(old_ports)
        changed = {
            name for name in set(old_ports) & set(new_ports)
            if old_ports[name] != new_ports[name]
        }
        raise PartitionError(
            f"partition {new.name!r} changed its boundary "
            f"(missing={sorted(missing)}, added={sorted(added)}, "
            f"changed={sorted(changed)}); VTI links routed fragments, "
            f"so the region pin interface must stay fixed")
    return sum(width for width, _ in old_ports.values())


def replace_instance_module(top: Module, path: str,
                            new_module: Module) -> Module:
    """Return a copy of ``top`` with the instance at ``path`` swapped.

    Modules along the path are shallow-copied (their expressions and
    unaffected instances are shared); everything off-path is reused
    as-is — mirroring how the static region's netlist is untouched.
    """
    segments = path.split(".")

    def rebuild(module: Module, depth: int) -> Module:
        inst = module.instances.get(segments[depth])
        if inst is None:
            raise PartitionError(
                f"no instance {segments[depth]!r} under {module.name!r}")
        if depth == len(segments) - 1:
            child = new_module
        else:
            child = rebuild(inst.module, depth + 1)
        clone = Module(module.name)
        clone.ports = dict(module.ports)
        clone.wires = dict(module.wires)
        clone.assigns = dict(module.assigns)
        clone.registers = dict(module.registers)
        clone.memories = dict(module.memories)
        clone.assertions = list(module.assertions)
        clone.interfaces = list(module.interfaces)
        clone.attributes = dict(module.attributes)
        clone.instances = dict(module.instances)
        old_inst = module.instances[segments[depth]]
        clone.instances[segments[depth]] = Instance(
            name=old_inst.name, module=child,
            inputs=dict(old_inst.inputs), outputs=dict(old_inst.outputs))
        # Preserve clock maps and other instance attributes.
        for key, value in vars(old_inst).items():
            if key not in ("name", "module", "inputs", "outputs"):
                setattr(clone.instances[segments[depth]], key, value)
        return clone

    return rebuild(top, 0)
