"""Resource estimation for partition regions (paper Section 3.5).

For each resource kind the reserved region must satisfy::

    ER = resource * (1 + c)
    A_total >= max_resource ER

where ``resource`` comes from the synthesized netlist and ``c`` is the
over-provision coefficient trading area for timing (default 30%; the
paper reports timing closure also held at 20% and 15%).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..vendor.resources import ResourceVector

#: The paper's default area overhead.
DEFAULT_OVER_PROVISION = 0.30


@dataclass(frozen=True)
class RegionRequirement:
    """What a partition's region must provide."""

    partition_path: str
    raw: ResourceVector
    over_provision: float
    estimated: ResourceVector

    def satisfied_by(self, capacity: dict[str, int]) -> bool:
        """``A_total >= max_resource ER`` checked per resource kind."""
        return self.estimated.fits_in(capacity)

    def expected_fill(self, capacity: dict[str, int]) -> float:
        """Actual (raw) utilization of a satisfying region — the local
        congestion the timing model sees inside the partition."""
        return self.raw.max_ratio(capacity)


def estimate_requirements(path: str, resources: ResourceVector,
                          over_provision: float = DEFAULT_OVER_PROVISION
                          ) -> RegionRequirement:
    """Apply ``ER = resource * (1 + c)`` to every resource kind."""
    return RegionRequirement(
        partition_path=path,
        raw=resources,
        over_provision=over_provision,
        estimated=resources.scaled(1.0 + over_provision),
    )
