"""The VTI compilation flow (Figure 4).

``compile_initial`` runs the full design once: design split + reset
insertion, per-partition synthesis (partition-local optimization),
floorplanning every partition into reserved, over-provisioned regions of
the debug SLR, then the usual place/route/timing/bitgen — at a small,
one-time overhead over the plain vendor flow.

``compile_incremental`` is the payoff: an RTL change confined to a
partition re-synthesizes and re-places/routes *only that partition*
inside its reserved region, links the fragment against the untouched
static checkpoint, and emits a partial bitstream for just the region —
minutes instead of hours (paper Figure 7: ~18x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..config.database import DesignDatabase, synthesize_frame_words
from ..config.program import build_partial_bitstream
from ..errors import PartitionError
from ..fpga.device import Device
from ..obs import get_registry, get_tracer

#: Bound at import; the singletons are mutated in place, never replaced.
_TRACER = get_tracer()
from ..fpga.frames import BLOCK_MAIN, FrameAddress
from ..rtl.module import Module
from ..vendor import cost
from ..vendor.flow import CompileResult, VivadoFlow
from ..vendor.synth import SynthesisResult, synthesize
from ..vendor.timing import (
    FF_OVERHEAD_NS,
    LUT_NS,
    PathReport,
    TimingResult,
    congestion_penalty_ns,
)
from .estimate import RegionRequirement, estimate_requirements
from .floorplan import Floorplan, floorplan_partitions, region_frame_count
from .link import LinkReport, check_boundary_compatible, replace_instance_module
from .partition import DesignSplit, PartitionSpec, split_design


@dataclass
class VtiCompileResult:
    """Initial VTI compile: everything the incremental runs build on."""

    base: CompileResult
    split: DesignSplit
    floorplan: Floorplan
    requirements: dict[str, RegionRequirement]
    clocks: dict[str, float]
    top: Module
    version: int = 0

    @property
    def total_seconds(self) -> float:
        return self.base.total_seconds

    @property
    def database(self) -> Optional[DesignDatabase]:
        return self.base.database


@dataclass
class VtiIncrementalResult:
    """One incremental recompile of a single partition."""

    partition_path: str
    seconds: dict[str, float]
    timing: TimingResult
    link: LinkReport
    requirement: RegionRequirement
    new_top: Module
    version: int
    database: Optional[DesignDatabase] = None
    partial_bitstream: Optional[list[int]] = None
    region_mask: int = 0

    @property
    def total_seconds(self) -> float:
        return self.seconds["total"]


class VtiFlow:
    """Zoomie's incremental compiler, wrapping the vendor tool."""

    def __init__(self, device: Device, seed: str = "vti"):
        self.device = device
        self.vendor = VivadoFlow(device, seed=f"{seed}-vendor")
        self.seed = seed
        self._runs = 0

    # ------------------------------------------------------------------
    # initial compile
    # ------------------------------------------------------------------

    def compile_initial(self, top: Module, clocks: dict[str, float],
                        partitions: list[PartitionSpec],
                        debug_slr: Optional[int] = None,
                        **vendor_kwargs) -> VtiCompileResult:
        with _TRACER.span("vti.initial",
                          partitions=len(partitions)) as span:
            result = self._compile_initial(
                top, clocks, partitions, debug_slr, **vendor_kwargs)
            self._publish_stages("vti.initial", result.base.seconds,
                                 span)
            get_registry().histogram(
                "vti.initial_seconds",
                scale=1.0, base=4.0, buckets=12).observe(
                    result.total_seconds)
            get_registry().counter("vti.initial_runs").inc()
        return result

    def _publish_stages(self, what: str, seconds: dict[str, float],
                        span) -> None:
        """Per-stage child spans, modeled-clock only.

        The compile-time model charges stage seconds arithmetically —
        no wall time passes — which is exactly what the two-clock trace
        makes visible: a ``vti.route`` span that is microseconds of
        wall and hours of modeled hardware time.
        """
        for stage, stage_seconds in seconds.items():
            if stage == "total":
                continue
            with _TRACER.span(f"vti.{stage}") as stage_span:
                if stage_span is not None:
                    stage_span.add_modeled(stage_seconds)
        if span is not None:
            span.set(total_modeled_seconds=round(seconds["total"], 3))
            # Stages sum to the total; any residual (rounding in the
            # model) is charged here so parent == total holds.
            residual = seconds["total"] - math.fsum(
                value for key, value in seconds.items() if key != "total")
            span.add_modeled(residual)

    def _compile_initial(self, top: Module, clocks: dict[str, float],
                         partitions: list[PartitionSpec],
                         debug_slr: Optional[int] = None,
                         **vendor_kwargs) -> VtiCompileResult:
        split = split_design(top, partitions)

        requirements: dict[str, RegionRequirement] = {}
        for partition in split.partitions:
            psynth = synthesize(partition.module, opt="local")
            requirements[partition.path] = estimate_requirements(
                partition.path, psynth.totals,
                partition.spec.over_provision)

        plan = floorplan_partitions(
            self.device, list(requirements.values()), debug_slr)
        constraints = dict(plan.regions)

        base = self.vendor.compile(
            top, clocks, constraints=constraints, **vendor_kwargs)
        # VTI's own bookkeeping: partition setup on top of the vendor run
        # (Figure 7: "VTI requires additional steps when compiling from
        # scratch ... this overhead is negligible").
        seconds = dict(base.seconds)
        seconds["partition_setup"] = (
            cost.VTI_PARTITION_SETUP * len(split.partitions))
        seconds["total"] = seconds["total"] + seconds["partition_setup"]
        base.seconds = seconds
        base.flow = "vti-initial"

        return VtiCompileResult(
            base=base, split=split, floorplan=plan,
            requirements=requirements, clocks=dict(clocks), top=top)

    # ------------------------------------------------------------------
    # incremental recompile
    # ------------------------------------------------------------------

    def compile_incremental(self, initial: VtiCompileResult,
                            partition_path: str,
                            modified_module: Optional[Module] = None
                            ) -> VtiIncrementalResult:
        """Recompile one partition after an RTL change.

        ``modified_module`` is the partition's new definition (``None``
        re-runs the existing one, e.g. after a constraint-only change).
        """
        with _TRACER.span("vti.incremental",
                          partition=partition_path) as span:
            result = self._compile_incremental(
                initial, partition_path, modified_module)
            self._publish_stages("vti.incremental", result.seconds,
                                 span)
            if span is not None:
                span.set(version=result.version,
                         timing_met=result.timing.met)
            registry = get_registry()
            registry.histogram(
                "vti.incremental_seconds",
                scale=1.0, base=4.0, buckets=12).observe(
                    result.total_seconds)
            registry.counter("vti.incremental_runs").inc()
        return result

    def _compile_incremental(self, initial: VtiCompileResult,
                             partition_path: str,
                             modified_module: Optional[Module] = None
                             ) -> VtiIncrementalResult:
        run = self._runs
        self._runs += 1
        partition = initial.split.partition(partition_path)
        new_module = modified_module or partition.module

        boundary_nets = check_boundary_compatible(
            partition.module, new_module)

        # Partition-local synthesis.
        psynth = synthesize(new_module, opt="local")
        requirement = estimate_requirements(
            partition_path, psynth.totals,
            partition.spec.over_provision)
        region = initial.floorplan.regions[partition_path]
        capacity = region.capacity(self.device)
        if not requirement.satisfied_by(capacity):
            raise PartitionError(
                f"partition {partition_path!r} grew beyond its reserved "
                f"region ({requirement.estimated.as_dict()} vs "
                f"{capacity}); re-run the initial VTI compile")

        # Region-local timing: the partition's logic depth plus the
        # congestion of its own (over-provisioned) region only.
        fill = requirement.expected_fill(capacity)
        timing = self._partition_timing(psynth, fill, initial.clocks)

        # Cost: tiny partition compile + whole-design link + partial
        # bitstream for the region.
        seed = f"{self.seed}:{partition_path}"
        design_cells = initial.base.synth.totals.total_cells()
        region_frames = region_frame_count(self.device, region)
        seconds = {
            "synth": cost.synth_seconds(psynth.totals.lut, seed, run),
            "place": cost.place_seconds(
                psynth.totals.total_cells(), fill, seed, run),
            "route": cost.route_seconds(
                psynth.total_nets(), fill, seed, run),
            "link": cost.vti_link_seconds(design_cells, seed, run),
            "bitgen": (cost.VTI_PARTIAL_BITGEN_FIXED
                       + cost.BITGEN_PER_FRAME * region_frames)
            * cost.jitter(seed, "partial-bitgen", run),
        }
        seconds["total"] = math.fsum(seconds.values())

        link = LinkReport(
            partition_path=partition_path,
            boundary_nets=boundary_nets,
            static_cells=design_cells - psynth.totals.total_cells())

        new_top = (replace_instance_module(
            initial.top, partition_path, new_module)
            if modified_module is not None else initial.top)
        version = initial.version + 1

        database = None
        partial = None
        region_mask = initial.floorplan.region_mask(partition_path)
        if initial.base.database is not None:
            database, partial = self._rebuild_database(
                initial, new_top, partition_path, region_mask, version)

        return VtiIncrementalResult(
            partition_path=partition_path, seconds=seconds,
            timing=timing, link=link, requirement=requirement,
            new_top=new_top, version=version, database=database,
            partial_bitstream=partial, region_mask=region_mask)

    def compile_incremental_many(
            self, initial: VtiCompileResult,
            changes: dict[str, Optional[Module]]
            ) -> tuple[list[VtiIncrementalResult], float]:
        """Recompile several partitions at once.

        "Subsequent compilations are done in parallel within each
        partition, and the linking happens in the end for all
        partitions together" (Section 3.5): wall-clock time is the
        slowest partition's synth+place+route+bitgen plus **one** link
        of the static checkpoint.

        Returns the per-partition results and the combined wall-clock
        seconds.
        """
        if not changes:
            raise PartitionError("no partitions to recompile")
        results = [
            self.compile_incremental(initial, path, module)
            for path, module in changes.items()
        ]
        per_partition = [
            result.total_seconds - result.seconds["link"]
            for result in results
        ]
        shared_link = max(result.seconds["link"] for result in results)
        wall_seconds = max(per_partition) + shared_link
        return results, wall_seconds

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _partition_timing(self, psynth: SynthesisResult, fill: float,
                          clocks: dict[str, float]) -> TimingResult:
        penalty = congestion_penalty_ns(fill)
        paths = [
            PathReport(module=m.name,
                       delay_ns=(m.logic_levels * LUT_NS
                                 + FF_OVERHEAD_NS + penalty))
            for m in psynth.per_module.values()
        ]
        paths.sort(key=lambda p: p.delay_ns, reverse=True)
        critical = paths[0].delay_ns if paths else FF_OVERHEAD_NS
        fmax = {d: 1000.0 / critical for d in clocks}
        slack = {d: 1000.0 / mhz - critical for d, mhz in clocks.items()}
        return TimingResult(
            fmax_mhz=fmax, slack_ns=slack,
            met=all(s >= 0 for s in slack.values()), paths=paths)

    def _rebuild_database(self, initial: VtiCompileResult,
                          new_top: Module, partition_path: str,
                          region_mask: int, version: int):
        """Fabric-executable path: updated database + partial bitstream."""
        base_db = initial.base.database
        assert base_db is not None
        from ..rtl.flatten import elaborate
        from ..vendor.place import place

        flat = elaborate(new_top)
        full_synth = synthesize(new_top, opt="local")
        placement = place(full_synth, self.device, flat=flat,
                          constraints=dict(initial.floorplan.regions))
        assert placement.ll is not None

        region = initial.floorplan.regions[partition_path]
        columns = {c.index for c in region.columns(self.device)}
        name = f"{base_db.name}.v{version}"
        new_image = {
            slr: dict(frames)
            for slr, frames in base_db.frame_image.items()
        }
        partial_frames: dict[FrameAddress, list[int]] = {}
        for region_index in range(region.region_lo, region.region_hi + 1):
            for column in sorted(columns):
                address = FrameAddress(
                    block_type=BLOCK_MAIN, region=region_index,
                    column=column, minor=0)
                words = synthesize_frame_words(name, address)
                new_image.setdefault(region.slr, {})[address] = words
                partial_frames[address] = words

        database = DesignDatabase(
            name=name, device=self.device, netlist=flat,
            ll=placement.ll, clocks=dict(base_db.clocks),
            frame_image=new_image,
            gate_signals=dict(base_db.gate_signals))
        partial = build_partial_bitstream(
            database, region.slr, partial_frames, region_mask)
        return database, partial
