"""The VTI compilation flow (Figure 4).

``compile_initial`` runs the full design once: design split + reset
insertion, per-partition synthesis (partition-local optimization),
floorplanning every partition into reserved, over-provisioned regions of
the debug SLR, then the usual place/route/timing/bitgen — at a small,
one-time overhead over the plain vendor flow.

``compile_incremental`` is the payoff: an RTL change confined to a
partition re-synthesizes and re-places/routes *only that partition*
inside its reserved region, links the fragment against the untouched
static checkpoint, and emits a partial bitstream for just the region —
minutes instead of hours (paper Figure 7: ~18x).
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Optional

from ..chaos.schedule import fault_point
from ..chaos.supervise import get_supervisor, note_degradation
from ..config.database import DesignDatabase, synthesize_frame_words
from ..config.logic_loc import LogicLocationFile
from ..config.program import build_partial_bitstream
from ..errors import ChaosError, PartitionError
from ..fpga.device import Device
from ..obs import get_flight_recorder, get_registry, get_tracer

#: Bound at import; the singletons are mutated in place, never replaced.
_TRACER = get_tracer()
_FLIGHT = get_flight_recorder()
from ..fpga.frames import BLOCK_MAIN, FrameAddress
from ..rtl.module import Module
from ..vendor import cost
from ..vendor.flow import CompileResult, VivadoFlow
from ..vendor.synth import SynthesisResult, synthesize
from ..vendor.timing import (
    FF_OVERHEAD_NS,
    LUT_NS,
    PathReport,
    TimingResult,
    congestion_penalty_ns,
)
from .cache import CacheEntry, CompileCache, compile_fingerprint, \
    get_default_cache
from .estimate import RegionRequirement, estimate_requirements
from .floorplan import Floorplan, floorplan_partitions, region_frame_count
from .link import LinkReport, check_boundary_compatible, replace_instance_module
from .partition import DesignSplit, PartitionSpec, split_design


@dataclass
class VtiCompileResult:
    """Initial VTI compile: everything the incremental runs build on."""

    base: CompileResult
    split: DesignSplit
    floorplan: Floorplan
    requirements: dict[str, RegionRequirement]
    clocks: dict[str, float]
    top: Module
    version: int = 0
    #: Incremental versions claimed against this baseline so far; the
    #: flow advances it under a lock so chained and concurrent
    #: recompiles each get a distinct, monotonic version (and database
    #: name) instead of all colliding on ``version + 1``.
    issued_increments: int = 0

    @property
    def total_seconds(self) -> float:
        return self.base.total_seconds

    @property
    def database(self) -> Optional[DesignDatabase]:
        return self.base.database


@dataclass
class VtiIncrementalResult:
    """One incremental recompile of a single partition."""

    partition_path: str
    seconds: dict[str, float]
    timing: TimingResult
    link: LinkReport
    requirement: RegionRequirement
    new_top: Module
    version: int
    database: Optional[DesignDatabase] = None
    partial_bitstream: Optional[list[int]] = None
    region_mask: int = 0
    #: Whether the expensive artifacts came from the compile cache.
    cache_hit: bool = False

    @property
    def total_seconds(self) -> float:
        return self.seconds["total"]


#: Sentinel: "use the process-wide default cache" (pass ``cache=None``
#: to disable caching entirely).
_DEFAULT = object()


class VtiFlow:
    """Zoomie's incremental compiler, wrapping the vendor tool."""

    def __init__(self, device: Device, seed: str = "vti",
                 cache=_DEFAULT):
        self.device = device
        self.vendor = VivadoFlow(device, seed=f"{seed}-vendor")
        self.seed = seed
        self.cache: Optional[CompileCache] = (
            get_default_cache() if cache is _DEFAULT else cache)
        self._version_lock = threading.Lock()

    def _claim_version(self, initial: VtiCompileResult) -> int:
        """Next monotonic version against ``initial`` (thread-safe)."""
        with self._version_lock:
            initial.issued_increments += 1
            return initial.version + initial.issued_increments

    # ------------------------------------------------------------------
    # initial compile
    # ------------------------------------------------------------------

    def compile_initial(self, top: Module, clocks: dict[str, float],
                        partitions: list[PartitionSpec],
                        debug_slr: Optional[int] = None,
                        **vendor_kwargs) -> VtiCompileResult:
        with _TRACER.span("vti.initial",
                          partitions=len(partitions)) as span:
            result = self._compile_initial(
                top, clocks, partitions, debug_slr, **vendor_kwargs)
            self._publish_stages("vti.initial", result.base.seconds,
                                 span)
            get_registry().histogram(
                "vti.initial_seconds",
                scale=1.0, base=4.0, buckets=12).observe(
                    result.total_seconds)
            get_registry().counter("vti.initial_runs").inc()
            if _FLIGHT.enabled:
                _FLIGHT.note("vti", "initial",
                             partitions=len(partitions),
                             seconds=round(result.total_seconds, 3))
        return result

    def _publish_stages(self, what: str, seconds: dict[str, float],
                        span) -> None:
        """Per-stage child spans, modeled-clock only.

        The compile-time model charges stage seconds arithmetically —
        no wall time passes — which is exactly what the two-clock trace
        makes visible: a ``vti.route`` span that is microseconds of
        wall and hours of modeled hardware time.
        """
        for stage, stage_seconds in seconds.items():
            if stage == "total":
                continue
            with _TRACER.span(f"vti.{stage}") as stage_span:
                if stage_span is not None:
                    stage_span.add_modeled(stage_seconds)
        if span is not None:
            span.set(total_modeled_seconds=round(seconds["total"], 3))
            # Stages sum to the total; any residual (rounding in the
            # model) is charged here so parent == total holds.
            residual = seconds["total"] - math.fsum(
                value for key, value in seconds.items() if key != "total")
            span.add_modeled(residual)

    def _compile_initial(self, top: Module, clocks: dict[str, float],
                         partitions: list[PartitionSpec],
                         debug_slr: Optional[int] = None,
                         **vendor_kwargs) -> VtiCompileResult:
        split = split_design(top, partitions)

        requirements: dict[str, RegionRequirement] = {}
        for partition in split.partitions:
            psynth = synthesize(partition.module, opt="local")
            requirements[partition.path] = estimate_requirements(
                partition.path, psynth.totals,
                partition.spec.over_provision)

        plan = floorplan_partitions(
            self.device, list(requirements.values()), debug_slr)
        constraints = dict(plan.regions)

        base = self.vendor.compile(
            top, clocks, constraints=constraints, **vendor_kwargs)
        # VTI's own bookkeeping: partition setup on top of the vendor run
        # (Figure 7: "VTI requires additional steps when compiling from
        # scratch ... this overhead is negligible").
        seconds = dict(base.seconds)
        seconds["partition_setup"] = (
            cost.VTI_PARTITION_SETUP * len(split.partitions))
        seconds["total"] = seconds["total"] + seconds["partition_setup"]
        base.seconds = seconds
        base.flow = "vti-initial"

        return VtiCompileResult(
            base=base, split=split, floorplan=plan,
            requirements=requirements, clocks=dict(clocks), top=top)

    # ------------------------------------------------------------------
    # incremental recompile
    # ------------------------------------------------------------------

    def compile_incremental(self, initial: VtiCompileResult,
                            partition_path: str,
                            modified_module: Optional[Module] = None
                            ) -> VtiIncrementalResult:
        """Recompile one partition after an RTL change.

        ``modified_module`` is the partition's new definition (``None``
        re-runs the existing one, e.g. after a constraint-only change).
        """
        with _TRACER.span("vti.incremental",
                          partition=partition_path) as span:
            result = self._compile_incremental(
                initial, partition_path, modified_module)
            self._publish_incremental(result, span)
        return result

    def _publish_incremental(self, result: VtiIncrementalResult,
                             span) -> None:
        """Spans and metrics for one finished incremental compile.

        Kept apart from the compile itself because the scheduler's
        worker threads must not touch the (single-threaded) tracer —
        parallel compiles publish here post-merge, on the main thread.
        """
        self._publish_stages("vti.incremental", result.seconds, span)
        if span is not None:
            span.set(version=result.version,
                     timing_met=result.timing.met,
                     cache_hit=result.cache_hit)
        registry = get_registry()
        registry.histogram(
            "vti.incremental_seconds",
            scale=1.0, base=4.0, buckets=12).observe(
                result.total_seconds)
        registry.counter("vti.incremental_runs").inc()
        if _FLIGHT.enabled:
            _FLIGHT.note("vti", "incremental", version=result.version,
                         cache_hit=result.cache_hit,
                         seconds=round(result.total_seconds, 3))

    def _compile_incremental(self, initial: VtiCompileResult,
                             partition_path: str,
                             modified_module: Optional[Module] = None,
                             version: Optional[int] = None
                             ) -> VtiIncrementalResult:
        if version is None:
            version = self._claim_version(initial)
        # The jitter on modeled stage seconds is keyed by the compile's
        # version, never by execution order — so serial, parallel, and
        # cache-hit recompiles of the same change stay bit-identical.
        run = version
        partition = initial.split.partition(partition_path)
        new_module = modified_module or partition.module
        region = initial.floorplan.regions[partition_path]
        capacity = region.capacity(self.device)

        entry = None
        if self.cache is not None:
            fingerprint = compile_fingerprint(
                part=self.device.part, seed=self.seed,
                base_name=initial.base.name,
                partition_path=partition_path,
                over_provision=partition.spec.over_provision,
                region=str(region), baseline=partition.module,
                module=new_module)
            entry = self.cache.get(fingerprint)
        else:
            fingerprint = ""

        if entry is None:
            # Cold path: boundary check + partition-local synthesis.
            boundary_nets = check_boundary_compatible(
                partition.module, new_module)
            psynth = synthesize(new_module, opt="local")
            requirement = estimate_requirements(
                partition_path, psynth.totals,
                partition.spec.over_provision)
            if not requirement.satisfied_by(capacity):
                raise PartitionError(
                    f"partition {partition_path!r} grew beyond its "
                    f"reserved region "
                    f"({requirement.estimated.as_dict()} vs {capacity}); "
                    f"re-run the initial VTI compile")
            # Region-local timing: the partition's logic depth plus the
            # congestion of its own (over-provisioned) region only.
            fill = requirement.expected_fill(capacity)
            timing = self._partition_timing(psynth, fill, initial.clocks)
            entry = CacheEntry(
                fingerprint=fingerprint,
                partition_path=partition_path,
                boundary_nets=boundary_nets,
                requirement=requirement, timing=timing,
                partition_nets=psynth.total_nets())
            fresh = True
        else:
            # Hit: the fingerprint vouches for the boundary check, but
            # the fit check stays — it guards the region, not the
            # netlist, and costs nothing.
            requirement = entry.requirement
            if not requirement.satisfied_by(capacity):
                raise PartitionError(
                    f"partition {partition_path!r} grew beyond its "
                    f"reserved region "
                    f"({requirement.estimated.as_dict()} vs {capacity}); "
                    f"re-run the initial VTI compile")
            fill = requirement.expected_fill(capacity)
            timing = entry.timing
            fresh = False

        # Cost: tiny partition compile + whole-design link + partial
        # bitstream for the region. Always recomputed — modeled seconds
        # are what the real tool *would* spend, so a cache hit saves
        # host wall-clock, never modeled hardware time.
        seed = f"{self.seed}:{partition_path}"
        design_cells = initial.base.synth.totals.total_cells()
        region_frames = region_frame_count(self.device, region)
        seconds = {
            "synth": cost.synth_seconds(requirement.raw.lut, seed, run),
            "place": cost.place_seconds(
                requirement.raw.total_cells(), fill, seed, run),
            "route": cost.route_seconds(
                entry.partition_nets, fill, seed, run),
            "link": cost.vti_link_seconds(design_cells, seed, run),
            "bitgen": (cost.VTI_PARTIAL_BITGEN_FIXED
                       + cost.BITGEN_PER_FRAME * region_frames)
            * cost.jitter(seed, "partial-bitgen", run),
        }
        seconds["total"] = math.fsum(seconds.values())

        link = LinkReport(
            partition_path=partition_path,
            boundary_nets=entry.boundary_nets,
            static_cells=design_cells - requirement.raw.total_cells())

        if modified_module is None:
            new_top = initial.top
        elif entry.new_top is not None:
            new_top = entry.new_top
        else:
            new_top = replace_instance_module(
                initial.top, partition_path, new_module)
            entry.new_top = new_top

        database = None
        partial = None
        region_mask = initial.floorplan.region_mask(partition_path)
        if initial.base.database is not None:
            database, partial = self._rebuild_database(
                initial, new_top, partition_path, region_mask, version,
                entry)
        if fresh and self.cache is not None:
            self.cache.put(entry)

        return VtiIncrementalResult(
            partition_path=partition_path, seconds=seconds,
            timing=timing, link=link, requirement=requirement,
            new_top=new_top, version=version, database=database,
            partial_bitstream=partial, region_mask=region_mask,
            cache_hit=not fresh)

    def compile_incremental_many(
            self, initial: VtiCompileResult,
            changes: dict[str, Optional[Module]],
            parallel: bool = True,
            max_workers: Optional[int] = None
            ) -> tuple[list[VtiIncrementalResult], float]:
        """Recompile several partitions at once.

        "Subsequent compilations are done in parallel within each
        partition, and the linking happens in the end for all
        partitions together" (Section 3.5): wall-clock time is the
        slowest partition's synth+place+route+bitgen plus **one** link
        of the static checkpoint.

        With ``parallel=True`` the partition compiles really do run
        concurrently (a :class:`ThreadPoolExecutor`), then merge
        deterministically: results come back sorted by partition path,
        versions are pre-claimed in that same order, and the modeled
        seconds are bit-identical to the serial flow — only host
        wall-clock changes. If any partition fails, the error of the
        earliest failing path (in sorted order) is raised, matching
        what the serial loop would surface.

        Returns the per-partition results (sorted by partition path)
        and the combined modeled wall-clock seconds.
        """
        if not changes:
            raise PartitionError("no partitions to recompile")
        paths = sorted(changes)
        versions = {path: self._claim_version(initial)
                    for path in paths}
        registry = get_registry()
        queue_depth = registry.gauge("vti.scheduler.queue_depth")
        wall_histogram = registry.histogram(
            "vti.partition_compile_wall_seconds",
            scale=1e-6, base=4.0, buckets=16)

        def compile_one(path: str
                        ) -> tuple[VtiIncrementalResult, float]:
            fault = fault_point("vti.worker")
            if fault is not None:
                # A scheduler fault: the worker dies (or its future is
                # lost) before producing a result. The partition's
                # version is already claimed, so an inline restart by
                # the supervisor compiles to the identical artifact.
                raise ChaosError(
                    f"vti worker for {path!r} failed: {fault.kind} "
                    f"(injected)", kind=fault.kind, retryable=True)
            start = time.perf_counter()
            result = self._compile_incremental(
                initial, path, changes[path], version=versions[path])
            return result, time.perf_counter() - start

        def collect(path: str, run):
            """Run (or fetch) one partition's compile, restarting a
            dead worker inline under supervision — deterministic
            because the version was pre-claimed before any fan-out."""
            sup = get_supervisor()
            failures = 0
            while True:
                try:
                    return run()
                except ChaosError as error:
                    failures += 1
                    if (not sup.enabled or not error.retryable
                            or failures > sup.config.io_retries):
                        raise
                    sup.record_retry("vti.worker")
                    note_degradation(
                        "vti.worker_restart", site="vti.worker",
                        detail=f"{path}: {error.kind}")
                    run = lambda: compile_one(path)

        with _TRACER.span("vti.incremental_many",
                          partitions=len(paths),
                          parallel=parallel) as span:
            outcomes: dict[str, tuple[VtiIncrementalResult, float]] = {}
            if parallel and len(paths) > 1:
                workers = max_workers or min(
                    len(paths), max(2, os.cpu_count() or 2))
                queue_depth.set(len(paths))
                # Workers run the pure compile only; spans and metrics
                # are published post-merge (the tracer is
                # single-threaded by design).
                with ThreadPoolExecutor(
                        max_workers=workers,
                        thread_name_prefix="vti-compile") as pool:
                    futures = {path: pool.submit(compile_one, path)
                               for path in paths}
                    pending = len(paths)
                    for _ in as_completed(futures.values()):
                        pending -= 1
                        queue_depth.set(pending)
                    for path in paths:
                        # .result() re-raises the earliest failing
                        # path's error in sorted order — the same one
                        # the serial loop would surface. A dead worker
                        # is restarted inline by ``collect``.
                        outcomes[path] = collect(
                            path, futures[path].result)
            else:
                queue_depth.set(len(paths))
                for index, path in enumerate(paths):
                    outcomes[path] = collect(
                        path, lambda p=path: compile_one(p))
                    queue_depth.set(len(paths) - index - 1)

            results = []
            sup = get_supervisor()
            deadline = (sup.config.vti_partition_deadline
                        if sup.enabled else None)
            for path in paths:
                result, host_seconds = outcomes[path]
                if deadline is not None:
                    spent = (result.total_seconds
                             - result.seconds["link"])
                    if spent > deadline:
                        raise sup.deadline_hit(
                            "vti.worker", spent, deadline)
                wall_histogram.observe(host_seconds)
                with _TRACER.span("vti.incremental",
                                  partition=path) as child:
                    self._publish_incremental(result, child)
                results.append(result)

            per_partition = [
                result.total_seconds - result.seconds["link"]
                for result in results
            ]
            shared_link = max(
                result.seconds["link"] for result in results)
            wall_seconds = max(per_partition) + shared_link
            if span is not None:
                span.set(wall_modeled_seconds=round(wall_seconds, 3),
                         cache_hits=sum(
                             1 for r in results if r.cache_hit))
        return results, wall_seconds

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _partition_timing(self, psynth: SynthesisResult, fill: float,
                          clocks: dict[str, float]) -> TimingResult:
        penalty = congestion_penalty_ns(fill)
        paths = [
            PathReport(module=m.name,
                       delay_ns=(m.logic_levels * LUT_NS
                                 + FF_OVERHEAD_NS + penalty))
            for m in psynth.per_module.values()
        ]
        paths.sort(key=lambda p: p.delay_ns, reverse=True)
        critical = paths[0].delay_ns if paths else FF_OVERHEAD_NS
        fmax = {d: 1000.0 / critical for d in clocks}
        slack = {d: 1000.0 / mhz - critical for d, mhz in clocks.items()}
        return TimingResult(
            fmax_mhz=fmax, slack_ns=slack,
            met=all(s >= 0 for s in slack.values()), paths=paths)

    def _rebuild_database(self, initial: VtiCompileResult,
                          new_top: Module, partition_path: str,
                          region_mask: int, version: int,
                          entry: Optional[CacheEntry] = None):
        """Fabric-executable path: updated database + partial bitstream.

        O(partition), not O(design): the static region's logic-location
        entries and memory placements are copied from the initial
        compile's database (regions are exclusive, so a full re-place
        would reproduce them bit-for-bit), and only the changed
        partition is re-placed — via :func:`place_partition`, or pulled
        straight from the compile cache when the netlist was seen
        before. Frame content and the partial bitstream depend on the
        database *name* (hence version), so they are synthesized fresh
        every call.
        """
        base_db = initial.base.database
        assert base_db is not None
        from ..rtl.flatten import elaborate
        from ..vendor.place import place_partition

        flat = entry.flat if entry is not None else None
        if flat is None:
            flat = elaborate(new_top)
            if entry is not None:
                entry.flat = flat
        partition_ll = entry.partition_ll if entry is not None else None
        partition_memories = (
            entry.partition_memories if entry is not None else None)
        if partition_ll is None:
            partition_ll, partition_memories = place_partition(
                flat, self.device, partition_path,
                dict(initial.floorplan.regions))
            if entry is not None:
                entry.partition_ll = partition_ll
                entry.partition_memories = partition_memories

        dotted = partition_path + "."
        def is_static(name: str) -> bool:
            return not (name == partition_path
                        or name.startswith(dotted))
        ll = LogicLocationFile(
            [e for e in base_db.ll.entries if is_static(e.name)]
            + list(partition_ll))
        memory_map = {
            name: placement
            for name, placement in base_db.memory_map.items()
            if is_static(name)
        }
        memory_map.update(partition_memories or {})

        region = initial.floorplan.regions[partition_path]
        columns = {c.index for c in region.columns(self.device)}
        name = f"{base_db.name}.v{version}"
        new_image = {
            slr: dict(frames)
            for slr, frames in base_db.frame_image.items()
        }
        partial_frames: dict[FrameAddress, list[int]] = {}
        for region_index in range(region.region_lo, region.region_hi + 1):
            for column in sorted(columns):
                address = FrameAddress(
                    block_type=BLOCK_MAIN, region=region_index,
                    column=column, minor=0)
                words = synthesize_frame_words(name, address)
                new_image.setdefault(region.slr, {})[address] = words
                partial_frames[address] = words

        database = DesignDatabase(
            name=name, device=self.device, netlist=flat,
            ll=ll, clocks=dict(base_db.clocks),
            frame_image=new_image,
            gate_signals=dict(base_db.gate_signals),
            memory_map=memory_map)
        partial = build_partial_bitstream(
            database, region.slr, partial_frames, region_mask)
        return database, partial
