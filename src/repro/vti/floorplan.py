"""Floorplanning partition regions onto the device.

VTI "guides Vivado to place all modules being debugged inside one FPGA
chiplet to minimize cross-chiplet communication" (Section 3.5): every
partition region is a contiguous column span within a single SLR, grown
column by column until it satisfies the ``ER`` requirement, and aligned
to clock-region boundaries so the partial-reconfiguration GSR mask maps
cleanly onto it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlacementError
from ..fpga.device import Device
from ..vendor.place import Region
from .estimate import RegionRequirement


@dataclass
class Floorplan:
    """Assigned regions per partition path."""

    device: Device
    #: Every debugged partition lives in this SLR (one chiplet).
    debug_slr: int
    regions: dict[str, Region] = field(default_factory=dict)

    def region_mask(self, path: str) -> int:
        """GSR MASK bits covering this partition's clock regions."""
        region = self.regions[path]
        mask = 0
        for index in range(region.region_lo, region.region_hi + 1):
            mask |= 1 << index
        return mask


def _span_capacity(device: Device, slr: int, col_lo: int, col_hi: int,
                   regions: int) -> dict[str, int]:
    return Region(slr=slr, col_lo=col_lo, col_hi=col_hi,
                  region_lo=0, region_hi=regions - 1).capacity(device)


def floorplan_partitions(device: Device,
                         requirements: list[RegionRequirement],
                         debug_slr: int | None = None) -> Floorplan:
    """Allocate a column span per partition, all inside one SLR.

    Raises :class:`PlacementError` when the debug SLR cannot host every
    partition — the paper argues a user's region of interest fits in one
    chiplet; we enforce it.
    """
    if debug_slr is None:
        debug_slr = device.primary_slr
    slr = device.slr(debug_slr)
    plan = Floorplan(device=device, debug_slr=debug_slr)

    next_col = 0
    max_col = slr.columns[-1].index
    for requirement in requirements:
        # Height: fewest clock regions able to host the FF demand of one
        # column span, capped at the full SLR.
        spans_regions = slr.clock_regions
        # Grow a column window until capacity satisfies ER.
        col_lo = next_col
        col_hi = col_lo
        while True:
            if col_hi > max_col:
                raise PlacementError(
                    f"partition {requirement.partition_path!r} does not "
                    f"fit in SLR{debug_slr} starting at column {col_lo} "
                    f"(needs {requirement.estimated.as_dict()})")
            capacity = _span_capacity(
                device, debug_slr, col_lo, col_hi, spans_regions)
            if requirement.satisfied_by(capacity):
                break
            col_hi += 1
        # Shrink the height to the fewest aligned clock regions that
        # still satisfy the requirement (keeps the GSR mask small).
        best_hi_region = spans_regions - 1
        for regions in range(1, spans_regions + 1):
            capacity = _span_capacity(
                device, debug_slr, col_lo, col_hi, regions)
            if requirement.satisfied_by(capacity):
                best_hi_region = regions - 1
                break
        plan.regions[requirement.partition_path] = Region(
            slr=debug_slr, col_lo=col_lo, col_hi=col_hi,
            region_lo=0, region_hi=best_hi_region)
        next_col = col_hi + 1
    return plan


def region_frame_count(device: Device, region: Region) -> int:
    """Configuration frames covering one region (partial bitstream size)."""
    from ..fpga.frames import FrameSpace
    space = FrameSpace(device.slr(region.slr))
    columns = {c.index for c in region.columns(device)}
    count = 0
    for address in space.frames():
        if address.column in columns \
                and region.region_lo <= address.region <= region.region_hi:
            count += 1
    return count
