"""Partition specification and design splitting.

The user partitioning "takes the form of a list of modules" (paper
Section 3.5): each :class:`PartitionSpec` names one instance path the
designer intends to iterate on. :class:`DesignSplit` validates the paths
against the hierarchy, derives each partition's module definition and
resource needs, and performs *reset insertion* — partition boundaries get
a dedicated reset so a freshly reloaded partition can be brought up
without touching the static region (Figure 4's "Design Split, Reset
Insertion" step).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..errors import PartitionError
from ..rtl.module import Module
from .estimate import DEFAULT_OVER_PROVISION


@dataclass(frozen=True)
class PartitionSpec:
    """One iterated partition."""

    #: Hierarchical instance path (e.g. ``"tile0.core3"``).
    path: str
    #: Over-provision coefficient c trading area for timing headroom.
    over_provision: float = DEFAULT_OVER_PROVISION

    def __post_init__(self):
        if not self.path:
            raise PartitionError("partition path must be non-empty")
        if not 0.0 <= self.over_provision <= 2.0:
            raise PartitionError(
                f"over-provision coefficient {self.over_provision} "
                f"outside the sane range [0, 2]")


@dataclass
class Partition:
    """A resolved partition: spec + the module definition at its path."""

    spec: PartitionSpec
    module: Module
    #: True once reset insertion wrapped the partition boundary.
    reset_inserted: bool = False

    @property
    def path(self) -> str:
        return self.spec.path


@dataclass
class DesignSplit:
    """The design split into static logic plus iterated partitions."""

    top: Module
    partitions: list[Partition] = field(default_factory=list)

    def partition(self, path: str) -> Partition:
        for partition in self.partitions:
            if partition.path == path:
                return partition
        raise PartitionError(f"no partition at path {path!r}")

    def partition_paths(self) -> list[str]:
        return [p.path for p in self.partitions]


def _resolve_instance(top: Module, path: str) -> Module:
    module = top
    for segment in path.split("."):
        inst = module.instances.get(segment)
        if inst is None:
            raise PartitionError(
                f"no instance {segment!r} under {module.name!r} "
                f"(resolving partition path {path!r})")
        module = inst.module
    return module


def _insert_reset(partition: Partition) -> None:
    """Mark the partition's module for post-reload reset.

    The attribute drives two things downstream: the floorplanner keeps
    the partition's region aligned to clock-region (GSR mask) boundaries,
    and the partial-bitstream builder sets that region's MASK so the
    vendor GSR brings the fresh logic up while the static region keeps
    running.
    """
    partition.module.attributes["vti_partition"] = partition.path
    partition.module.attributes["vti_reset_inserted"] = True
    partition.reset_inserted = True


def split_design(top: Module,
                 specs: list[PartitionSpec]) -> DesignSplit:
    """Resolve and validate partition specs against the hierarchy."""
    if not specs:
        raise PartitionError("VTI needs at least one partition")
    seen: set[str] = set()
    split = DesignSplit(top=top)
    for spec in specs:
        if spec.path in seen:
            raise PartitionError(f"duplicate partition {spec.path!r}")
        for existing in seen:
            if spec.path.startswith(existing + ".") \
                    or existing.startswith(spec.path + "."):
                raise PartitionError(
                    f"partitions {existing!r} and {spec.path!r} nest; "
                    f"partitions must be disjoint subtrees")
        seen.add(spec.path)
        module = _resolve_instance(top, spec.path)
        partition = Partition(spec=spec, module=module)
        _insert_reset(partition)
        split.partitions.append(partition)
    return split
