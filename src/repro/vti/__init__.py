"""VTI — the Vendor Tool Incrementalizer (paper Section 3.5).

VTI splits a design into user-declared partitions, guides the vendor
tool to synthesize and place-and-route each partition independently
inside a reserved, over-provisioned region (``ER = resource * (1 + c)``),
links the routed fragments after routing (Table 1's "after routing"
linking), and loads updated partitions onto the FPGA through partial
bitstreams — turning hours-long recompiles into minutes (~18x, Fig. 7).
"""

from .partition import DesignSplit, PartitionSpec
from .estimate import estimate_requirements, DEFAULT_OVER_PROVISION
from .floorplan import floorplan_partitions
from .cache import CompileCache, compile_fingerprint, \
    get_default_cache, module_fingerprint
from .flow import VtiFlow, VtiCompileResult, VtiIncrementalResult

__all__ = [
    "DEFAULT_OVER_PROVISION",
    "CompileCache",
    "DesignSplit",
    "PartitionSpec",
    "VtiCompileResult",
    "VtiFlow",
    "VtiIncrementalResult",
    "compile_fingerprint",
    "estimate_requirements",
    "floorplan_partitions",
    "get_default_cache",
    "module_fingerprint",
]
