"""Per-SLR configuration microcontroller.

Executes decoded bitstream packets against one SLR: frame writes (FDRI),
readback (FDRO), command sequencing (WCFG/RCFG/START/GCAPTURE/GRESTORE/
SHUTDOWN/...), the GSR/capture region MASK, and the IDCODE check — which,
matching the paper's observation, is only *enforced* on the primary SLR;
secondary controllers store whatever arrives without it affecting
anything (Section 4.5, "Mutating Device ID in Bitstream").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import ConfigError
from ..fpga.frames import FrameAddress
from ..bitstream.crc import CrcAccumulator
from ..bitstream.packets import Packet, READ, WRITE
from ..bitstream.words import CMD_NAMES, REGISTERS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fabric import FabricDevice

_FAR = REGISTERS["FAR"]
_FDRI = REGISTERS["FDRI"]
_FDRO = REGISTERS["FDRO"]
_CMD = REGISTERS["CMD"]
_MASK = REGISTERS["MASK"]
_IDCODE = REGISTERS["IDCODE"]
_CRC = REGISTERS["CRC"]
_CLK_GATE = REGISTERS["CLK_GATE"]
_BOUT = REGISTERS["BOUT"]


class Microcontroller:
    """One SLR's configuration controller."""

    def __init__(self, fabric: "FabricDevice", slr_index: int):
        self.fabric = fabric
        self.slr_index = slr_index
        self.space = fabric.spaces[slr_index]
        self.memory = fabric.config[slr_index]
        self._frame_order = list(self.space.frames())
        self._frame_index = {
            address: position
            for position, address in enumerate(self._frame_order)
        }
        self.far: Optional[FrameAddress] = None
        self.mode: str = "idle"  # idle | write | read
        self.mask: int = 0
        self.idcode_received: Optional[int] = None
        self.stored: dict[int, int] = {}
        self.crc = CrcAccumulator()
        self.command_log: list[str] = []

    @property
    def is_primary(self) -> bool:
        return self.slr_index == self.fabric.device.primary_slr

    def enabled_regions(self) -> Optional[set[int]]:
        """Clock regions affected by global commands under current MASK.

        A zero mask means *all* regions; a nonzero mask restricts the
        effect to the set bits — the partial-reconfiguration behaviour
        Zoomie must undo before readback (Section 4.7).
        """
        if self.mask == 0:
            return None
        return {bit for bit in range(self.space.slr.clock_regions)
                if self.mask & (1 << bit)}

    # ------------------------------------------------------------------
    # packet execution
    # ------------------------------------------------------------------

    def execute(self, packet: Packet) -> list[int]:
        """Run one packet; returns read data (empty for writes)."""
        if packet.opcode == WRITE:
            self._write(packet.register, packet.words)
            return []
        if packet.opcode == READ:
            return self._read(packet.register, packet.read_count)
        return []

    def _write(self, register: int, words: list[int]) -> None:
        for word in words:
            self.crc.update(register, word)
        if register == _FAR:
            self._require(len(words) == 1, "FAR write needs one word")
            self.far = FrameAddress.from_word(words[0])
            self.space.validate(self.far)
        elif register == _CMD:
            for word in words:
                self._run_command(word)
        elif register == _MASK:
            self._require(len(words) == 1, "MASK write needs one word")
            self.mask = words[0]
        elif register == _IDCODE:
            self._require(len(words) == 1, "IDCODE write needs one word")
            self.idcode_received = words[0]
            if self.is_primary and words[0] != self.fabric.device.idcode:
                raise ConfigError(
                    f"SLR{self.slr_index}: IDCODE mismatch "
                    f"(got {words[0]:#010x}, device is "
                    f"{self.fabric.device.idcode:#010x})")
            # Secondary SLRs: stored, never enforced (paper Section 4.5).
        elif register == _FDRI:
            self._write_frames(words)
        elif register == _CLK_GATE:
            self._require(len(words) == 1, "CLK_GATE write needs one word")
            self.fabric.set_clock_gates(words[0], source_slr=self.slr_index)
        elif register == _BOUT:
            raise ConfigError(
                "BOUT writes are ring routing; they must not reach a "
                "microcontroller")
        elif register == _CRC:
            # Stored only; sections assembled by different tools interleave
            # per-SLR traffic, so strict global CRC checking is not
            # meaningful in the ring model.
            if words:
                self.stored[register] = words[0]
        else:
            if words:
                self.stored[register] = words[-1]

    def _read(self, register: int, count: int) -> list[int]:
        if register == _FDRO:
            self._require(self.mode == "read",
                          "FDRO read requires CMD=RCFG first")
            return self._read_frames(count)
        if register == _IDCODE:
            return [self.fabric.device.idcode] * max(count, 1)
        if register == REGISTERS["STAT"]:
            status = 0x1 if self.fabric.booted else 0x0
            return [status] * max(count, 1)
        return [self.stored.get(register, 0)] * max(count, 1)

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------

    def _run_command(self, code: int) -> None:
        name = CMD_NAMES.get(code)
        if name is None:
            raise ConfigError(f"unknown CMD value {code:#x}")
        self.command_log.append(name)
        if name == "WCFG":
            self.mode = "write"
        elif name == "RCFG":
            self.mode = "read"
        elif name == "NULL" or name == "LFRM":
            self.mode = "idle"
        elif name == "RCRC":
            self.crc.reset()
        elif name == "START":
            self.fabric.start(self.slr_index, self.enabled_regions())
        elif name == "SHUTDOWN":
            self.fabric.shutdown(self.slr_index)
        elif name == "GCAPTURE":
            self.fabric.capture(self.slr_index, self.enabled_regions())
        elif name == "GRESTORE":
            self.fabric.restore(self.slr_index, self.enabled_regions())
        elif name == "DESYNC":
            self.mode = "idle"
        # MFW, AGHIGH, SWITCH: accepted, no model behaviour needed.

    # ------------------------------------------------------------------
    # frame traffic
    # ------------------------------------------------------------------

    def _advance_far(self) -> None:
        assert self.far is not None
        position = self._frame_index[self.far] + 1
        if position < len(self._frame_order):
            self.far = self._frame_order[position]
        else:
            self.far = None  # ran off the end; next access errors

    def _write_frames(self, words: list[int]) -> None:
        self._require(self.mode == "write",
                      "FDRI write requires CMD=WCFG first")
        from ..fpga.frames import FRAME_WORDS
        self._require(len(words) % FRAME_WORDS == 0,
                      f"FDRI payload must be whole frames "
                      f"({FRAME_WORDS} words each)")
        for offset in range(0, len(words), FRAME_WORDS):
            self._require(self.far is not None, "FDRI write without FAR")
            written = self.far
            self.memory.write_frame(
                written, words[offset:offset + FRAME_WORDS])
            self._advance_far()
            # Content-frame writes take effect in the data plane at once
            # (BRAM/LUTRAM contents are configuration state).
            if self.fabric.booted:
                self.fabric.apply_content_frame(self.slr_index, written)

    def _read_frames(self, count: int) -> list[int]:
        from ..fpga.frames import FRAME_WORDS
        self._require(count % FRAME_WORDS == 0,
                      "FDRO read must request whole frames")
        out: list[int] = []
        for _ in range(count // FRAME_WORDS):
            self._require(self.far is not None, "FDRO read without FAR")
            out.extend(self.memory.read_frame(self.far))
            self._advance_far()
        return out

    def _require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ConfigError(f"SLR{self.slr_index}: {message}")

    def __repr__(self) -> str:
        return (f"Microcontroller(slr={self.slr_index}, "
                f"primary={self.is_primary})")
