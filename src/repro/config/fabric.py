"""The emulated FPGA card.

:class:`FabricDevice` combines the device geometry, per-SLR configuration
memory and microcontrollers, the JTAG ring, and — once a verified
bitstream has been loaded — the functional model of the programmed design
(an RTL simulator plus the logic-location map tying its registers to
configuration frame bits).

The split mirrors Figure 5's control/data planes: everything the paper
does over JTAG (configure, pause, capture, read back, mutate, resume)
flows through the microcontrollers and frames; the design itself executes
in the data plane.

Substitution note (see DESIGN.md): real fabric evaluates LUT equations
from frame bits. Here the data plane executes the design's netlist
directly, while the configuration plane still transports and verifies the
full frame image — a bitstream with wrong or missing frames refuses to
boot, capture/readback/restore move real state through real frame
addresses, and every control behaviour the paper relies on is preserved.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError
from ..fpga.device import Device
from ..fpga.frames import ConfigMemory, FrameSpace
from ..rtl.simulator import Simulator
from .database import DesignDatabase
from .jtag import JtagResult, JtagRing
from .microcontroller import Microcontroller
from .transport import CrashPlan, FaultPlan, RetryPolicy, VerifiedTransport


class FabricDevice:
    """One emulated FPGA card on the bench."""

    def __init__(self, device: Device):
        self.device = device
        self.spaces = [FrameSpace(slr) for slr in device.slrs]
        self.config = [ConfigMemory(space) for space in self.spaces]
        self.mcs = [Microcontroller(self, index)
                    for index in range(device.slr_count)]
        self.jtag = JtagRing(self)
        self.transport = VerifiedTransport(self.jtag)
        self.db: Optional[DesignDatabase] = None
        self.sim: Optional[Simulator] = None
        self.booted = False
        self._gate_mask = 0
        self._shutdown = False
        self._booted_db: Optional[DesignDatabase] = None

    # ------------------------------------------------------------------
    # the verified transport
    # ------------------------------------------------------------------

    def transact(self, words: list[int]) -> JtagResult:
        """Run one configuration program as a verified transaction.

        All debug-time control traffic (readback, capture-modify-restore
        writes, memory writes) routes through here so channel faults are
        detected by CRC and retried instead of silently consumed.
        """
        return self.transport.run(words)

    def enable_fault_injection(self, plan: FaultPlan,
                               policy: Optional[RetryPolicy] = None
                               ) -> None:
        """Install a seeded fault plan (and optionally a retry policy)
        on this card's JTAG channel."""
        self.transport.plan = plan
        if policy is not None:
            self.transport.policy = policy

    def disable_fault_injection(self) -> None:
        """Return to the perfect channel (verification stays on)."""
        self.transport.plan = None

    def enable_crash_plan(self, plan: CrashPlan) -> None:
        """Schedule a modeled host-process death on this card's session.

        Transport-batch boundaries are enforced here; journaled-command
        boundaries by the attached :class:`ZoomieDebugger`, which reads
        the same plan off the transport.
        """
        self.transport.crash_plan = plan

    def disable_crash_plan(self) -> None:
        self.transport.crash_plan = None

    # ------------------------------------------------------------------
    # programming lifecycle
    # ------------------------------------------------------------------

    def expect(self, db: DesignDatabase) -> None:
        """Announce the design whose bitstream is about to arrive.

        The real card carries this information *in* the bitstream (the
        frames are the design); our data plane runs the netlist instead,
        so the database rides alongside while the configuration plane
        still verifies the delivered frames against the expected image.
        """
        if db.device.name != self.device.name:
            raise ConfigError(
                f"design targets {db.device.name}, card is "
                f"{self.device.name}")
        self.db = db

    def start(self, slr_index: int,
              regions: Optional[set[int]]) -> None:
        """CMD=START: verify and boot (primary), release GSR, run clocks."""
        self._shutdown = False
        if slr_index != self.device.primary_slr:
            return  # secondaries join the primary-driven startup
        rewritten = self._take_rewritten()
        if not self.booted:
            self._verify_and_boot()
        elif self.db is not self._booted_db:
            # Partial reconfiguration swapped (part of) the design: the
            # new database arrived with the partial bitstream. Verify the
            # updated image, migrate surviving state, and GSR-initialize
            # exactly the flip-flops whose frames were rewritten.
            self._verify_image()
            self._migrate_design(rewritten)
        else:
            # Restart after SHUTDOWN: re-verify, GSR the masked regions.
            self._verify_image()
            self.apply_gsr(slr_index, regions)
        self._apply_gates()

    def _take_rewritten(self) -> set[tuple[int, int, int]]:
        """(slr, column, region) triples rewritten since the last START."""
        out: set[tuple[int, int, int]] = set()
        for slr_index, memory in enumerate(self.config):
            for address in memory.take_dirty():
                out.add((slr_index, address.column, address.region))
        return out

    def shutdown(self, slr_index: int) -> None:
        """CMD=SHUTDOWN: stop all design clocks for reconfiguration."""
        self._shutdown = True
        self._apply_gates()

    def power_cycle(self) -> None:
        """The card lost power and rebooted (chaos fault, or a real
        bench mishap).

        Everything volatile is gone: the running design's state, cycle
        counters, clock-gate masks, and host-side pause latches. The
        configuration image survives in our model (the bitstream was
        verified into config memory and the card re-programs from it on
        boot — the paper's warm-boot flow), so the design comes back up
        at its *initial* state, exactly like the first START. Sessions
        attached to this fabric must go through recovery; their journal
        replays onto the rebooted design deterministically.
        """
        self._gate_mask = 0
        self._shutdown = False
        if self._booted_db is not None:
            self.db = self._booted_db
            self.sim = Simulator(self.db.netlist, clocks=self.db.clocks)
            self.booted = True
            self._apply_gates()
        else:
            self.sim = None
            self.booted = False

    def _verify_image(self) -> None:
        assert self.db is not None
        for slr_index in range(self.device.slr_count):
            expected = self.db.frame_image.get(slr_index, {})
            memory = self.config[slr_index]
            for address, words in expected.items():
                got = memory.read_frame(address)
                if got != words:
                    raise ConfigError(
                        f"SLR{slr_index} frame {address}: configuration "
                        f"mismatch (bitstream did not deliver the "
                        f"expected image)")

    def _verify_and_boot(self) -> None:
        if self.db is None:
            raise ConfigError("no design database expected on this card")
        self._verify_image()
        self.sim = Simulator(self.db.netlist, clocks=self.db.clocks)
        self.booted = True
        self._booted_db = self.db

    def _migrate_design(self,
                        rewritten: set[tuple[int, int, int]]) -> None:
        """Swap the data plane for the updated design.

        State handling mirrors real partial reconfiguration: flip-flops
        whose configuration frames were *rewritten* come up at their
        (new) initial values; everything else keeps running state.
        """
        assert self.db is not None and self.sim is not None
        old_sim = self.sim
        old_registers = set(old_sim.netlist.registers)
        old_memories = set(old_sim.netlist.memories)
        new_sim = Simulator(self.db.netlist, clocks=self.db.clocks)
        reconfigured = {
            entry.name for entry in self.db.ll.entries
            if (entry.slr, entry.frame.column, entry.frame.region)
            in rewritten
        }
        for name in self.db.netlist.registers:
            if name in old_registers and name not in reconfigured:
                new_sim.force(name, old_sim.peek(name))
        for name, memory in self.db.netlist.memories.items():
            if name in old_memories:
                new_sim.memories[name][:] = old_sim.memories[name]
        for name, domain in new_sim.domains.items():
            if name in old_sim.domains:
                domain.cycles = old_sim.domains[name].cycles
        for name in self.db.netlist.inputs:
            if name in old_sim.netlist.inputs:
                new_sim.env[name] = old_sim.env[name]
        new_sim.time_ps = old_sim.time_ps
        self.sim = new_sim
        self._booted_db = self.db

    # ------------------------------------------------------------------
    # clocking (Section 4.2: global registers control the gates)
    # ------------------------------------------------------------------

    def set_clock_gates(self, mask: int, source_slr: int) -> None:
        from ..chaos.schedule import fault_point
        fault = fault_point("fabric.gate_ack")
        if fault is not None and fault.kind == "gate_ack_drop":
            # The write was acked on the ring but the gate-control
            # fabric dropped it: neither the mask register nor the
            # BUFGCEs change. Silent — callers that care verify via
            # is_gated() and re-issue (see ZoomieDebugger._safe_pause).
            return
        self._gate_mask = mask
        self._apply_gates()

    def _design_gate_requests(self) -> dict[str, bool]:
        """Gate requests driven by the design itself (Debug Controller)."""
        out: dict[str, bool] = {}
        if self.sim is None or self.db is None:
            return out
        for domain, signal in self.db.gate_signals.items():
            out[domain] = bool(self.sim.peek(signal))
        return out

    def _apply_gates(self) -> None:
        if self.sim is None or self.db is None:
            return
        requests = self._design_gate_requests()
        for domain, bit in self.db.domain_bits.items():
            gated = self._shutdown \
                or bool(self._gate_mask & (1 << bit)) \
                or requests.get(domain, False)
            self.sim.set_clock_gate(domain, gated)

    @property
    def gate_mask(self) -> int:
        """The host-written gate mask the control plane last accepted —
        what gate-ack verification reads back (design-driven gate
        *requests* are not in it)."""
        return self._gate_mask

    def is_gated(self, domain: str) -> bool:
        self._require_booted()
        assert self.sim is not None
        return self.sim.is_gated(domain)

    def sync_gates(self) -> None:
        """Re-evaluate gate requests once — the per-cycle check
        :meth:`run` performs, exposed for capture paths that batch many
        cycles after proving the requests cannot change mid-run."""
        self._require_booted()
        self._apply_gates()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, cycles: int = 1) -> None:
        """Advance the data plane; gate requests re-evaluate every cycle.

        The Debug Controller's pause output takes effect at the *next*
        edge after it asserts — the same glitchless BUFGCE behaviour the
        paper builds timing-precise pausing on.
        """
        self._require_booted()
        assert self.sim is not None
        if self.db is None or not self.db.gate_signals:
            # No design-driven gate requests exist, so the gate state is
            # constant for the whole run: apply it once and step in one
            # batch, letting the simulator's compiled hot loop take over.
            self._apply_gates()
            self.sim.step(cycles)
            return
        for _ in range(cycles):
            self._apply_gates()
            self.sim.step(1)

    def _require_booted(self) -> None:
        if not self.booted or self.sim is None:
            raise ConfigError("no design is running on the fabric")

    # ------------------------------------------------------------------
    # capture / restore / GSR (frame <-> flip-flop traffic)
    # ------------------------------------------------------------------

    def capture(self, slr_index: int, regions: Optional[set[int]]) -> None:
        """GCAPTURE: copy FF values into this SLR's capture frames, and
        refresh memory (BRAM/LUTRAM) content frames."""
        self._require_booted()
        assert self.sim is not None and self.db is not None
        memory = self.config[slr_index]
        for entry in self.db.ll.entries_for_slr(slr_index):
            if regions is not None and entry.frame.region not in regions:
                continue
            value = (self.sim.peek(entry.name) >> entry.bit) & 1
            memory.set_bit(entry.frame, entry.offset, value)
        self._capture_memories(slr_index, regions)

    def _capture_memories(self, slr_index: int,
                          regions: Optional[set[int]]) -> None:
        """Pack live memory words into content frames."""
        assert self.sim is not None and self.db is not None
        space = self.spaces[slr_index]
        config = self.config[slr_index]
        for name, placement in self.db.memory_map.items():
            if placement.slr != slr_index:
                continue
            first_region = placement.frame_addresses(space)[0].region
            if regions is not None and first_region not in regions:
                continue
            mem = self.db.netlist.memories[name]
            words = self.sim.memories[name]
            frames: dict = {}
            for index, word in enumerate(words):
                for bit in range(mem.width):
                    address, offset = placement.locate_bit(
                        space, index * mem.width + bit)
                    frame = frames.get(address)
                    if frame is None:
                        frame = frames[address] = \
                            config.read_frame(address)
                    word_i, word_off = divmod(offset, 32)
                    if (word >> bit) & 1:
                        frame[word_i] |= 1 << word_off
                    else:
                        frame[word_i] &= ~(1 << word_off)
            for address, frame in frames.items():
                config._frames[address] = frame  # capture, not "dirty"

    def apply_content_frame(self, slr_index: int, address) -> None:
        """Apply one written content frame back to the live memory.

        Writing BRAM/LUTRAM content frames over FDRI while the design is
        paused directly alters memory contents on real hardware; the
        microcontroller calls this after each content-frame write. Only
        the memory words whose bits the frame holds are touched.
        """
        if self.sim is None or self.db is None:
            return
        from ..fpga.frames import BLOCK_BRAM, FRAME_WORDS
        if address.block_type != BLOCK_BRAM:
            return
        space = self.spaces[slr_index]
        config = self.config[slr_index]
        frame_bits = FRAME_WORDS * 32
        for name, placement in self.db.memory_map.items():
            if placement.slr != slr_index:
                continue
            frame_start = placement.covers_frame(space, address)
            if frame_start is None or frame_start >= placement.bits:
                continue
            mem = self.db.netlist.memories[name]
            live = self.sim.memories[name]
            first_word = frame_start // mem.width
            last_word = min(
                mem.depth - 1,
                (frame_start + frame_bits - 1) // mem.width)
            for index in range(first_word, last_word + 1):
                value = 0
                for bit in range(mem.width):
                    frame_addr, offset = placement.locate_bit(
                        space, index * mem.width + bit)
                    value |= config.get_bit(frame_addr, offset) << bit
                live[index] = value
        self.sim._dirty = True

    def restore(self, slr_index: int, regions: Optional[set[int]]) -> None:
        """GRESTORE: load FF values from this SLR's capture frames."""
        self._require_booted()
        assert self.sim is not None and self.db is not None
        memory = self.config[slr_index]
        updates: dict[str, int] = {}
        for entry in self.db.ll.entries_for_slr(slr_index):
            if regions is not None and entry.frame.region not in regions:
                continue
            bit = memory.get_bit(entry.frame, entry.offset)
            current = updates.get(entry.name, self.sim.peek(entry.name))
            if bit:
                current |= 1 << entry.bit
            else:
                current &= ~(1 << entry.bit)
            updates[entry.name] = current
        for name, value in updates.items():
            self.sim.force(name, value)

    def apply_gsr(self, slr_index: int,
                  regions: Optional[set[int]]) -> None:
        """Global set/reset: registers return to their init values."""
        if self.sim is None or self.db is None:
            return
        for entry in self.db.ll.entries_for_slr(slr_index):
            if regions is not None and entry.frame.region not in regions:
                continue
            register = self.db.netlist.registers.get(entry.name)
            if register is not None:
                self.sim.force(entry.name, register.init)
