"""Design database: the vendor flow's handoff to the fabric.

Bundles everything the emulated card needs to behave like a configured
FPGA: the functional netlist, clock periods, the logic location file, the
expected configuration frame image per SLR (programming is only accepted
when the bitstream delivers matching frames — the stream content is
load-bearing, not decorative), and the debug-control wiring (which design
signal requests a pause of which clock domain, and which CLK_GATE register
bit gates it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..fpga.device import Device
from ..fpga.frames import FRAME_WORDS, FrameAddress
from ..rtl.netlist import Netlist
from .logic_loc import LogicLocationFile


@dataclass
class DesignDatabase:
    """A fully implemented design, ready to program."""

    name: str
    device: Device
    netlist: Netlist
    ll: LogicLocationFile
    #: Clock domain -> period in picoseconds.
    clocks: dict[str, int] = field(default_factory=dict)
    #: Expected configuration image: slr -> frame -> words.
    frame_image: dict[int, dict[FrameAddress, list[int]]] = \
        field(default_factory=dict)
    #: Clock domain -> design signal that, when 1, requests the domain's
    #: clock gate (driven by the Debug Controller's pause logic).
    gate_signals: dict[str, str] = field(default_factory=dict)
    #: Clock domain -> bit index in the global CLK_GATE control register.
    domain_bits: dict[str, int] = field(default_factory=dict)
    #: Memory name -> content-frame placement (BRAM/LUTRAM capture).
    memory_map: dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.domain_bits:
            self.domain_bits = {
                domain: index
                for index, domain in enumerate(
                    sorted(self.netlist.clock_domains()))
            }

    def domain_of_bit(self, bit: int) -> Optional[str]:
        for domain, index in self.domain_bits.items():
            if index == bit:
                return domain
        return None

    def image_checksum(self, slr: int) -> str:
        """Digest of one SLR's expected frame image."""
        digest = hashlib.sha256()
        for address in sorted(self.frame_image.get(slr, {})):
            digest.update(address.to_word().to_bytes(4, "big"))
            for word in self.frame_image[slr][address]:
                digest.update(word.to_bytes(4, "big"))
        return digest.hexdigest()


def synthesize_frame_words(seed: str, address: FrameAddress) -> list[int]:
    """Deterministic frame content derived from the design identity.

    Real frames hold LUT equations and routing bits; the functional model
    executes the netlist directly, but the *bytes shipped through the
    configuration path* still matter: programming verifies them against
    the expected image, so a corrupted or wrong-section bitstream fails
    exactly as on hardware.
    """
    material = f"{seed}:{address.to_word():#010x}".encode()
    words: list[int] = []
    counter = 0
    while len(words) < FRAME_WORDS:
        digest = hashlib.sha256(material + counter.to_bytes(4, "big")).digest()
        for index in range(0, len(digest), 4):
            if len(words) == FRAME_WORDS:
                break
            words.append(int.from_bytes(digest[index:index + 4], "big"))
        counter += 1
    return words
