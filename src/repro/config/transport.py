"""Verified, fault-injectable JTAG transactions.

The ring model in :mod:`repro.config.jtag` is a perfect channel; the
physical ring the paper reverse-engineers (Sections 4.4-4.7) is not.
This layer sits between assembled bitstream programs and
:meth:`JtagRing.run` and makes every control operation a *verified
transaction*:

- every batch is framed: the host CRCs the outgoing command stream and
  the device-side controller CRCs the read words it actually sends (the
  golden channel, :attr:`JtagResult.read_crc`);
- a seeded :class:`FaultPlan` deterministically perturbs the channel —
  bit flips in read words, truncated FDRO bursts, dropped BOUT hop
  pulses, transiently stuck secondary controllers;
- mismatches surface as a typed taxonomy (:class:`TransportError`,
  :class:`CorruptReadbackError`) and a bounded :class:`RetryPolicy`
  re-issues the batch with exponential backoff.

Command-path faults (dropped hops, stuck controllers) are detected by
framing *before* anything executes — a batch whose hop group lost a
pulse would otherwise capture, read, or worse *write* the wrong SLR.
Read-path faults are detected after execution; re-issuing is safe
because every debug batch is idempotent against a paused design
(GCAPTURE recaptures the same values, FDRI rewrites the same frames).

All waiting is modeled time: backoff charges seconds to the ring's
clock, never the host's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..bitstream.crc import crc32_stream
from ..bitstream.packets import Packet, WRITE, decode_stream, encode_packet
from ..bitstream.words import REGISTERS
from ..errors import (
    CorruptReadbackError,
    SessionCrashedError,
    TransportError,
)
from ..obs import get_flight_recorder, get_logger, get_registry, \
    get_tracer

#: Bound at import: the obs singletons are mutated in place, never
#: replaced, so module-level references stay valid.
_TRACER = get_tracer()
_FLIGHT = get_flight_recorder()
_LOG = get_logger()

if TYPE_CHECKING:  # pragma: no cover
    from .jtag import JtagResult, JtagRing

_BOUT = REGISTERS["BOUT"]
#: The single header word an empty BOUT write (one ring-hop pulse)
#: encodes to; dropping one of these retargets the whole batch.
HOP_PULSE_WORD = encode_packet(
    Packet(opcode=WRITE, register=_BOUT, words=[]))[0]


@dataclass
class FaultPlan:
    """Deterministic, seeded schedule of channel faults.

    Rates are per-batch-attempt probabilities drawn from one
    ``random.Random(seed)`` stream, so a failing run reproduces exactly
    from its seed, and each retry re-draws — transient faults clear.
    """

    seed: int = 0
    #: Probability that a batch's read words come back with 1..max_flips
    #: flipped bits.
    read_flip_rate: float = 0.0
    #: Probability that a batch's FDRO response is truncated.
    truncate_rate: float = 0.0
    #: Probability that one BOUT hop pulse is dropped from the command
    #: stream (only batches that hop can suffer this).
    drop_hop_rate: float = 0.0
    #: Probability that a targeted *secondary* controller goes stuck.
    stuck_rate: float = 0.0
    #: How many consecutive attempts a stuck controller stays stuck.
    stuck_attempts: int = 2
    max_flips: int = 3

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._stuck: dict[int, int] = {}

    def reset(self) -> None:
        """Rewind to the initial seeded state."""
        self._rng = random.Random(self.seed)
        self._stuck.clear()

    def stick(self, slr: int, attempts: Optional[int] = None) -> None:
        """Explicitly schedule ``slr``'s controller stuck for the next
        ``attempts`` attempts that target it (deterministic tests)."""
        self._stuck[slr] = (self.stuck_attempts if attempts is None
                            else attempts)

    # -- per-attempt draws (called by VerifiedTransport) ------------------

    def deliver_commands(self, words: list[int]) -> list[int]:
        """The command stream as the ring sees it (maybe one pulse short)."""
        if self.drop_hop_rate and self._rng.random() < self.drop_hop_rate:
            pulses = [index for index, word in enumerate(words)
                      if word == HOP_PULSE_WORD]
            if pulses:
                drop = self._rng.choice(pulses)
                return words[:drop] + words[drop + 1:]
        return words

    def stuck_target(self, secondaries: list[int]) -> Optional[int]:
        """The stuck controller this attempt trips over, if any."""
        for slr in secondaries:
            remaining = self._stuck.get(slr, 0)
            if remaining > 0:
                self._stuck[slr] = remaining - 1
                if not self._stuck[slr]:
                    del self._stuck[slr]
                return slr
        if secondaries and self.stuck_rate \
                and self._rng.random() < self.stuck_rate:
            slr = self._rng.choice(secondaries)
            if self.stuck_attempts > 1:
                self._stuck[slr] = self.stuck_attempts - 1
            return slr
        return None

    def deliver_response(self, words: list[int]) -> list[int]:
        """The read words as the host receives them."""
        delivered = words
        if delivered and self.truncate_rate \
                and self._rng.random() < self.truncate_rate:
            delivered = delivered[:self._rng.randrange(len(delivered))]
        if delivered and self.read_flip_rate \
                and self._rng.random() < self.read_flip_rate:
            delivered = list(delivered)
            for _ in range(self._rng.randint(1, self.max_flips)):
                index = self._rng.randrange(len(delivered))
                delivered[index] ^= 1 << self._rng.randrange(32)
        return delivered


@dataclass
class CrashPlan:
    """A scheduled (modeled) death of the host debugger process.

    Two independent boundaries, matching where real sessions die:

    - ``at_command``: the host dies at the N-th *journaled command
      boundary* (0-based). With ``before_apply=True`` the record is
      durable but the command never executed; otherwise it dies right
      after applying. Either way recovery replays to the same state —
      the journal is write-ahead. Checked by :class:`ZoomieDebugger`.
    - ``at_batch``: the host dies when the N-th transport batch
      (0-based, counted from when the plan is installed) is about to be
      issued — mid-command, the nastiest case. Checked here.

    Once tripped, the plan keeps raising: a dead process does not
    answer follow-up calls. Recovery happens on a *fresh* fabric.
    """

    at_command: Optional[int] = None
    before_apply: bool = True
    at_batch: Optional[int] = None
    tripped: bool = False
    #: Transport batches seen since installation.
    batches_seen: int = 0

    def trip(self, where: str) -> None:
        self.tripped = True
        raise SessionCrashedError(
            f"host process died at {where} (injected CrashPlan)")

    def check_alive(self) -> None:
        if self.tripped:
            raise SessionCrashedError(
                "session is dead (CrashPlan already tripped); recover "
                "on a fresh fabric")

    def observe_batch(self) -> None:
        """Called by the transport before issuing each batch."""
        self.check_alive()
        batch = self.batches_seen
        self.batches_seen += 1
        if self.at_batch is not None and batch >= self.at_batch:
            self.trip(f"transport batch {batch}")

    def observe_command(self, index: int, before: bool) -> None:
        """Called by the debugger around each journaled command."""
        self.check_alive()
        if self.at_command is None or index != self.at_command:
            return
        if before == self.before_apply:
            when = "before applying" if before else "after applying"
            self.trip(f"command boundary #{index} ({when})")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (modeled seconds).

    ``jitter`` de-synchronizes concurrent sessions: with N debuggers
    sharing a fabric fleet, lockstep exponential backoff re-collides
    every retry wave. A non-zero jitter spreads each backoff uniformly
    over ``[backoff * (1 - jitter), backoff * (1 + jitter)]`` (capped
    at ``max_backoff_seconds``), drawn from a dedicated
    ``random.Random(jitter_seed)`` stream so a given policy instance
    replays its exact backoff sequence — deterministic adversity, like
    everything else in this stack. With ``jitter=0.0`` (the default)
    the arithmetic is bit-identical to the pre-jitter policy.
    """

    max_attempts: int = 6
    backoff_seconds: float = 0.01
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.25
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter}")
        # The dataclass is frozen; the RNG is mutable companion state
        # (like FaultPlan's), not part of the policy's value.
        object.__setattr__(
            self, "_rng", random.Random(self.jitter_seed))

    def backoff_for(self, failure: int) -> float:
        """Backoff after the ``failure``-th failed attempt (1-based)."""
        base = min(
            self.backoff_seconds * self.backoff_multiplier ** (failure - 1),
            self.max_backoff_seconds)
        if not self.jitter:
            return base
        spread = base * self.jitter
        return min(base - spread + self._rng.random() * 2.0 * spread,
                   self.max_backoff_seconds)


@dataclass
class TransportStats:
    """Per-ring transaction counters."""

    batches: int = 0
    attempts: int = 0
    retries: int = 0
    corrupt_detected: int = 0
    command_faults_detected: int = 0
    stuck_detected: int = 0
    exhausted: int = 0
    seconds_in_retry: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "batches": self.batches,
            "attempts": self.attempts,
            "retries": self.retries,
            "corrupt_detected": self.corrupt_detected,
            "command_faults_detected": self.command_faults_detected,
            "stuck_detected": self.stuck_detected,
            "exhausted": self.exhausted,
            "seconds_in_retry": self.seconds_in_retry,
        }


class VerifiedTransport:
    """Retrying, CRC-verified transactions over one :class:`JtagRing`.

    With no fault plan installed this is a zero-overhead pass-through:
    the returned result (words *and* modeled seconds) is bit-identical
    to calling ``ring.run`` directly — verification is host-side
    arithmetic and charges no channel time.
    """

    def __init__(self, ring: "JtagRing",
                 plan: Optional[FaultPlan] = None,
                 policy: Optional[RetryPolicy] = None):
        self.ring = ring
        self.plan = plan
        self.policy = policy or RetryPolicy()
        self.stats = TransportStats()
        # Process-wide mirror of the per-ring counters: every ring sums
        # into the same registry names, so `zoomie stats` and the
        # metrics JSON see global totals while self.stats stays
        # per-ring. Instruments are cached here; run() publishes
        # per-batch deltas.
        registry = get_registry()
        self._counters = {
            key: registry.counter(f"transport.{key}")
            for key in self.stats.as_dict()
        }
        self._batch_seconds = registry.histogram(
            "transport.batch_seconds")
        #: Injected host-death schedule (see :class:`CrashPlan`).
        self.crash_plan: Optional[CrashPlan] = None
        #: Optional per-fabric circuit breaker
        #: (:class:`~repro.chaos.supervise.CircuitBreaker`): consulted
        #: before every batch, fed every terminal outcome. None (the
        #: default) costs one attribute check per batch.
        self.breaker = None
        #: Modeled-seconds budget of the *current guarded operation*
        #: (the debugger's watchdog window); None = no deadline. All
        #: batches inside the window — including successful ones and
        #: backoff waits — draw it down, so a permanently stuck
        #: controller terminates within the deadline instead of
        #: spinning through an arbitrarily generous retry policy.
        self.deadline_remaining: Optional[float] = None

    # -- watchdog window (driven by ZoomieDebugger) ---------------------

    def begin_deadline(self, seconds: float) -> None:
        self.deadline_remaining = seconds

    def end_deadline(self) -> None:
        self.deadline_remaining = None

    @property
    def deadline_active(self) -> bool:
        return self.deadline_remaining is not None

    def _charge_deadline(self, seconds: float) -> None:
        if self.deadline_remaining is not None:
            self.deadline_remaining -= seconds

    def _deadline_expired(self) -> bool:
        return self.deadline_remaining is not None \
            and self.deadline_remaining <= 0

    def run(self, words: list[int]) -> "JtagResult":
        """Execute one program as a verified transaction.

        Every batch publishes its counter deltas into the metrics
        registry; with tracing enabled it additionally becomes a
        ``jtag.batch`` span carrying attempt/retry/CRC attributes plus
        both clocks (wall time measured, channel seconds modeled).
        """
        before = self.stats.as_dict()
        if not _TRACER.enabled:
            try:
                result = self._run_verified(words)
            except TransportError:
                self._publish(before, None, None)
                raise
            self._publish(before, None, result)
            return result
        with _TRACER.span("jtag.batch", words=len(words)) as span:
            try:
                result = self._run_verified(words)
            except TransportError as error:
                self._publish(before, span, None)
                span.set(outcome=error.kind)
                raise
            self._publish(before, span, result)
            return result

    def _publish(self, before: dict, span, result) -> None:
        """Metrics + span attributes for one completed batch."""
        after = self.stats.as_dict()
        counters = self._counters
        for key, value in after.items():
            delta = value - before[key]
            if delta:
                counters[key].inc(delta)
        if result is not None:
            self._batch_seconds.observe(result.seconds)
        retries = int(after["retries"] - before["retries"])
        if _FLIGHT.enabled:
            # One small record per batch; part of the always-on <5%
            # flight-recorder overhead gate.
            _FLIGHT.note("transport", "batch", retries=retries,
                         verified=result is not None)
        if retries and _LOG.enabled:
            _LOG.warn("transport.retries", retries=retries,
                      corrupt=int(after["corrupt_detected"]
                                  - before["corrupt_detected"]),
                      verified=result is not None)
        if span is not None:
            span.set(
                attempts=int(after["attempts"] - before["attempts"]),
                retries=retries,
                crc_faults=int(after["corrupt_detected"]
                               - before["corrupt_detected"]),
                command_faults=int(after["command_faults_detected"]
                                   - before["command_faults_detected"]),
                verified=result is not None)
            # Modeled channel seconds: a successful result already
            # carries its failed attempts' time; a failed batch only
            # has its retry time.
            if result is not None:
                span.set(read_words=len(result.read_words))
                span.add_modeled(result.seconds)
            else:
                span.add_modeled(after["seconds_in_retry"]
                                 - before["seconds_in_retry"])

    def _run_verified(self, words: list[int]) -> "JtagResult":
        if self.crash_plan is not None:
            self.crash_plan.observe_batch()
        if self.breaker is not None:
            # May raise CircuitOpenError — refused without touching the
            # channel, charging nothing, counting nothing: the whole
            # point of the breaker.
            self.breaker.allow()
        self.stats.batches += 1
        if self._deadline_expired():
            raise TransportError(
                "operation deadline already exhausted before this "
                "batch", kind="deadline")
        try:
            result = self._run_attempts(words)
        except TransportError:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return result

    def _run_attempts(self, words: list[int]) -> "JtagResult":
        if self.plan is None:
            self.stats.attempts += 1
            self._check_chaos(words)
            result = self.ring.run(words)
            self._verify(result.read_words, len(result.read_words),
                         result.read_crc)
            self._charge_deadline(result.seconds)
            return result
        wasted = 0.0
        last_error: Optional[TransportError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.stats.attempts += 1
            try:
                result = self._attempt(words)
            except TransportError as error:
                last_error = error
                wasted += error.seconds
                self.stats.seconds_in_retry += error.seconds
                self._charge_deadline(error.seconds)
                if not error.retryable:
                    # A permanent per-attempt fault: retrying the same
                    # batch cannot help, surface it now.
                    raise
                if self._deadline_expired():
                    break
                if attempt < self.policy.max_attempts:
                    self.stats.retries += 1
                    pause = self.policy.backoff_for(attempt)
                    self.ring.total_seconds += pause
                    self.stats.seconds_in_retry += pause
                    wasted += pause
                    self._charge_deadline(pause)
                    if self._deadline_expired():
                        break
                continue
            # The failed attempts' channel time is real session time:
            # surface it on the result the caller accounts.
            result.seconds += wasted
            self._charge_deadline(result.seconds - wasted)
            return result
        assert last_error is not None
        if self._deadline_expired():
            raise TransportError(
                f"operation deadline exhausted after {attempt} "
                f"attempt(s) "
                f"({wasted:.3f} s of modeled channel time lost): "
                f"{last_error}", kind="deadline",
                attempts=self.policy.max_attempts,
                seconds=wasted) from last_error
        self.stats.exhausted += 1
        raise type(last_error)(
            f"transaction failed after {self.policy.max_attempts} "
            f"attempts: {last_error}", kind=last_error.kind,
            attempts=self.policy.max_attempts,
            seconds=wasted) from last_error

    # ------------------------------------------------------------------

    def _check_chaos(self, words: list[int]) -> None:
        """Fabric-lifecycle faults injected per batch attempt.

        ``device_hang`` is a transient non-response of the whole card
        (retryable, charged like a stuck controller); ``power_cycle``
        reboots the card mid-batch — the design restarts from its init
        state, and the error is terminal for the session (recovery on
        the rebooted or a fresh fabric is the only way forward).
        """
        from ..chaos.schedule import fault_point
        fault = fault_point("transport.batch")
        if fault is None:
            return
        from .jtag import BATCH_OVERHEAD_SECONDS, JTAG_BYTES_PER_SECOND
        seconds = BATCH_OVERHEAD_SECONDS \
            + len(words) * 4 / JTAG_BYTES_PER_SECOND
        if fault.kind == "device_hang":
            self.ring.total_seconds += seconds
            self.stats.stuck_detected += 1
            raise TransportError(
                "device hung: no TDO activity for the whole batch "
                "window (injected)", kind="hang", seconds=seconds)
        if fault.kind == "power_cycle":
            self.ring.total_seconds += seconds
            self.ring.fabric.power_cycle()
            from ..errors import ChaosError
            raise ChaosError(
                "fabric power-cycled mid-batch (injected): design "
                "state is gone; recover the session", kind="power_cycle",
                retryable=False)

    def _attempt(self, words: list[int]) -> "JtagResult":
        from .jtag import BATCH_OVERHEAD_SECONDS, JTAG_BYTES_PER_SECOND
        plan = self.plan
        assert plan is not None
        self._check_chaos(words)

        # Command path: the primary controller checks the stream framing
        # (word count + CRC) before executing anything — a dropped hop
        # pulse must never silently retarget reads or writes.
        delivered = plan.deliver_commands(words)
        if len(delivered) != len(words) \
                or crc32_stream(delivered) != crc32_stream(words):
            seconds = BATCH_OVERHEAD_SECONDS \
                + len(delivered) * 4 / JTAG_BYTES_PER_SECOND
            self.ring.total_seconds += seconds
            self.stats.command_faults_detected += 1
            raise TransportError(
                "command stream framing mismatch (BOUT hop pulse "
                "dropped in transit); batch rejected before execution",
                kind="command", seconds=seconds)

        stuck = plan.stuck_target(self._secondary_targets(words))
        if stuck is not None:
            seconds = BATCH_OVERHEAD_SECONDS \
                + len(words) * 4 / JTAG_BYTES_PER_SECOND
            self.ring.total_seconds += seconds
            self.stats.stuck_detected += 1
            raise TransportError(
                f"SLR{stuck} configuration controller not responding",
                kind="stuck", seconds=seconds)

        result = self.ring.run(words)
        received = plan.deliver_response(result.read_words)
        try:
            self._verify(received, len(result.read_words), result.read_crc)
        except CorruptReadbackError as error:
            error.seconds = result.seconds
            self.stats.corrupt_detected += 1
            raise
        return result

    def _verify(self, received: list[int], sent_count: int,
                golden_crc: int) -> None:
        """Check the received read words against the golden framing."""
        if len(received) != sent_count:
            raise CorruptReadbackError(
                f"truncated readback: received {len(received)} of "
                f"{sent_count} words", kind="truncated")
        if crc32_stream(received) != golden_crc:
            raise CorruptReadbackError(
                f"readback CRC mismatch over {len(received)} words "
                f"(host CRC != golden channel CRC)")

    def _secondary_targets(self, words: list[int]) -> list[int]:
        """Secondary SLRs this program addresses (hop-group scan)."""
        device = self.ring.fabric.device
        primary = device.primary_slr
        count = device.slr_count
        targets: set[int] = set()
        pending = 0
        target = primary
        for packet in decode_stream(words):
            if packet.opcode == WRITE and packet.register == _BOUT \
                    and not packet.words:
                pending += 1
                continue
            if pending:
                target = (primary + pending) % count
                pending = 0
            targets.add(target)
        return sorted(slr for slr in targets if slr != primary)
