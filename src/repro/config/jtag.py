"""The JTAG ring connecting SLR microcontrollers.

Implements the paper's Section 4.4/4.6 findings as executable behaviour:

- the external master talks to the **primary** SLR's controller;
- a group of ``k`` consecutive empty BOUT writes directs all subsequent
  operations at the SLR ``k`` ring-hops away, until the next group;
- IDCODE writes never select an SLR (they are ordinary register writes,
  enforced only by the primary);
- each operation affects exactly one SLR.

The ring also carries the bandwidth model used for Table 3: words move at
JTAG speed, plus a per-hop latency for reaching secondary SLRs — which is
why reading the primary SLR is measurably (slightly) faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..bitstream.crc import crc32_stream
from ..bitstream.packets import Packet, READ, WRITE, decode_stream
from ..bitstream.words import REGISTERS

if TYPE_CHECKING:  # pragma: no cover
    from .fabric import FabricDevice

_BOUT = REGISTERS["BOUT"]

#: Effective JTAG payload bandwidth (bytes/second). Calibrated so a full
#: single-SLR readback of the U200 model (26,752 frames incl. BRAM and
#: LUTRAM content) takes ~33.6 s, matching the paper's unoptimized
#: Table 3 measurement.
JTAG_BYTES_PER_SECOND = 296_000
#: Extra latency per ring hop of the *current target* for each operation
#: batch (secondary SLRs are reached through the primary's controller).
HOP_SECONDS = 0.004
#: Fixed cost of arming one JTAG transaction batch.
BATCH_OVERHEAD_SECONDS = 0.05


@dataclass
class JtagResult:
    """Outcome of one :meth:`JtagRing.run` batch."""

    read_words: list[int] = field(default_factory=list)
    seconds: float = 0.0
    #: (target_slr, packet) execution trace.
    log: list[tuple[int, Packet]] = field(default_factory=list)
    #: Device-side CRC-32 over ``read_words`` as they were sent back
    #: (the golden channel). The verified transport compares the host's
    #: CRC over the *received* words against this per batch.
    read_crc: int = 0


class JtagRing:
    """Routes a bitstream word stream across the SLR ring."""

    def __init__(self, fabric: "FabricDevice"):
        self.fabric = fabric
        self.total_seconds = 0.0
        #: Number of programs executed over this ring.
        self.batches = 0

    def run(self, words: list[int]) -> JtagResult:
        """Execute one configuration/readback program."""
        fabric = self.fabric
        primary = fabric.device.primary_slr
        count = fabric.device.slr_count
        result = JtagResult()
        result.seconds += BATCH_OVERHEAD_SECONDS
        result.seconds += len(words) * 4 / JTAG_BYTES_PER_SECOND

        target = primary
        pending_hops = 0
        for packet in decode_stream(words):
            if packet.opcode == WRITE and packet.register == _BOUT \
                    and not packet.words:
                pending_hops += 1
                continue
            if pending_hops:
                target = (primary + pending_hops) % count
                result.seconds += pending_hops * HOP_SECONDS
                pending_hops = 0
            controller = fabric.mcs[target]
            data = controller.execute(packet)
            if packet.opcode == READ:
                result.read_words.extend(data)
                hops = (target - primary) % count
                result.seconds += (
                    len(data) * 4 / JTAG_BYTES_PER_SECOND
                    + hops * HOP_SECONDS)
            result.log.append((target, packet))
        result.read_crc = crc32_stream(result.read_words)
        self.batches += 1
        self.total_seconds += result.seconds
        return result
