"""Bitstream program builders for complete designs.

Turn a :class:`~repro.config.database.DesignDatabase` into the word
streams that configure a card: the full multi-SLR program (sections in
ring order, each opened by its BOUT hop group, exactly the structure the
paper dissects) and partial programs used by VTI's fast reload and by
snapshot restore.
"""

from __future__ import annotations

from ..bitstream.assembler import BitstreamAssembler
from ..fpga.frames import FrameAddress
from .database import DesignDatabase


def slr_config_order(db: DesignDatabase) -> list[int]:
    """Primary first, then ring order — the order sections appear in."""
    device = db.device
    return [(device.primary_slr + hops) % device.slr_count
            for hops in range(device.slr_count)]


def build_full_bitstream(db: DesignDatabase) -> list[int]:
    """The complete configuration program for a design."""
    asm = BitstreamAssembler(db.device)
    asm.preamble()
    for slr_index in slr_config_order(db):
        asm.hop_to_slr(slr_index)
        asm.write_idcode()
        image = db.frame_image.get(slr_index, {})
        for address in sorted(image):
            asm.write_frames(address, [image[address]])
    asm.hop_to_slr(db.device.primary_slr)
    asm.startup()
    return asm.words


def build_partial_bitstream(db: DesignDatabase, slr_index: int,
                            frames: dict[FrameAddress, list[int]],
                            region_mask: int = 0) -> list[int]:
    """Reconfigure a subset of one SLR's frames while the rest persists.

    Mirrors the vendor partial-reconfiguration flow: SHUTDOWN the
    clocks, set the GSR MASK to the dynamic region, deliver the frames,
    then START. Note the mask is *not* cleared afterwards — the exact
    behaviour Zoomie's readback must compensate for (Section 4.7).
    """
    asm = BitstreamAssembler(db.device)
    asm.preamble()
    asm.command("SHUTDOWN")
    asm.hop_to_slr(slr_index)
    if region_mask:
        asm.write_register("MASK", [region_mask])
    for address in sorted(frames):
        asm.write_frames(address, [frames[address]])
    asm.hop_to_slr(db.device.primary_slr)
    asm.command("START").nop(2).command("DESYNC").dummy(4)
    return asm.words


def build_state_write(db: DesignDatabase, slr_index: int,
                      capture_frames: dict[FrameAddress, list[int]]
                      ) -> list[int]:
    """Write capture frames and GRESTORE them into the running design.

    This is the state-manipulation path (Section 3.3): the debugger
    modifies FF values by writing their capture bits and pulsing
    GRESTORE, leaving untouched regions intact.
    """
    asm = BitstreamAssembler(db.device)
    asm.preamble()
    asm.hop_to_slr(slr_index)
    asm.clear_mask()
    asm.command("WCFG")
    for address in sorted(capture_frames):
        asm.write_register("FAR", [address.to_word()])
        asm.write_register("FDRI", list(capture_frames[address]))
    asm.restore()
    asm.command("DESYNC").dummy(2)
    return asm.words
