"""Configuration plane: microcontrollers, JTAG ring, and the fabric.

Models the control plane of Figure 5 and the multi-SLR architecture of
Section 4: every SLR is a complete FPGA with its own configuration
microcontroller; an external JTAG master talks to the primary SLR's
controller and reaches the secondaries through a ring, switched by empty
writes to the undocumented BOUT register. :class:`FabricDevice` is the
emulated card: configuration memory per SLR plus the functional model of
whatever design is currently programmed.
"""

from .database import DesignDatabase
from .fabric import FabricDevice
from .jtag import JtagRing, JtagResult
from .logic_loc import LLEntry, LogicLocationFile
from .microcontroller import Microcontroller
from .transport import (
    CrashPlan,
    FaultPlan,
    RetryPolicy,
    TransportStats,
    VerifiedTransport,
)

__all__ = [
    "CrashPlan",
    "DesignDatabase",
    "FabricDevice",
    "FaultPlan",
    "JtagResult",
    "JtagRing",
    "LLEntry",
    "LogicLocationFile",
    "Microcontroller",
    "RetryPolicy",
    "TransportStats",
    "VerifiedTransport",
]
