"""The automated debug-campaign harness.

For every mutant in a seeded corpus the harness drives the full Zoomie
workflow end-to-end:

1. **Detect** — K-lane :class:`~repro.rtl.batch.BatchSimulator` golden
   diffing under seeded stimulus (:func:`~repro.rtl.mutate
   .differential_probe`), exact to the cycle.
2. **Classify** — undetected mutants get a longer, differently-seeded
   full-state probe; only mutants that survive *that* are called
   ``equivalent`` (no silent no-op mutants inflate detection rates).
3. **Localize** — detected mutants are instrumented, compiled, and
   debugged on the fabric: SVA breakpoints, snapshot bisection over
   cycles, and readback diffing against the golden simulator
   (:mod:`repro.campaign.localize`), with crash safety attached so a
   dead host resumes via :func:`repro.debug.recover_session`.
4. **Score** — localization accuracy as signal distance (dataflow BFS
   hops from the injected site) and cycle distance (bisected cycle vs.
   the detection divergence cycle), plus modeled debug seconds.

Reports are deliberately wall-clock-free and serialized with sorted
keys: the same config byte-reproduces the same JSON, which is what the
determinism gate (and the crash-resume bit-identity test) check.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..errors import CampaignError, SessionCrashedError
from ..obs import get_registry
from ..rtl.mutate import (
    OPERATORS,
    Divergence,
    Mutant,
    default_stimulus,
    differential_probe,
    generate_mutants,
)
from .designs import (
    campaign_design,
    compile_mutant,
    golden_netlist,
    launch_session,
)
from .localize import (
    GoldenReplay,
    localize_attempt,
    signal_distance,
    signal_graph,
)

#: Accuracy tolerance: a localization within this many dataflow hops
#: and cycles of the injected site counts as accurate (ISSUE 10).
TOLERANCE_SIGNALS = 2
TOLERANCE_CYCLES = 16


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one campaign; every field is part of the seeded identity
    except ``workdir`` and the test-only crash hook."""

    designs: tuple = ("cohort",)
    mutants: int = 25
    seed: int = 7
    operators: tuple = OPERATORS
    lanes: int = 8
    detect_cycles: int = 192
    probe_cycles: int = 512
    chunk: int = 16
    sva_budget: int = 96
    #: Retries after a mid-mutant host crash before giving up.
    max_recoveries: int = 3
    #: Test hook: ``(design, mutant_index) -> CrashPlan | None`` installs
    #: a modeled host-death on that mutant's first session. Excluded from
    #: the report.
    crash_plan: Optional[Callable] = None

    def as_dict(self) -> dict:
        return {
            "designs": list(self.designs),
            "mutants": self.mutants,
            "seed": self.seed,
            "operators": list(self.operators),
            "lanes": self.lanes,
            "detect_cycles": self.detect_cycles,
            "probe_cycles": self.probe_cycles,
            "chunk": self.chunk,
            "sva_budget": self.sva_budget,
        }


@dataclass
class MutantOutcome:
    """One mutant's run through the whole pipeline."""

    mutant_id: str
    design: str
    operator: str
    site: str
    seed: int
    anchor: str
    #: ``detected`` / ``equivalent`` / ``undetected``.
    status: str
    detect: Optional[dict] = None
    localize: Optional[dict] = None

    def as_dict(self) -> dict:
        return {
            "id": self.mutant_id,
            "design": self.design,
            "operator": self.operator,
            "site": self.site,
            "seed": self.seed,
            "anchor": self.anchor,
            "status": self.status,
            "detect": self.detect,
            "localize": self.localize,
        }


@dataclass
class CampaignReport:
    """Aggregate over every mutant of every design."""

    config: CampaignConfig
    outcomes: list = field(default_factory=list)

    def _counts(self) -> dict:
        counts = {"detected": 0, "equivalent": 0, "undetected": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def detection_rate(self) -> float:
        """Detected fraction of non-equivalent mutants."""
        counts = self._counts()
        fallible = counts["detected"] + counts["undetected"]
        return counts["detected"] / fallible if fallible else 1.0

    @property
    def localization_accuracy(self) -> float:
        """Fraction of detected mutants localized within tolerance."""
        localized = [o for o in self.outcomes if o.status == "detected"]
        if not localized:
            return 1.0
        good = sum(1 for o in localized
                   if o.localize and o.localize["within_tolerance"])
        return good / len(localized)

    @property
    def modeled_debug_seconds(self) -> list:
        return sorted(o.localize["modeled_seconds"] for o in self.outcomes
                      if o.localize)

    @property
    def median_modeled_debug_seconds(self) -> float:
        samples = self.modeled_debug_seconds
        if not samples:
            return 0.0
        mid = len(samples) // 2
        if len(samples) % 2:
            return samples[mid]
        return round((samples[mid - 1] + samples[mid]) / 2, 6)

    def as_dict(self) -> dict:
        counts = self._counts()
        return {
            "config": self.config.as_dict(),
            "mutants": [o.as_dict() for o in self.outcomes],
            "summary": {
                "total": len(self.outcomes),
                "detected": counts["detected"],
                "equivalent": counts["equivalent"],
                "undetected": counts["undetected"],
                "detection_rate": round(self.detection_rate, 4),
                "localization_accuracy": round(
                    self.localization_accuracy, 4),
                "median_modeled_debug_seconds":
                    self.median_modeled_debug_seconds,
                "tolerance": {"signals": TOLERANCE_SIGNALS,
                              "cycles": TOLERANCE_CYCLES},
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    def describe(self) -> str:
        counts = self._counts()
        lines = [
            f"debug campaign: {len(self.outcomes)} mutant(s) over "
            f"{', '.join(self.config.designs)} (seed {self.config.seed})",
            f"  detected {counts['detected']} / equivalent "
            f"{counts['equivalent']} / undetected {counts['undetected']} "
            f"-> detection rate {self.detection_rate:.0%} of "
            f"non-equivalent",
            f"  localization accuracy {self.localization_accuracy:.0%} "
            f"within {TOLERANCE_SIGNALS} signals / "
            f"{TOLERANCE_CYCLES} cycles",
        ]
        samples = self.modeled_debug_seconds
        if samples:
            lines.append(
                f"  modeled debug time per localization: median "
                f"{self.median_modeled_debug_seconds:.3f} s "
                f"(min {samples[0]:.3f} / max {samples[-1]:.3f})")
        for outcome in self.outcomes:
            if outcome.status != "detected" or not outcome.localize:
                continue
            loc = outcome.localize
            lines.append(
                f"    {outcome.mutant_id}: cycle {loc['cycle']} "
                f"{','.join(loc['signals'][:2])} "
                f"(d_sig={loc['signal_distance']}, "
                f"d_cyc={loc['cycle_distance']})")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# the harness
# --------------------------------------------------------------------------

def _poke_closure(golden, design, config):
    """A per-lane stimulus poker bound to the campaign seed."""
    widths = {name: golden.signals[name] for name in golden.inputs}

    def stimulus(lane: int, chunk_index: int) -> dict:
        return default_stimulus(widths, config.seed, lane, chunk_index,
                                design.bias)
    return stimulus


def _localize(design, config, mutant: Mutant, detect: Divergence,
              golden, workdir: Path) -> dict:
    """Compile, launch, and localize one detected mutant with crash
    safety attached; recovers and retries on modeled host death."""
    from ..debug import enable_crash_safety, recover_session

    registry = get_registry()
    stimulus = _poke_closure(golden, design, config)
    lane = detect.lane

    def poke(debugger, chunk_index: int) -> None:
        for name, value in stimulus(lane, chunk_index).items():
            debugger.record_input(name, value)

    def golden_stimulus(chunk_index: int) -> dict:
        return stimulus(lane, chunk_index)

    def arm(fabric) -> None:
        # The test hook is re-asked on every (re)launch: a one-shot
        # hook crashes once and recovers; a persistent one models a
        # host that dies every time, which must exhaust the budget.
        if config.crash_plan is not None:
            plan = config.crash_plan(design.name, mutant.mutant_id)
            if plan is not None:
                fabric.enable_crash_plan(plan)

    compiled = compile_mutant(design, mutant.netlist)
    session_dir = workdir / mutant.mutant_id.replace("/", "_")\
                                            .replace(":", "_")
    fabric, debugger = launch_session(compiled)
    enable_crash_safety(debugger, session_dir)
    arm(fabric)

    replay = GoldenReplay(golden, golden_stimulus, config.chunk)
    shared: dict = {}
    attempts = 0
    while True:
        try:
            result = localize_attempt(debugger, replay, detect,
                                      config.chunk, config.sva_budget,
                                      poke, shared)
            break
        except SessionCrashedError:
            attempts += 1
            registry.counter("campaign.recoveries").inc()
            if attempts > config.max_recoveries:
                raise CampaignError(
                    f"mutant {mutant.mutant_id} kept crashing past "
                    f"{config.max_recoveries} recoveries")
            # The dead session's fabric is gone; recover onto a fresh
            # one from the journal and redo the attempt from cycle 0.
            fabric, debugger = launch_session(compiled)
            recover_session(debugger, session_dir)
            arm(fabric)

    adjacency = signal_graph(golden)
    anchor = mutant.site.anchor
    distances = [signal_distance(adjacency, name, anchor)
                 for name in result["signals"]]
    result["signal_distance"] = min(distances) if distances else None
    result["cycle_distance"] = abs(result["cycle"] - detect.cycle)
    result["within_tolerance"] = bool(
        distances
        and result["signal_distance"] <= TOLERANCE_SIGNALS
        and result["cycle_distance"] <= TOLERANCE_CYCLES)

    registry.histogram("campaign.localize_probes").observe(
        result["probes"])
    registry.histogram("campaign.modeled_debug_seconds").observe(
        result["modeled_seconds"])
    registry.histogram("campaign.signal_distance").observe(
        result["signal_distance"])
    registry.histogram("campaign.cycle_distance").observe(
        result["cycle_distance"])
    if result["within_tolerance"]:
        registry.counter("campaign.localized_within_tolerance").inc()
    return result


def run_debug_campaign(config: CampaignConfig,
                       workdir=None) -> CampaignReport:
    """Run the full campaign described by ``config``.

    ``workdir`` roots the per-mutant crash-safety journals; omitted, a
    temporary directory is used and discarded.
    """
    if workdir is None:
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            return run_debug_campaign(config, tmp)

    registry = get_registry()
    report = CampaignReport(config=config)
    root = Path(workdir)
    for design_name in config.designs:
        design = campaign_design(design_name)
        golden = golden_netlist(design)
        mutants = generate_mutants(golden, design_name, config.mutants,
                                   config.seed, config.operators)
        for mutant in mutants:
            registry.counter("campaign.mutants").inc()
            detect = differential_probe(
                golden, mutant.netlist, seed=config.seed,
                cycles=config.detect_cycles, lanes=config.lanes,
                chunk=config.chunk, bias=design.bias, exact=True)
            outcome = MutantOutcome(
                mutant_id=mutant.mutant_id, design=design_name,
                operator=mutant.operator, site=mutant.site.key,
                seed=mutant.seed, anchor=mutant.site.anchor,
                status="detected")
            if detect is None:
                probe = differential_probe(
                    golden, mutant.netlist,
                    seed=f"equiv:{config.seed}",
                    cycles=config.probe_cycles, lanes=config.lanes,
                    chunk=config.chunk, bias=design.bias)
                outcome.status = "undetected" if probe else "equivalent"
                registry.counter(f"campaign.{outcome.status}").inc()
                report.outcomes.append(outcome)
                continue
            registry.counter("campaign.detected").inc()
            registry.histogram("campaign.detect_cycles").observe(
                detect.cycle)
            outcome.detect = {
                "cycle": detect.cycle,
                "lane": detect.lane,
                "signal": detect.signal,
            }
            outcome.localize = _localize(design, config, mutant, detect,
                                         golden, root)
            report.outcomes.append(outcome)
    return report


def verify_equivalents(config: CampaignConfig, report: CampaignReport,
                       factor: int = 4) -> list:
    """Cross-examine every ``equivalent`` verdict with a ``factor``-times
    longer, differently-seeded probe; returns misclassified mutant ids.

    CI gates on this returning an empty list — an equivalence verdict
    that a deeper probe can overturn means the corpus would silently
    under-count real bugs.
    """
    equivalents: dict = {}
    for outcome in report.outcomes:
        if outcome.status == "equivalent":
            equivalents.setdefault(outcome.design, set()).add(
                outcome.mutant_id)
    misclassified = []
    for design_name, wanted in sorted(equivalents.items()):
        design = campaign_design(design_name)
        golden = golden_netlist(design)
        mutants = generate_mutants(golden, design_name, config.mutants,
                                   config.seed, config.operators)
        for mutant in mutants:
            if mutant.mutant_id not in wanted:
                continue
            probe = differential_probe(
                golden, mutant.netlist,
                seed=f"verify:{config.seed}",
                cycles=config.probe_cycles * factor,
                lanes=config.lanes, chunk=config.chunk,
                bias=design.bias)
            if probe is not None:
                misclassified.append(mutant.mutant_id)
    return misclassified
