"""Automated debug campaigns over a seeded RTL mutation corpus.

A campaign takes a stock design, derives reproducible buggy variants
with :mod:`repro.rtl.mutate`, and drives the full Zoomie debugger over
each one — batched golden diffing to detect, SVA breakpoints plus
snapshot bisection plus readback diffing to localize — then scores how
accurately (and at what modeled debug-time cost) the tool pinned each
injected bug. Reports are deterministic: same seed, same bytes.

- :mod:`designs` — which designs campaigns run on and how they are
  built, instrumented, compiled, and launched.
- :mod:`localize` — one mutant's localization workflow and the
  signal-distance accuracy metric.
- :mod:`harness` — corpus generation, detection/equivalence triage,
  crash-safe orchestration, and the JSON report.

Run from the CLI (``zoomie campaign run --design cohort --mutants 25
--seed 7 --json``) or as a module (``python -m repro.campaign``).
"""

from .designs import (
    DESIGN_NAMES,
    CampaignDesign,
    campaign_design,
    compile_mutant,
    golden_netlist,
    launch_session,
)
from .harness import (
    TOLERANCE_CYCLES,
    TOLERANCE_SIGNALS,
    CampaignConfig,
    CampaignReport,
    MutantOutcome,
    run_debug_campaign,
    verify_equivalents,
)
from .localize import (
    GoldenReplay,
    localize_attempt,
    signal_distance,
    signal_graph,
    state_diff,
)

__all__ = [
    "CampaignConfig",
    "CampaignDesign",
    "CampaignReport",
    "DESIGN_NAMES",
    "GoldenReplay",
    "MutantOutcome",
    "TOLERANCE_CYCLES",
    "TOLERANCE_SIGNALS",
    "campaign_design",
    "compile_mutant",
    "golden_netlist",
    "launch_session",
    "localize_attempt",
    "run_debug_campaign",
    "signal_distance",
    "signal_graph",
    "state_diff",
    "verify_equivalents",
]
