"""Design registry for debug campaigns.

Each entry names a stock design, how to build it, which signals get
value-breakpoint watch slots when the mutant is instrumented, and any
placement constraints (the manycore entry pins ``core1`` to SLR 1 so
campaigns exercise cross-SLR readback paths too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import CampaignError

#: Campaign designs, in the order ``--design all`` runs them.
DESIGN_NAMES = ("counters", "cohort", "serv", "beehive", "manycore")


@dataclass(frozen=True)
class CampaignDesign:
    """One mutable-under-test design."""

    name: str
    build: Callable  # () -> Module
    watch: tuple
    #: device -> {instance: PBlock} placement constraints, or None.
    constraints: Optional[Callable] = None
    #: 1-bit input bias for seeded stimulus (progress vs. idle mix).
    bias: float = 0.75


def _registry() -> dict[str, CampaignDesign]:
    from ..designs import (
        make_beehive_stack,
        make_cluster,
        make_cohort_soc,
        make_counter,
        make_serv_core,
    )
    from ..vendor.place import whole_slr

    return {
        "counters": CampaignDesign(
            "counters", lambda: make_counter(width=8), ("out",)),
        "cohort": CampaignDesign(
            "cohort", lambda: make_cohort_soc(with_bug=False), ("issued",)),
        "serv": CampaignDesign("serv", make_serv_core, ("busy",)),
        "beehive": CampaignDesign(
            "beehive", make_beehive_stack, ("frames",)),
        "manycore": CampaignDesign(
            "manycore", lambda: make_cluster(cores=2, imem_depth=64),
            ("retired_count",),
            constraints=lambda device: {"core1": whole_slr(device, 1)}),
    }


def campaign_design(name: str) -> CampaignDesign:
    registry = _registry()
    try:
        return registry[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign design {name!r}; "
            f"choose from {', '.join(DESIGN_NAMES)}") from None


def golden_netlist(design: CampaignDesign):
    """A fresh, uninstrumented elaboration of the design."""
    from ..rtl import elaborate
    return elaborate(design.build())


def compile_mutant(design: CampaignDesign, netlist):
    """Instrument and compile one mutant netlist for the fabric.

    Returns ``(device, instrumented, compile_result)`` — the triple a
    debugger session launches from. The netlist is modified in place
    (it is already a mutant's private clone).
    """
    from ..debug import instrument_netlist
    from ..fpga import make_test_device
    from ..vendor import VivadoFlow

    device = make_test_device()
    instrumented = instrument_netlist(netlist, watch=list(design.watch))
    flow = VivadoFlow(device)
    clocks = {domain: 100.0 for domain in netlist.clock_domains()
              if not domain.startswith("zoomie")}
    constraints = design.constraints(device) if design.constraints else None
    result = flow.compile_netlist(netlist, clocks,
                                  gate_signals=instrumented.gate_signals,
                                  constraints=constraints)
    return device, instrumented, result


def launch_session(compiled):
    """Program a fresh fabric with a compiled mutant; returns
    ``(fabric, debugger)``."""
    from ..config import FabricDevice
    from ..debug import ZoomieDebugger

    device, instrumented, result = compiled
    fabric = FabricDevice(device)
    fabric.expect(result.database)
    fabric.jtag.run(result.bitstream)
    return fabric, ZoomieDebugger(fabric, instrumented)
