"""``python -m repro.campaign`` — run a debug campaign from the shell.

Mirrors the ``zoomie campaign run`` CLI verb for scripted use (CI, the
benchmark harness) where the JSON report is the product.
"""

from __future__ import annotations

import argparse
import sys

from .designs import DESIGN_NAMES
from .harness import CampaignConfig, run_debug_campaign


def _parse_designs(value: str) -> tuple:
    if value == "all":
        return DESIGN_NAMES
    return tuple(part.strip() for part in value.split(",") if part.strip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a seeded mutation debug campaign.")
    sub = parser.add_subparsers(dest="verb", required=True)
    run = sub.add_parser("run", help="run a campaign")
    run.add_argument("--design", default="cohort",
                     help="design name, comma list, or 'all' "
                          f"({', '.join(DESIGN_NAMES)})")
    run.add_argument("--mutants", type=int, default=25,
                     help="mutants per design")
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--json", action="store_true",
                     help="print the full JSON report instead of a summary")
    run.add_argument("--out", default=None,
                     help="also write the JSON report to this file")
    args = parser.parse_args(argv)

    config = CampaignConfig(designs=_parse_designs(args.design),
                            mutants=args.mutants, seed=args.seed)
    report = run_debug_campaign(config)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        print(report.describe())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
