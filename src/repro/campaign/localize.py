"""Bug localization: snapshot bisection + readback diffing + SVA.

Given a mutant session (the instrumented buggy design on the fabric)
and the *golden* netlist simulated host-side, localization answers
"which state element went wrong first, and when" using only the
debugger's own verbs — the workflow a human would run by hand:

1. **Sweep**: pause at cycle 0, snapshot, then step in ``chunk``-cycle
   strides, diffing full readback against the golden simulator at every
   boundary and snapshotting the last-known-good state.
2. **Bisect**: binary-search the diverging chunk by restoring the
   last-good snapshot and stepping partway — O(log chunk) probes pin
   the exact first diverging cycle and the state elements involved.
3. **SVA evidence**: re-arm from cycle 0 with assertion breakpoints
   enabled and free-run; a monitor pause corroborates the bisection.

Purely combinational bugs (a corrupted output expression) never touch
architectural state; when the sweep sees no readback difference the
result falls back to the batch-detection signal/cycle (``output-diff``).

Every fabric operation is a journaled debugger verb, so a campaign can
crash anywhere in here and :func:`repro.debug.recover_session` replays
the session back; the attempt is deterministic, so a retried mutant
reports bit-identically to an uninterrupted run. Modeled debug seconds
are measured from after the cycle-0 restore, which makes the figure a
property of the bug, not of how many times the host died.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..rtl.netlist import Netlist

#: Reported signal lists are capped (a badly corrupted core can diverge
#: in dozens of registers at once; the first few carry the signal).
MAX_REPORT_SIGNALS = 8

#: BFS radius for the localization-accuracy metric; anything further
#: (or disconnected) reports this distance.
MAX_SIGNAL_DISTANCE = 9


# --------------------------------------------------------------------------
# golden-side replay
# --------------------------------------------------------------------------

class GoldenReplay:
    """Deterministic host-side golden states at arbitrary cycles.

    Replays the golden netlist under the campaign's seeded stimulus;
    rewinding rebuilds from cycle 0 (designs are small and bounds are a
    few hundred cycles, so replay is cheaper than bookkeeping).
    """

    def __init__(self, netlist: Netlist, stimulus: Callable, chunk: int):
        self._netlist = netlist
        self._stimulus = stimulus  # (chunk_index) -> {input: value}
        self._chunk = chunk
        self._names = sorted(set(netlist.registers)
                             | set(netlist.sync_read_outputs()))
        self._sim = None
        self._cycle = 0

    def _reset(self) -> None:
        from ..rtl import Simulator
        self._sim = Simulator(self._netlist)
        self._cycle = 0

    def state_at(self, cycle: int):
        """(register values, memory words) after ``cycle`` cycles."""
        if self._sim is None or cycle < self._cycle:
            self._reset()
        while self._cycle < cycle:
            if self._cycle % self._chunk == 0:
                for name, value in self._stimulus(
                        self._cycle // self._chunk).items():
                    self._sim.poke(name, value)
            span = min(self._chunk - self._cycle % self._chunk,
                       cycle - self._cycle)
            self._sim.step(span)
            self._cycle += span
        values = {name: self._sim.peek(name) for name in self._names}
        memories = {name: list(self._sim.memories[name])
                    for name in self._netlist.memories}
        return values, memories


def state_diff(golden_values: dict, golden_memories: dict,
               snapshot) -> dict:
    """Mismatches between golden state and a fabric readback snapshot.

    Returns ``{name: (golden, fabric)}``; memory mismatches appear
    under the memory's name with the first differing word. Zoomie's own
    instrumentation registers are never part of the golden state dict,
    so they cannot produce false diffs.
    """
    out: dict = {}
    for name, golden in golden_values.items():
        fabric = snapshot.values.get(name)
        if fabric is not None and fabric != golden:
            out[name] = (golden, fabric)
    for name, golden_words in golden_memories.items():
        fabric_words = snapshot.memories.get(name)
        if fabric_words is None:
            continue
        for addr, (gw, fw) in enumerate(zip(golden_words, fabric_words)):
            if gw != fw:
                out[name] = (gw, fw)
                break
    return out


# --------------------------------------------------------------------------
# localization accuracy metric
# --------------------------------------------------------------------------

def signal_graph(netlist: Netlist) -> dict:
    """Undirected signal adjacency: assign/register/port dataflow edges."""
    adj: dict = {}

    def link(a: str, b: str) -> None:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)

    for target, expr in netlist.assigns.items():
        for source in expr.signals():
            link(target, source)
    for name, reg in netlist.registers.items():
        for expr in (reg.next, reg.enable, reg.reset):
            if expr is not None:
                for source in expr.signals():
                    link(name, source)
    for name, mem in netlist.memories.items():
        for port in mem.write_ports:
            for expr in (port.addr, port.data, port.enable):
                for source in expr.signals():
                    link(name, source)
        for port in mem.read_ports:
            link(port.name, name)
            for expr in (port.addr, port.enable):
                if expr is not None:
                    for source in expr.signals():
                        link(port.name, source)
    return adj


def signal_distance(adj: dict, start: str, goal: str,
                    limit: int = MAX_SIGNAL_DISTANCE) -> int:
    """BFS hop count between two signals, clamped to ``limit``."""
    if start == goal:
        return 0
    seen = {start}
    frontier = deque([(start, 0)])
    while frontier:
        node, dist = frontier.popleft()
        if dist >= limit:
            continue
        for neighbour in adj.get(node, ()):
            if neighbour in seen:
                continue
            if neighbour == goal:
                return dist + 1
            seen.add(neighbour)
            frontier.append((neighbour, dist + 1))
    return limit


# --------------------------------------------------------------------------
# the localization workflow itself
# --------------------------------------------------------------------------

def _event_ratio(debugger) -> int:
    """Fabric events per MUT cycle (the free debug clock runs faster)."""
    periods = {name: domain.period_ps
               for name, domain in debugger.fabric.sim.domains.items()}
    mut = periods.get(debugger.inst.mut_domains[0], 1)
    return max(1, -(-mut // max(1, min(periods.values()))))


def localize_attempt(debugger, golden: GoldenReplay, detect,
                     chunk: int, sva_budget: int,
                     poke: Callable, shared: dict) -> dict:
    """One full localization pass over a mutant session.

    ``poke(debugger, chunk_index)`` records the campaign stimulus for
    one chunk; ``shared`` carries the cycle-0 snapshot across crash
    retries so a recovered session restarts from the identical state.
    Raises ``SessionCrashedError`` through to the caller — the caller
    recovers and simply calls again.
    """
    if not debugger.is_paused():
        debugger.pause()
    if shared.get("c0") is None:
        shared["c0"] = debugger.snapshot("campaign-c0")
    cycle0 = shared["c0"]
    debugger.restore(cycle0)
    modeled_from = debugger.session_seconds
    probes = 0

    bound = (detect.cycle // chunk + 1) * chunk
    elapsed, low, low_snapshot = 0, 0, cycle0
    high: Optional[int] = None
    diff: dict = {}
    while elapsed < bound:
        poke(debugger, elapsed // chunk)
        debugger.step(chunk)
        elapsed += chunk
        golden_values, golden_memories = golden.state_at(elapsed)
        readback = debugger.read_state()
        probes += 1
        found = state_diff(golden_values, golden_memories, readback)
        if found:
            high, diff = elapsed, found
            break
        low, low_snapshot = elapsed, debugger.snapshot("campaign-sweep")

    if high is None:
        # Combinational-only bug: state never left the golden trajectory,
        # so the batched output diff is the localization.
        result = {
            "cycle": detect.cycle,
            "signals": [detect.signal.partition("[")[0]],
            "method": "output-diff",
        }
    else:
        while high - low > 1:
            mid = (low + high) // 2
            debugger.restore(low_snapshot)
            debugger.step(mid - low)
            golden_values, golden_memories = golden.state_at(mid)
            readback = debugger.read_state()
            probes += 1
            found = state_diff(golden_values, golden_memories, readback)
            if found:
                high, diff = mid, found
            else:
                low = mid
                low_snapshot = debugger.snapshot("campaign-bisect")
        result = {
            "cycle": high,
            "signals": sorted(diff)[:MAX_REPORT_SIGNALS],
            "method": "bisect",
        }

    # -- SVA corroboration: free-run from cycle 0 with assertion breaks.
    sva_break = None
    if sva_budget > 0 and debugger.inst.monitors:
        if not debugger.is_paused():
            debugger.pause()
        debugger.restore(cycle0)
        debugger.break_on_assertions(True)
        ratio = _event_ratio(debugger)
        elapsed = 0
        sva_bound = min(bound, (sva_budget // chunk + 1) * chunk)
        debugger.resume(clear_triggers=False)
        while elapsed < sva_bound:
            poke(debugger, elapsed // chunk)
            before = debugger.cycles()
            debugger.run(max_cycles=chunk * ratio)
            elapsed += debugger.cycles() - before
            if debugger.is_paused():
                sva_break = elapsed
                break
            if debugger.cycles() == before:
                break  # nothing advances; don't spin
        if not debugger.is_paused():
            debugger.pause()
        debugger.break_on_assertions(False)

    result.update({
        "probes": probes,
        "sva_break_cycle": sva_break,
        "modeled_seconds": round(
            debugger.session_seconds - modeled_from, 6),
    })
    return result
