"""Compile expression trees to Python closures for fast simulation.

Recursive ``Expr.eval`` dominates simulation time for non-trivial designs.
This module translates each expression into a single Python expression
string over an environment dict ``e`` and compiles it once; the simulator
then evaluates closures instead of walking ASTs. Semantics are identical to
``Expr.eval`` (the test suite cross-checks them).
"""

from __future__ import annotations

from typing import Callable

from .._bits import mask
from .expr import BinaryOp, Concat, Const, Expr, Mux, Ref, Repl, Slice, UnaryOp

_SIGNED_CMP = {"<s": "<", ">s": ">", "<=s": "<=", ">=s": ">="}


def _sig(name: str) -> str:
    return f"e[{name!r}]"


def _to_py(expr: Expr) -> str:
    """Translate ``expr`` to a Python expression string over dict ``e``."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Ref):
        return _sig(expr.name)
    if isinstance(expr, UnaryOp):
        a = _to_py(expr.a)
        width = expr.a.width
        if expr.op == "~":
            return f"(({a}) ^ {mask(width)})"
        if expr.op == "!":
            return f"(0 if ({a}) else 1)"
        if expr.op == "-":
            return f"((-({a})) & {mask(width)})"
        if expr.op == "r&":
            return f"(1 if ({a}) == {mask(width)} else 0)"
        if expr.op == "r|":
            return f"(1 if ({a}) else 0)"
        # r^
        return f"(({a}).bit_count() & 1)"
    if isinstance(expr, BinaryOp):
        a = _to_py(expr.a)
        b = _to_py(expr.b)
        op = expr.op
        width = expr.width
        if op in ("+", "-", "*"):
            return f"((({a}) {op} ({b})) & {mask(width)})"
        if op in ("&", "|", "^"):
            return f"(({a}) {op} ({b}))"
        if op == "<<":
            return (f"(((({a}) << ({b})) & {mask(width)}) "
                    f"if ({b}) < {width} else 0)")
        if op == ">>":
            return f"((({a}) >> ({b})) if ({b}) < {width} else 0)"
        if op == ">>>":
            in_width = expr.a.width
            sign = 1 << (in_width - 1)
            return (f"((((({a}) - {1 << in_width}) if (({a}) & {sign}) "
                    f"else ({a})) >> min(({b}), {in_width})) "
                    f"& {mask(width)})")
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return f"(1 if ({a}) {op} ({b}) else 0)"
        if op == "&&":
            return f"(1 if (({a}) and ({b})) else 0)"
        if op == "||":
            return f"(1 if (({a}) or ({b})) else 0)"
        if op in _SIGNED_CMP:
            in_width = expr.a.width
            sign = 1 << (in_width - 1)
            full = 1 << in_width
            signed_a = f"((({a}) - {full}) if (({a}) & {sign}) else ({a}))"
            signed_b = f"((({b}) - {full}) if (({b}) & {sign}) else ({b}))"
            return f"(1 if {signed_a} {_SIGNED_CMP[op]} {signed_b} else 0)"
        raise AssertionError(f"unhandled binary op {op!r}")
    if isinstance(expr, Mux):
        sel = _to_py(expr.sel)
        t = _to_py(expr.if_true)
        f = _to_py(expr.if_false)
        return f"(({t}) if ({sel}) else ({f}))"
    if isinstance(expr, Slice):
        a = _to_py(expr.a)
        if expr.low == 0:
            return f"(({a}) & {mask(expr.width)})"
        return f"((({a}) >> {expr.low}) & {mask(expr.width)})"
    if isinstance(expr, Concat):
        out = None
        for part in expr.parts:
            piece = f"(({_to_py(part)}) & {mask(part.width)})"
            if out is None:
                out = piece
            else:
                out = f"(({out}) << {part.width} | {piece})"
        return out or "0"
    if isinstance(expr, Repl):
        a = _to_py(expr.a)
        width = expr.a.width
        out = None
        for _ in range(expr.times):
            piece = f"({a})"
            if out is None:
                out = piece
            else:
                out = f"(({out}) << {width} | {piece})"
        return out or "0"
    raise AssertionError(f"unhandled expression node {type(expr).__name__}")


def compile_expr(expr: Expr) -> Callable[[dict[str, int]], int]:
    """Compile one expression into ``fn(env) -> int``."""
    code = compile(_to_py(expr), "<rtl-expr>", "eval")
    return lambda e: eval(code, {"min": min}, {"e": e})  # noqa: S307


def compile_assign_block(assigns: list[tuple[str, Expr]]) -> Callable[[dict[str, int]], None]:
    """Compile an ordered assign list into one settle function.

    Generating a single function body avoids per-assign call overhead; the
    block executes assignments in the provided (topological) order.
    """
    lines = ["def _settle(e):"]
    if not assigns:
        lines.append("    pass")
    for name, expr in assigns:
        lines.append(f"    e[{name!r}] = {_to_py(expr)}")
    source = "\n".join(lines)
    namespace: dict = {"min": min}
    exec(compile(source, "<rtl-settle>", "exec"), namespace)  # noqa: S102
    return namespace["_settle"]
