"""Compile netlists to Python code for fast simulation.

Three evaluation tiers share this module (slowest to fastest):

1. **interpreted** — recursive ``Expr.eval`` AST walking (no codegen);
2. **compiled closures** — each expression becomes one compiled Python
   expression over the environment dict (:func:`compile_expr`,
   :func:`compile_assign_block`), the historical "compiled" mode;
3. **fused kernels** — one generated function per *tick* of an active
   clock-domain set, performing settle → register/memory-port sampling →
   commit in a single pass over local variables, plus a ``run(n)``
   variant that keeps the whole hot loop inside compiled code (signals
   are loaded from the environment dict once before the loop and stored
   back once after it).

Semantics of every tier are identical to ``Expr.eval`` and to the
simulator's interpreted tick (the differential test suite cross-checks
them register-for-register).

Compiled plans are cached in a small module-level registry keyed by a
structural :meth:`~repro.rtl.netlist.Netlist.fingerprint`, so rebuilding
a :class:`~repro.rtl.simulator.Simulator` over the same design (the ILA
flow, VTI incremental runs, the benchmark suite) reuses codegen instead
of recompiling. Plans snapshot the expressions they were built from, so
in-place netlist mutation after a simulator was constructed (the
instrumentation pass does this) cannot corrupt an already-cached plan.

The cache has two tiers. The in-memory tier above lives for one process;
beneath it, kernel *sources* persist on disk keyed by the same
fingerprint (:mod:`repro.rtl.plan_store`), so a fresh process skips the
expression-tree walks entirely and goes straight to ``compile()`` of the
stored text. Sources — not code objects — are stored because generated
text is stable across CPython versions and trivially verifiable, and any
load defect degrades to a counted miss.

A fourth tier rides on the same plans: bit-parallel *batched* kernels
(:mod:`repro.rtl.batch`) that advance K independent runs per tick by
packing one lane per run into each Python integer. Batch plans are
reached through :meth:`CompiledPlan.batch_plan` so they share both cache
tiers.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

from .._bits import mask
from .expr import BinaryOp, Concat, Const, Expr, Mux, Ref, Repl, Slice, UnaryOp
from .plan_store import get_plan_store

_SIGNED_CMP = {"<s": "<", ">s": ">", "<=s": "<=", ">=s": ">="}


def _sig(name: str) -> str:
    return f"e[{name!r}]"


def _to_py(expr: Expr, sym: Callable[[str], str] = _sig) -> str:
    """Translate ``expr`` to a Python expression string.

    ``sym`` maps a signal name to the Python expression that reads it —
    an environment-dict subscript for the closure tier, a local variable
    for fused kernels.
    """
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Ref):
        return sym(expr.name)
    if isinstance(expr, UnaryOp):
        a = _to_py(expr.a, sym)
        width = expr.a.width
        if expr.op == "~":
            return f"(({a}) ^ {mask(width)})"
        if expr.op == "!":
            return f"(0 if ({a}) else 1)"
        if expr.op == "-":
            return f"((-({a})) & {mask(width)})"
        if expr.op == "r&":
            return f"(1 if ({a}) == {mask(width)} else 0)"
        if expr.op == "r|":
            return f"(1 if ({a}) else 0)"
        # r^
        return f"(({a}).bit_count() & 1)"
    if isinstance(expr, BinaryOp):
        a = _to_py(expr.a, sym)
        b = _to_py(expr.b, sym)
        op = expr.op
        width = expr.width
        if op in ("+", "-", "*"):
            return f"((({a}) {op} ({b})) & {mask(width)})"
        if op in ("&", "|", "^"):
            return f"(({a}) {op} ({b}))"
        if op == "<<":
            return (f"(((({a}) << ({b})) & {mask(width)}) "
                    f"if ({b}) < {width} else 0)")
        if op == ">>":
            return f"((({a}) >> ({b})) if ({b}) < {width} else 0)"
        if op == ">>>":
            in_width = expr.a.width
            sign = 1 << (in_width - 1)
            return (f"((((({a}) - {1 << in_width}) if (({a}) & {sign}) "
                    f"else ({a})) >> min(({b}), {in_width})) "
                    f"& {mask(width)})")
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return f"(1 if ({a}) {op} ({b}) else 0)"
        if op == "&&":
            return f"(1 if (({a}) and ({b})) else 0)"
        if op == "||":
            return f"(1 if (({a}) or ({b})) else 0)"
        if op in _SIGNED_CMP:
            in_width = expr.a.width
            sign = 1 << (in_width - 1)
            full = 1 << in_width
            signed_a = f"((({a}) - {full}) if (({a}) & {sign}) else ({a}))"
            signed_b = f"((({b}) - {full}) if (({b}) & {sign}) else ({b}))"
            return f"(1 if {signed_a} {_SIGNED_CMP[op]} {signed_b} else 0)"
        raise AssertionError(f"unhandled binary op {op!r}")
    if isinstance(expr, Mux):
        sel = _to_py(expr.sel, sym)
        t = _to_py(expr.if_true, sym)
        f = _to_py(expr.if_false, sym)
        return f"(({t}) if ({sel}) else ({f}))"
    if isinstance(expr, Slice):
        a = _to_py(expr.a, sym)
        if expr.low == 0:
            return f"(({a}) & {mask(expr.width)})"
        return f"((({a}) >> {expr.low}) & {mask(expr.width)})"
    if isinstance(expr, Concat):
        out = None
        for part in expr.parts:
            piece = f"(({_to_py(part, sym)}) & {mask(part.width)})"
            if out is None:
                out = piece
            else:
                out = f"(({out}) << {part.width} | {piece})"
        return out or "0"
    if isinstance(expr, Repl):
        a = _to_py(expr.a, sym)
        width = expr.a.width
        out = None
        for _ in range(expr.times):
            piece = f"({a})"
            if out is None:
                out = piece
            else:
                out = f"(({out}) << {width} | {piece})"
        return out or "0"
    raise AssertionError(f"unhandled expression node {type(expr).__name__}")


def compile_expr(expr: Expr) -> Callable[[dict[str, int]], int]:
    """Compile one expression into ``fn(env) -> int``."""
    code = compile(_to_py(expr), "<rtl-expr>", "eval")
    return lambda e: eval(code, {"min": min}, {"e": e})  # noqa: S307


def compile_assign_block(assigns: list[tuple[str, Expr]]) -> Callable[[dict[str, int]], None]:
    """Compile an ordered assign list into one settle function.

    Generating a single function body avoids per-assign call overhead; the
    block executes assignments in the provided (topological) order.
    """
    lines = ["def _settle(e):"]
    if not assigns:
        lines.append("    pass")
    for name, expr in assigns:
        lines.append(f"    e[{name!r}] = {_to_py(expr)}")
    source = "\n".join(lines)
    namespace: dict = {"min": min}
    exec(compile(source, "<rtl-settle>", "exec"), namespace)  # noqa: S102
    return namespace["_settle"]


# ---------------------------------------------------------------------------
# plan snapshots
# ---------------------------------------------------------------------------
#
# A plan must not read the live netlist after construction: instrumentation
# and pause-buffer insertion mutate Register/port objects in place, and a
# cached plan may outlive the netlist state it was compiled from.

@dataclass(frozen=True)
class _RegSnap:
    name: str
    width: int
    clock: str
    next: Optional[Expr]
    enable: Optional[Expr]
    reset: Optional[Expr]
    reset_value: int


@dataclass(frozen=True)
class _ReadPortSnap:
    name: str
    addr: Expr
    sync: bool
    enable: Optional[Expr]
    clock: str


@dataclass(frozen=True)
class _WritePortSnap:
    addr: Expr
    data: Expr
    enable: Expr
    clock: str


@dataclass(frozen=True)
class _MemSnap:
    name: str
    width: int
    depth: int
    read_ports: tuple[_ReadPortSnap, ...]
    write_ports: tuple[_WritePortSnap, ...]


# ---------------------------------------------------------------------------
# kernel code generation
# ---------------------------------------------------------------------------

class _KernelBuilder:
    """Shared state while emitting one kernel: the signal-to-local map,
    the memory-to-local map, and the set of locals stored back to the
    environment when the kernel exits."""

    def __init__(self, plan: "CompiledPlan"):
        self.plan = plan
        self.locals_of: dict[str, str] = {}
        self.mem_of: dict[str, str] = {}
        self.stores: dict[str, None] = {}
        self._tmp = 0

    def sym(self, name: str) -> str:
        local = self.locals_of.get(name)
        if local is None:
            local = self.locals_of[name] = f"v{len(self.locals_of)}"
        return local

    def mem(self, name: str) -> str:
        local = self.mem_of.get(name)
        if local is None:
            local = self.mem_of[name] = f"m{len(self.mem_of)}"
        return local

    def temp(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def store(self, name: str) -> str:
        self.stores[name] = None
        return self.sym(name)

    # -- body fragments ----------------------------------------------------

    def emit_async_reads(self, lines: list[str], ind: str) -> None:
        """Combinational memory read ports, applied in memory/port order
        (matches ``Simulator._apply_async_reads``: each port's result is
        visible to later ports and to the settle pass)."""
        for memory in self.plan.memories:
            for port in memory.read_ports:
                if port.sync:
                    continue
                addr = self.temp()
                out = self.store(port.name)
                lines.append(f"{ind}{addr} = {_to_py(port.addr, self.sym)}")
                lines.append(
                    f"{ind}{out} = {self.mem(memory.name)}[{addr}] "
                    f"if {addr} < {memory.depth} else 0")

    def emit_settle(self, lines: list[str], ind: str) -> None:
        """Async read pre-pass, topologically ordered assigns, async read
        post-pass — the full combinational settle."""
        self.emit_async_reads(lines, ind)
        for name, expr in self.plan.assigns:
            lines.append(f"{ind}{self.store(name)} = {_to_py(expr, self.sym)}")
        self.emit_async_reads(lines, ind)

    def emit_edge(self, lines: list[str], ind: str,
                  active: tuple[str, ...]) -> None:
        """Sample-and-commit for one edge of the ``active`` domains.

        Ordering is identical to the interpreted tick: all register
        next-values are sampled, then all memory write ports, then all
        synchronous read ports (read-before-write); commits happen in
        the same three groups afterwards.
        """
        reg_commits: list[tuple[str, str]] = []
        for domain in active:
            for reg_name in self.plan.regs_by_domain.get(domain, ()):
                reg = self.plan.regs[reg_name]
                if reg.next is None and reg.reset is None:
                    continue
                value = self.sym(reg_name)
                sample = self.temp()
                nxt = (f"({_to_py(reg.next, self.sym)}) & {mask(reg.width)}"
                       if reg.next is not None else value)
                if reg.reset is not None:
                    body = (f"{sample} = {reg.reset_value} "
                            f"if ({_to_py(reg.reset, self.sym)}) else {nxt}")
                else:
                    body = f"{sample} = {nxt}"
                if reg.enable is not None:
                    lines.append(f"{ind}{sample} = {value}")
                    lines.append(
                        f"{ind}if {_to_py(reg.enable, self.sym)}:")
                    lines.append(f"{ind}    {body}")
                else:
                    lines.append(f"{ind}{body}")
                self.stores[reg_name] = None
                reg_commits.append((value, sample))

        write_commits: list[tuple[str, str, str]] = []
        read_commits: list[tuple[str, str]] = []
        for domain in active:
            for kind, memory, port in self.plan.port_plans.get(domain, ()):
                if kind == "w":
                    addr = self.temp()
                    data = self.temp()
                    lines.append(f"{ind}{addr} = -1")
                    lines.append(
                        f"{ind}if {_to_py(port.enable, self.sym)}:")
                    lines.append(
                        f"{ind}    {addr} = {_to_py(port.addr, self.sym)}")
                    lines.append(f"{ind}    if {addr} < {memory.depth}:")
                    lines.append(
                        f"{ind}        {data} = "
                        f"({_to_py(port.data, self.sym)}) "
                        f"& {mask(memory.width)}")
                    lines.append(f"{ind}    else:")
                    lines.append(f"{ind}        {addr} = -1")
                    write_commits.append((self.mem(memory.name), addr, data))
                else:
                    out = self.store(port.name)
                    sample = self.temp()
                    addr = self.temp()
                    lines.append(f"{ind}{sample} = {out}")
                    inner = ind
                    if port.enable is not None:
                        lines.append(
                            f"{ind}if {_to_py(port.enable, self.sym)}:")
                        inner = ind + "    "
                    lines.append(
                        f"{inner}{addr} = {_to_py(port.addr, self.sym)}")
                    lines.append(
                        f"{inner}{sample} = "
                        f"{self.mem(memory.name)}[{addr}] "
                        f"if {addr} < {memory.depth} else 0")
                    read_commits.append((out, sample))

        for value, sample in reg_commits:
            lines.append(f"{ind}{value} = {sample}")
        for mem_local, addr, data in write_commits:
            lines.append(f"{ind}if {addr} >= 0: {mem_local}[{addr}] = {data}")
        for out, sample in read_commits:
            lines.append(f"{ind}{out} = {sample}")


def _kernel_source(name: str, kb: _KernelBuilder, params: str,
                   body: list[str], loop: bool,
                   prologue: tuple[str, ...] = (),
                   epilogue: tuple[str, ...] = ()) -> str:
    """Wrap a generated body in loads/stores; returns the full source.

    The source is self-contained (it only needs ``min`` in its globals),
    deterministic for a given plan structure, and therefore safe to
    persist on disk keyed by the netlist fingerprint. ``prologue`` lines
    run before the loads, ``epilogue`` lines after the stores (capture
    kernels use them for ring setup and state return).
    """
    lines = [f"def {name}({params}):"]
    lines.extend(prologue)
    for mem_name, local in kb.mem_of.items():
        lines.append(f"    {local} = mems[{mem_name!r}]")
    for sig_name, local in kb.locals_of.items():
        lines.append(f"    {local} = e[{sig_name!r}]")
    if loop:
        lines.append("    for _ in range(n):")
        lines.extend(body if body else ["        pass"])
    else:
        lines.extend(body if body else ["    pass"])
    for sig_name in kb.stores:
        lines.append(f"    e[{sig_name!r}] = {kb.locals_of[sig_name]}")
    lines.extend(epilogue)
    return "\n".join(lines)


def _capture_body_lines(sym: Callable[[str], str], signals: tuple[str, ...],
                        bounded: bool, ind: str) -> list[str]:
    """The in-loop sampling fragment shared by scalar and batched
    capture kernels: every ``stride``-th iteration appends one
    ``(cycle, sig0, sig1, ...)`` row into the ring.

    Sampling happens between settle and edge, so a row holds the
    settled state *after* ``cyc`` committed edges — exactly what an
    edge-hook observer reading back after commit ``cyc`` sees.
    """
    atoms = ", ".join(sym(name) for name in signals)
    lines = [f"{ind}if k == 0:"]
    if bounded:
        lines += [
            f"{ind}    ring[head] = (cyc, {atoms})",
            f"{ind}    head += 1",
            f"{ind}    if head == _rl:",
            f"{ind}        head = 0",
        ]
    else:
        lines.append(f"{ind}    ring.append((cyc, {atoms}))")
    lines += [
        f"{ind}    total += 1",
        f"{ind}k += 1",
        f"{ind}if k == stride:",
        f"{ind}    k = 0",
    ]
    return lines


#: Parameter list of every capture kernel (scalar and batched): the
#: ring list plus the four cursors the kernel threads through and
#: returns — write head, lifetime sample count, stride phase, cycle.
CAPTURE_PARAMS = "e, mems, n, ring, head, total, stride, k, cyc"
CAPTURE_EPILOGUE = ("    return head, total, k, cyc",)


def _materialize(source: str, name: str) -> Callable:
    """Compile a kernel (or kernel module) source and pull out ``name``."""
    namespace: dict = {"min": min}
    exec(compile(source, f"<rtl-{name}>", "exec"), namespace)  # noqa: S102
    return namespace[name]


# ---------------------------------------------------------------------------
# compiled plans
# ---------------------------------------------------------------------------

class CompiledPlan:
    """Everything compiled once per netlist structure and shared by all
    simulators of that structure.

    Eagerly built: the fused settle kernel (used by every ``peek``).
    Lazily built: the closure tier (needed only when hooks force the
    general tick path, or when a simulator explicitly runs the
    ``closures`` engine), the per-domain-set tick/run kernels, and the
    per-lane-count batch plans.

    ``sources`` seeds the kernel-source table from the disk tier: a
    kernel whose key is present is materialized by compiling the stored
    text instead of walking the expression trees. Freshly generated
    sources are merged back to disk as lazy kernels come into existence.
    """

    def __init__(self, netlist, fingerprint: Optional[str] = None,
                 sources: Optional[dict[str, str]] = None):
        self.fingerprint: str = fingerprint or netlist.fingerprint()
        self._sources: dict[str, str] = dict(sources or {})
        #: name -> width of every flat signal; batch codegen sizes its
        #: lane stride from these (plans must not re-read the netlist).
        self.signal_widths: dict[str, int] = dict(netlist.signals)
        order = netlist.comb_order()
        self.assigns: list[tuple[str, Expr]] = [
            (name, netlist.assigns[name]) for name in order
            if name in netlist.assigns]
        self.regs: dict[str, _RegSnap] = {
            name: _RegSnap(
                name=name, width=reg.width, clock=reg.clock, next=reg.next,
                enable=reg.enable, reset=reg.reset,
                reset_value=reg.reset_value)
            for name, reg in netlist.registers.items()}
        self.memories: list[_MemSnap] = [
            _MemSnap(
                name=name, width=memory.width, depth=memory.depth,
                read_ports=tuple(
                    _ReadPortSnap(name=p.name, addr=p.addr, sync=p.sync,
                                  enable=p.enable, clock=p.clock)
                    for p in memory.read_ports),
                write_ports=tuple(
                    _WritePortSnap(addr=p.addr, data=p.data,
                                   enable=p.enable, clock=p.clock)
                    for p in memory.write_ports))
            for name, memory in netlist.memories.items()]

        self.regs_by_domain: dict[str, list[str]] = {}
        for name, reg in self.regs.items():
            self.regs_by_domain.setdefault(reg.clock, []).append(name)
        #: domain -> ordered ("w"/"r", _MemSnap, port snapshot) tuples;
        #: the order matches the closure tier's plans exactly, so commit
        #: ordering is identical across evaluation tiers.
        self.port_plans: dict[str, list] = {}
        for memory in self.memories:
            for wport in memory.write_ports:
                self.port_plans.setdefault(wport.clock, []).append(
                    ("w", memory, wport))
            for rport in memory.read_ports:
                if rport.sync:
                    self.port_plans.setdefault(rport.clock, []).append(
                        ("r", memory, rport))
        self.reg_meta: dict[str, tuple[int, int]] = {
            name: (reg.width, reg.reset_value)
            for name, reg in self.regs.items()}

        #: Fused settle kernel ``settle(env, mems)`` with async memory
        #: read ports compiled in (the interpreted/closure tiers walk
        #: them with ``Expr.eval`` instead).
        self.settle: Callable = self.kernel_from_source(
            "settle", "_settle", self._settle_source)

        self._settle_block: Optional[Callable] = None
        self._closures = None
        self._tick_kernels: dict[tuple[str, ...], Callable] = {}
        self._run_kernels: dict[tuple[str, ...], Callable] = {}
        self._capture_kernels: dict[str, Callable] = {}
        self._batch_plans: dict[int, object] = {}

    # -- kernel source management ------------------------------------------

    def kernel_from_source(self, key: str, name: str,
                           build: Callable[[], str]) -> Callable:
        """Materialize the kernel ``key``, generating its source only if
        neither this plan nor the disk tier already holds it.

        A stored source that fails to compile (a CRC-valid file whose
        body was damaged) is discarded as a counted defect and the
        kernel is regenerated — never an error for the caller.
        """
        source = self._sources.get(key)
        if source is not None:
            try:
                return _materialize(source, name)
            except (SyntaxError, ValueError, KeyError, NameError):
                del self._sources[key]
                store = get_plan_store()
                if store is not None:
                    store.note_defect()
        source = build()
        self._sources[key] = source
        store = get_plan_store()
        if store is not None:
            store.merge(self.fingerprint, {key: source})
        return _materialize(source, name)

    def _settle_source(self) -> str:
        kb = _KernelBuilder(self)
        body: list[str] = []
        kb.emit_settle(body, "    ")
        return _kernel_source("_settle", kb, "e, mems", body, loop=False)

    # -- closure tier (lazy) ----------------------------------------------

    def settle_block(self) -> Callable:
        """The historical one-function-per-assign-block settle ``(env)``
        (no async reads); the ``closures`` engine baseline."""
        if self._settle_block is None:
            self._settle_block = compile_assign_block(self.assigns)
        return self._settle_block

    def closures(self):
        """Per-expression closures: (reg_next, reg_enable, reg_reset,
        mem_plans) in the exact format the general tick consumes."""
        if self._closures is None:
            reg_next = {name: compile_expr(reg.next)
                        for name, reg in self.regs.items() if reg.next}
            reg_enable = {name: compile_expr(reg.enable)
                          for name, reg in self.regs.items() if reg.enable}
            reg_reset = {name: compile_expr(reg.reset)
                         for name, reg in self.regs.items() if reg.reset}
            mem_plans: dict[str, list] = {}
            for memory in self.memories:
                for wport in memory.write_ports:
                    mem_plans.setdefault(wport.clock, []).append((
                        "w", memory.name, compile_expr(wport.addr),
                        compile_expr(wport.data), compile_expr(wport.enable),
                        memory.depth, memory.width))
                for rport in memory.read_ports:
                    if rport.sync:
                        enable = (compile_expr(rport.enable)
                                  if rport.enable else None)
                        mem_plans.setdefault(rport.clock, []).append((
                            "r", memory.name, compile_expr(rport.addr),
                            rport.name, enable, memory.depth, memory.width))
            self._closures = (reg_next, reg_enable, reg_reset, mem_plans)
        return self._closures

    # -- fused kernels (lazy, per active domain set) -----------------------

    def tick_kernel(self, active: tuple[str, ...]) -> Callable:
        """``tick(env, mems)``: one full edge of ``active`` domains."""
        kernel = self._tick_kernels.get(active)
        if kernel is None:
            def build() -> str:
                kb = _KernelBuilder(self)
                body: list[str] = []
                kb.emit_settle(body, "    ")
                kb.emit_edge(body, "    ", active)
                return _kernel_source("_tick", kb, "e, mems", body,
                                      loop=False)
            kernel = self.kernel_from_source(
                "tick:" + "+".join(active), "_tick", build)
            self._tick_kernels[active] = kernel
        return kernel

    def run_kernel(self, active: tuple[str, ...]) -> Callable:
        """``run(env, mems, n)``: ``n`` consecutive edges of ``active``
        domains with the loop inside compiled code — signals live in
        local variables for the whole run."""
        kernel = self._run_kernels.get(active)
        if kernel is None:
            def build() -> str:
                kb = _KernelBuilder(self)
                body: list[str] = []
                kb.emit_settle(body, "        ")
                kb.emit_edge(body, "        ", active)
                return _kernel_source("_run", kb, "e, mems, n", body,
                                      loop=True)
            kernel = self.kernel_from_source(
                "run:" + "+".join(active), "_run", build)
            self._run_kernels[active] = kernel
        return kernel

    def capture_run_kernel(self, active: tuple[str, ...],
                           signals: tuple[str, ...],
                           bounded: bool) -> Callable:
        """``crun(env, mems, n, ring, head, total, stride, k, cyc)``:
        the fused run loop with in-kernel trace capture.

        Each loop iteration settles, then (every ``stride``-th
        iteration) appends a ``(cycle, sig0, sig1, ...)`` tuple into
        ``ring`` — a preallocated circular list when ``bounded``, an
        append-only list otherwise — then commits the edge. Returns the
        updated ``(head, total, k, cyc)`` cursors so the caller can
        resume a later chunk exactly where this one stopped. Tracing
        therefore costs one tuple build per sample instead of dropping
        off the fused fast path entirely.
        """
        key = ("crun:" + "+".join(active)
               + (":ring:" if bounded else ":grow:") + ",".join(signals))
        kernel = self._capture_kernels.get(key)
        if kernel is None:
            def build() -> str:
                kb = _KernelBuilder(self)
                body: list[str] = []
                kb.emit_settle(body, "        ")
                body.extend(_capture_body_lines(
                    kb.sym, signals, bounded, "        "))
                kb.emit_edge(body, "        ", active)
                body.append("        cyc += 1")
                prologue = ("    _rl = len(ring)",) if bounded else ()
                return _kernel_source(
                    "_crun", kb, CAPTURE_PARAMS, body, loop=True,
                    prologue=prologue, epilogue=CAPTURE_EPILOGUE)
            kernel = self.kernel_from_source(key, "_crun", build)
            self._capture_kernels[key] = kernel
        return kernel

    # -- batched (bit-parallel) tier ---------------------------------------

    def batch_plan(self, lanes: int):
        """The K-lane :class:`~repro.rtl.batch.BatchPlan` of this design.

        Batch plans are cached per lane count and their kernel sources
        live in the same two cache tiers as the scalar kernels (keys are
        prefixed ``b<K>:``).
        """
        plan = self._batch_plans.get(lanes)
        if plan is None:
            from .batch import BatchPlan
            plan = self._batch_plans[lanes] = BatchPlan(self, lanes)
        return plan


# ---------------------------------------------------------------------------
# the plan cache
# ---------------------------------------------------------------------------

_PLAN_CACHE: "OrderedDict[str, CompiledPlan]" = OrderedDict()
_PLAN_CACHE_LIMIT = 64
_PLAN_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def compiled_plan_for(netlist) -> CompiledPlan:
    """Return the (possibly cached) :class:`CompiledPlan` for a netlist.

    The key is the structural fingerprint, so any netlist with identical
    execution semantics — including the same object re-elaborated, or
    mutated and fingerprinted again — shares one plan. A memory miss
    falls through to the on-disk source store before paying codegen.
    """
    from ..obs import get_registry, get_tracer
    registry = get_registry()
    key = netlist.fingerprint()
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_STATS["hits"] += 1
        registry.counter("sim.plan_cache.hits").inc()
        _PLAN_CACHE.move_to_end(key)
        return plan
    _PLAN_STATS["misses"] += 1
    registry.counter("sim.plan_cache.misses").inc()
    store = get_plan_store()
    sources = store.load(key) if store is not None else None
    with get_tracer().span("sim.plan_compile",
                           fingerprint=key[:12]) as span:
        start = perf_counter()
        plan = CompiledPlan(netlist, fingerprint=key, sources=sources)
        elapsed = perf_counter() - start
        if span is not None:
            span.set(registers=len(netlist.registers),
                     signals=len(netlist.signals),
                     disk=sources is not None)
    registry.counter("sim.plan_compile_seconds").inc(elapsed)
    _PLAN_CACHE[key] = plan
    while len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.popitem(last=False)
        _PLAN_STATS["evictions"] += 1
        registry.counter("sim.plan_cache.evictions").inc()
    return plan


def plan_cache_stats() -> dict:
    """Hit/miss/eviction counters for both cache tiers plus the current
    in-memory size (for tests, benchmarks, and the CLI ``stats``)."""
    store = get_plan_store()
    return {**_PLAN_STATS, "size": len(_PLAN_CACHE),
            "disk": store.stats_dict() if store is not None
            else {"enabled": False}}


def clear_plan_cache() -> None:
    _PLAN_CACHE.clear()
    _PLAN_STATS["hits"] = 0
    _PLAN_STATS["misses"] = 0
    _PLAN_STATS["evictions"] = 0
