"""Hierarchical module model.

A :class:`Module` owns named ports, wires, registers, memories, and child
:class:`Instance` objects. Registers and memories are the *state elements*
that Zoomie's readback and state-manipulation features operate on; the module
also records :class:`~repro.interfaces.decoupled.DecoupledPort` declarations
(via ``module.interfaces``) so the Debug Controller knows where to interpose
pause buffers, and attached SVA assertion strings (``module.assertions``)
for the Assertion Synthesis compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import ElaborationError, NameConflictError, UnknownSignalError
from .expr import Expr, Ref

INPUT = "input"
OUTPUT = "output"


@dataclass(frozen=True)
class Port:
    """A module boundary signal."""

    name: str
    width: int
    direction: str  # INPUT or OUTPUT

    def __post_init__(self):
        if self.direction not in (INPUT, OUTPUT):
            raise ElaborationError(
                f"port {self.name!r}: bad direction {self.direction!r}")


@dataclass
class Register:
    """A clocked state element.

    ``next`` is the D input expression; ``enable`` (optional, 1 bit) gates
    updates; ``reset`` (optional, 1 bit, synchronous) loads ``reset_value``.
    ``clock`` names the clock domain — gating that domain is how the Debug
    Controller pauses a region.
    """

    name: str
    width: int
    next: Optional[Expr] = None
    init: int = 0
    clock: str = "clk"
    enable: Optional[Expr] = None
    reset: Optional[Expr] = None
    reset_value: int = 0


@dataclass
class MemoryReadPort:
    """A memory read port; ``sync=True`` registers the read data."""

    name: str
    addr: Expr
    sync: bool = False
    enable: Optional[Expr] = None
    clock: str = "clk"


@dataclass
class MemoryWritePort:
    """A memory write port (always synchronous)."""

    addr: Expr
    data: Expr
    enable: Expr
    clock: str = "clk"


@dataclass
class Memory:
    """An addressable state array (maps to BRAM or LUTRAM on the FPGA)."""

    name: str
    width: int
    depth: int
    read_ports: list[MemoryReadPort] = field(default_factory=list)
    write_ports: list[MemoryWritePort] = field(default_factory=list)
    init: dict[int, int] = field(default_factory=dict)

    @property
    def bits(self) -> int:
        return self.width * self.depth


@dataclass
class Instance:
    """A child module instantiation.

    ``inputs`` maps child input port names to parent expressions; ``outputs``
    maps child output port names to parent wire names that receive the value.
    """

    name: str
    module: "Module"
    inputs: dict[str, Expr] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)


class Module:
    """A hardware module: the unit of hierarchy, partitioning, and reuse."""

    def __init__(self, name: str):
        self.name = name
        self.ports: dict[str, Port] = {}
        self.wires: dict[str, int] = {}
        self.assigns: dict[str, Expr] = {}
        self.registers: dict[str, Register] = {}
        self.memories: dict[str, Memory] = {}
        self.instances: dict[str, Instance] = {}
        # SVA assertion source strings attached to this module.
        self.assertions: list[str] = []
        # Decoupled interface declarations (filled by repro.interfaces).
        self.interfaces: list = []
        # Free-form attributes (e.g. placement constraints, DONT_TOUCH).
        self.attributes: dict[str, object] = {}

    # -- construction ------------------------------------------------------

    def _check_fresh(self, name: str) -> None:
        if name in self.ports or name in self.wires \
                or name in self.registers or name in self.memories:
            raise NameConflictError(
                f"{self.name}: signal {name!r} already defined")

    def add_port(self, name: str, width: int, direction: str) -> Port:
        self._check_fresh(name)
        port = Port(name, width, direction)
        self.ports[name] = port
        return port

    def add_wire(self, name: str, width: int) -> None:
        self._check_fresh(name)
        self.wires[name] = width

    def add_assign(self, name: str, expr: Expr) -> None:
        width = self.signal_width(name)
        if name in self.assigns:
            raise NameConflictError(
                f"{self.name}: signal {name!r} already driven")
        if name in self.ports and self.ports[name].direction != OUTPUT:
            raise ElaborationError(
                f"{self.name}: cannot drive input port {name!r}")
        if name in self.registers:
            raise ElaborationError(
                f"{self.name}: {name!r} is a register; set its next instead")
        if expr.width != width:
            raise ElaborationError(
                f"{self.name}: driving {name!r} ({width} bits) with a "
                f"{expr.width}-bit expression")
        self.assigns[name] = expr

    def add_register(self, reg: Register) -> None:
        self._check_fresh(reg.name)
        self.registers[reg.name] = reg

    def add_memory(self, memory: Memory) -> None:
        self._check_fresh(memory.name)
        self.memories[memory.name] = memory

    def add_instance(self, inst: Instance) -> None:
        if inst.name in self.instances:
            raise NameConflictError(
                f"{self.name}: instance {inst.name!r} already defined")
        self.instances[inst.name] = inst

    # -- queries -----------------------------------------------------------

    def signal_width(self, name: str) -> int:
        """Width of any named signal (port, wire, or register)."""
        if name in self.ports:
            return self.ports[name].width
        if name in self.wires:
            return self.wires[name]
        if name in self.registers:
            return self.registers[name].width
        raise UnknownSignalError(f"{self.name}: unknown signal {name!r}")

    def ref(self, name: str) -> Ref:
        """An expression referencing the named signal."""
        return Ref(name, self.signal_width(name))

    def input_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction == INPUT]

    def output_ports(self) -> list[Port]:
        return [p for p in self.ports.values() if p.direction == OUTPUT]

    def clocks(self) -> set[str]:
        """All clock-domain names used by state elements in this module
        (not descending into instances)."""
        domains = {reg.clock for reg in self.registers.values()}
        for memory in self.memories.values():
            domains.update(port.clock for port in memory.write_ports)
            domains.update(
                port.clock for port in memory.read_ports if port.sync)
        return domains

    def submodules(self) -> set["Module"]:
        """The transitive set of distinct child module definitions."""
        seen: set[Module] = set()
        stack = [self]
        while stack:
            module = stack.pop()
            for inst in module.instances.values():
                if inst.module not in seen:
                    seen.add(inst.module)
                    stack.append(inst.module)
        return seen

    def state_bit_count(self, _memo: dict | None = None) -> int:
        """Total state bits (registers + memories) including instances.

        Shared child definitions are counted once per *instance*, using a
        memo over module identity so huge replicated designs stay cheap.
        """
        if _memo is None:
            _memo = {}
        if id(self) in _memo:
            return _memo[id(self)]
        total = sum(reg.width for reg in self.registers.values())
        total += sum(mem.bits for mem in self.memories.values())
        for inst in self.instances.values():
            total += inst.module.state_bit_count(_memo)
        _memo[id(self)] = total
        return total

    def instance_count(self, _memo: dict | None = None) -> int:
        """Total number of module instances in the hierarchy (incl. self)."""
        if _memo is None:
            _memo = {}
        if id(self) in _memo:
            return _memo[id(self)]
        total = 1 + sum(
            inst.module.instance_count(_memo)
            for inst in self.instances.values())
        _memo[id(self)] = total
        return total

    def validate(self) -> None:
        """Check structural consistency (every wire driven, ports bound)."""
        for name in self.wires:
            driven_by_assign = name in self.assigns
            driven_by_inst = any(
                name in inst.outputs.values()
                for inst in self.instances.values())
            driven_by_memread = any(
                port.name == name
                for memory in self.memories.values()
                for port in memory.read_ports)
            if not (driven_by_assign or driven_by_inst or driven_by_memread):
                raise ElaborationError(
                    f"{self.name}: wire {name!r} has no driver")
        for port in self.output_ports():
            driven = (
                port.name in self.assigns
                or port.name in self.registers
                or any(port.name in inst.outputs.values()
                       for inst in self.instances.values()))
            if not driven:
                raise ElaborationError(
                    f"{self.name}: output {port.name!r} has no driver")
        for inst in self.instances.values():
            for pname in inst.module.input_ports():
                if pname.name not in inst.inputs:
                    raise ElaborationError(
                        f"{self.name}.{inst.name}: input {pname.name!r} "
                        f"not connected")
            for pname, expr in inst.inputs.items():
                if pname not in inst.module.ports \
                        or inst.module.ports[pname].direction != INPUT:
                    raise ElaborationError(
                        f"{self.name}.{inst.name}: {pname!r} is not an "
                        f"input of {inst.module.name!r}")
                if expr.width != inst.module.ports[pname].width:
                    raise ElaborationError(
                        f"{self.name}.{inst.name}: width mismatch on "
                        f"{pname!r}")
            for pname, wire in inst.outputs.items():
                if pname not in inst.module.ports \
                        or inst.module.ports[pname].direction != OUTPUT:
                    raise ElaborationError(
                        f"{self.name}.{inst.name}: {pname!r} is not an "
                        f"output of {inst.module.name!r}")
                if self.signal_width(wire) != inst.module.ports[pname].width:
                    raise ElaborationError(
                        f"{self.name}.{inst.name}: width mismatch on "
                        f"{pname!r} -> {wire!r}")

    def __repr__(self) -> str:
        return (f"Module({self.name!r}, ports={len(self.ports)}, "
                f"regs={len(self.registers)}, insts={len(self.instances)})")


def iter_hierarchy(top: Module) -> Iterable[tuple[str, Module]]:
    """Yield ``(hierarchical_path, module)`` pairs, top first."""
    stack: list[tuple[str, Module]] = [("", top)]
    while stack:
        path, module = stack.pop()
        yield path, module
        for inst in module.instances.values():
            child_path = f"{path}.{inst.name}" if path else inst.name
            stack.append((child_path, inst.module))
