"""Waveform capture and VCD export.

Two capture tiers share one read-side protocol (:class:`TraceView`):

- :class:`Trace` — the classic edge-hook recorder. Attaching it installs
  a hook, which drops the simulator off the fused ``run(n)`` fast path;
  it observes *every* committed edge, so it stays the right tool when a
  breakpoint or another hook is in play anyway.
- :class:`StreamingTrace` / :class:`BatchTrace` — streaming, bounded-
  memory capture that rides inside the generated run kernels
  (:meth:`CompiledPlan.capture_run_kernel`). Samples append into a
  preallocated ring every ``stride``-th cycle, ILA-style trigger
  windows carve a view around an event, and the simulator keeps its
  fused-loop throughput while being observed.

Any view serializes through :func:`write_vcd` with true cycle
timestamps and real per-signal widths (including BRAM output latches,
which live only in the simulator environment, not ``netlist.signals``).
"""

from __future__ import annotations

from collections import deque
from typing import IO, Iterable, Iterator, Optional

from .._bits import mask
from ..errors import SimulationError
from ..obs import get_registry
from .simulator import Simulator

#: Default ring depth of the streaming captures — bounded so a
#: multi-hour campaign cannot grow a trace without limit.
DEFAULT_RING_DEPTH = 4096


def signal_widths(netlist) -> dict[str, int]:
    """Widths of everything traceable: declared signals plus the
    synchronous read-port output latches that exist only in the
    simulator environment."""
    widths = dict(netlist.signals)
    widths.update(netlist.sync_read_outputs())
    return widths


class TraceView:
    """Read-side protocol shared by every capture type.

    Subclasses provide ``signals`` (ordered list), ``widths`` (name to
    bit width) and :meth:`iter_rows`; the query helpers and
    :func:`write_vcd` work on any of them.
    """

    signals: list[str]
    widths: dict[str, int]

    def iter_rows(self) -> Iterator[tuple[int, dict[str, int]]]:
        """Yield ``(cycle, {signal: value})`` rows, oldest first."""
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_rows())

    def value_at(self, cycle: int, signal: str) -> int:
        """Value of ``signal`` at the recorded ``cycle``."""
        for recorded_cycle, row in self.iter_rows():
            if recorded_cycle == cycle:
                return row[signal]
        raise SimulationError(f"cycle {cycle} not in trace")

    def series(self, signal: str) -> list[int]:
        """All recorded values of one signal, oldest first."""
        return [row[signal] for _, row in self.iter_rows()]

    def cycles_recorded(self) -> list[int]:
        return [cycle for cycle, _ in self.iter_rows()]


class Trace(TraceView):
    """Records ``(cycle, {signal: value})`` rows for a set of signals.

    Parameters
    ----------
    simulator:
        The simulator to attach to.
    signals:
        Names to record. Defaults to every named signal — fine for small
        designs, expensive for big ones.
    domain:
        Record on commits of this clock domain.
    depth:
        Optional circular-buffer depth (ILA-style capture window); older
        rows are dropped once full. ``None`` keeps everything.
    """

    def __init__(self, simulator: Simulator,
                 signals: Optional[Iterable[str]] = None,
                 domain: str = "clk",
                 depth: Optional[int] = None):
        self.simulator = simulator
        if signals is None:
            signals = list(simulator.netlist.signals)
        self.signals = [str(s) for s in signals]
        for name in self.signals:
            if name not in simulator.env:
                raise SimulationError(f"cannot trace unknown signal {name!r}")
        widths = signal_widths(simulator.netlist)
        self.widths = {name: widths.get(name, 1) for name in self.signals}
        self.domain = domain
        self.depth = depth
        self.rows: deque[tuple[int, dict[str, int]]] = deque(maxlen=depth)
        self._by_cycle: dict[int, dict[str, int]] = {}
        self._attached = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "Trace":
        """Start recording (records the pre-step state immediately)."""
        if self._attached:
            return self
        self._record()
        self.simulator.edge_hooks.append(self._on_edge)
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.simulator.edge_hooks.remove(self._on_edge)
            self._attached = False

    def _on_edge(self, sim: Simulator, ticked: frozenset[str]) -> None:
        if self.domain in ticked:
            self._record()

    def _record(self) -> None:
        row = {name: self.simulator.peek(name) for name in self.signals}
        if self.depth is not None and len(self.rows) == self.depth:
            evicted_cycle, _ = self.rows[0]
            self._by_cycle.pop(evicted_cycle, None)
        self.rows.append((self.simulator.cycles(self.domain), row))
        self._by_cycle[self.rows[-1][0]] = row

    # -- queries -----------------------------------------------------------

    def iter_rows(self) -> Iterator[tuple[int, dict[str, int]]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def value_at(self, cycle: int, signal: str) -> int:
        """Value of ``signal`` at the recorded ``cycle``."""
        row = self._by_cycle.get(cycle)
        if row is None:
            raise SimulationError(f"cycle {cycle} not in trace")
        return row[signal]

    def series(self, signal: str) -> list[int]:
        """All recorded values of one signal, oldest first."""
        return [row[signal] for _, row in self.rows]

    def cycles_recorded(self) -> list[int]:
        return [cycle for cycle, _ in self.rows]


# ---------------------------------------------------------------------------
# streaming capture (in-kernel)
# ---------------------------------------------------------------------------

class _CaptureBuffer:
    """Mutable capture state threaded through the generated kernels.

    Rows are flat tuples ``(cycle, sig0, sig1, ...)`` in ``signals``
    order — what the kernel's single tuple-build per sample produces.
    ``ring`` is a preallocated circular list when bounded (``head`` is
    the next write slot, ``total`` the lifetime sample count) or an
    append-only list otherwise. ``phase`` is the stride countdown and
    ``cycle`` the capture domain's committed-edge count at the *next*
    sample point.
    """

    __slots__ = ("signals", "domain", "stride", "bounded", "ring",
                 "head", "total", "phase", "cycle")

    def __init__(self, signals: tuple[str, ...], domain: str,
                 depth: Optional[int], stride: int, start_cycle: int):
        self.signals = signals
        self.domain = domain
        self.stride = stride
        self.bounded = depth is not None
        self.ring: list = [None] * depth if depth is not None else []
        self.head = 0
        self.total = 0
        self.phase = 0
        self.cycle = start_cycle

    def sample_scalar(self, env: dict[str, int]) -> None:
        """One Python-side capture iteration — the exact ordering the
        kernel uses (sample pre-edge, then advance phase and cycle)."""
        if self.phase == 0:
            self.push((self.cycle,) + tuple(env[s] for s in self.signals))
        self.phase += 1
        if self.phase == self.stride:
            self.phase = 0
        self.cycle += 1

    def push(self, row: tuple) -> None:
        if self.bounded:
            self.ring[self.head] = row
            self.head += 1
            if self.head == len(self.ring):
                self.head = 0
        else:
            self.ring.append(row)
        self.total += 1

    @property
    def occupancy(self) -> int:
        if not self.bounded:
            return len(self.ring)
        return min(self.total, len(self.ring))

    def rows_in_order(self) -> list[tuple]:
        """The retained rows, oldest first (unwraps the ring)."""
        if not self.bounded:
            return list(self.ring)
        if self.total < len(self.ring):
            return self.ring[:self.total]
        return self.ring[self.head:] + self.ring[:self.head]


class StreamingTrace(TraceView):
    """Bounded-memory waveform capture on the fused fast path.

    Unlike :class:`Trace`, no hook is installed: :meth:`run` advances
    the simulation through :meth:`Simulator.step_captured`, whose
    generated kernel appends one ``(cycle, values...)`` tuple into a
    preallocated ring every ``stride``-th cycle. The simulator keeps
    its compiled hot loop, so observing the design costs a tuple build
    per sample instead of the ~25x fused speedup.

    ``depth`` bounds memory ILA-style (older samples are overwritten
    once the ring wraps); ``depth=None`` keeps every sample.
    :meth:`capture_window` provides trigger-positioned windows. Call
    :meth:`stop` when done to record the closing post-run sample.
    """

    def __init__(self, simulator: Simulator,
                 signals: Optional[Iterable[str]] = None,
                 domain: str = "clk",
                 depth: Optional[int] = DEFAULT_RING_DEPTH,
                 stride: int = 1):
        self.simulator = simulator
        if signals is None:
            signals = list(simulator.netlist.signals)
        self.signals = [str(s) for s in signals]
        if not self.signals:
            raise SimulationError("streaming trace needs at least one signal")
        for name in self.signals:
            if name not in simulator.env:
                raise SimulationError(f"cannot trace unknown signal {name!r}")
        if depth is not None and depth < 1:
            raise SimulationError(f"ring depth must be positive, got {depth}")
        if stride < 1:
            raise SimulationError(
                f"sample stride must be positive, got {stride}")
        simulator._domain(domain)
        self.domain = domain
        self.depth = depth
        self.stride = stride
        widths = signal_widths(simulator.netlist)
        self.widths = {name: widths.get(name, 1) for name in self.signals}
        self._cap = _CaptureBuffer(
            tuple(self.signals), domain, depth, stride,
            simulator.cycles(domain))
        self._pos = {name: i + 1 for i, name in enumerate(self.signals)}
        self._stopped = False
        self._scanned = 0
        self._index: Optional[dict[int, tuple]] = None
        self._index_total = -1
        self.triggered_at: Optional[int] = None
        registry = get_registry()
        self._m_samples = registry.counter("sim.trace.samples")
        self._g_ring = registry.gauge("sim.trace.ring_occupancy")

    # -- capture -----------------------------------------------------------

    def run(self, cycles: int, domain: Optional[str] = None) -> None:
        """Advance the simulation ``cycles`` cycles while capturing."""
        if self._stopped:
            raise SimulationError("streaming trace already stopped")
        before = self._cap.total
        self.simulator.step_captured(cycles, self._cap, domain=domain)
        self._m_samples.inc(self._cap.total - before)
        self._g_ring.set(self._cap.occupancy)

    def stop(self) -> "StreamingTrace":
        """Record the closing sample (state after the final edge) if one
        is due at the current stride phase, and freeze the capture.

        With ``stride=1`` the rows then cover exactly what an edge-hook
        :class:`Trace` attached before the run would have recorded: the
        pre-run state plus one row per committed edge.
        """
        if self._stopped:
            return self
        if self._cap.phase == 0:
            self.simulator._settle()
            env = self.simulator.env
            self._cap.push(
                (self._cap.cycle,)
                + tuple(env[s] for s in self.signals))
            self._m_samples.inc()
            self._g_ring.set(self._cap.occupancy)
        self._stopped = True
        return self

    def capture_window(self, trigger: dict[str, int],
                       position: Optional[int] = None,
                       max_cycles: int = 100_000,
                       chunk: int = 1024) -> bool:
        """ILA-style trigger window: run until a sampled row matches
        ``trigger`` (every named signal equals its value), then keep
        running until the ring holds ``position`` pre-trigger samples
        followed by the trigger row and the post-trigger remainder.

        Runs in ``chunk``-cycle kernel calls with a Python-side scan of
        only the new samples between calls — slower than free streaming,
        far faster than per-edge hooks. Returns ``True`` if the trigger
        fired within ``max_cycles``; ``triggered_at`` then holds the
        trigger cycle.
        """
        if not self._cap.bounded:
            raise SimulationError(
                "trigger windows need a bounded ring (pass depth=...)")
        unknown = sorted(set(trigger) - set(self.signals))
        if unknown:
            raise SimulationError(
                f"trigger refers to uncaptured signals {unknown}")
        depth = len(self._cap.ring)
        if position is None:
            position = depth // 2
        if not 0 <= position < depth:
            raise SimulationError(
                f"trigger position {position} outside window of {depth}")
        pos = {name: self._pos[name] for name in trigger}
        # A chunk must never sample past the post-trigger remainder of
        # the window, or the ring slides over the pre-trigger history
        # before the scan sees the match.
        span = min(chunk, max(
            1, (depth - position) * self.stride - (self.stride - 1)))
        ran = 0
        trigger_index: Optional[int] = None
        while trigger_index is None and ran < max_cycles:
            n = min(span, max_cycles - ran)
            self.run(n)
            ran += n
            rows = self._cap.rows_in_order()
            total = self._cap.total
            oldest = total - len(rows)
            for abs_index in range(max(self._scanned, oldest), total):
                row = rows[abs_index - oldest]
                if all(row[pos[s]] == v for s, v in trigger.items()):
                    trigger_index = abs_index
                    self.triggered_at = row[0]
                    break
            self._scanned = total
        if trigger_index is None:
            return False
        # Fill the ring so its final contents are samples
        # [trigger_index - position, trigger_index - position + depth).
        need = trigger_index - position + depth - self._cap.total
        if need > 0:
            phase = self._cap.phase
            cycles = (((self.stride - phase) % self.stride)
                      + 1 + (need - 1) * self.stride)
            self.run(min(cycles, max(0, max_cycles - ran)))
            self._scanned = self._cap.total
        return True

    # -- queries -----------------------------------------------------------

    def _rows(self) -> list[tuple]:
        return self._cap.rows_in_order()

    def _cycle_index(self) -> dict[int, tuple]:
        if self._index is None or self._index_total != self._cap.total:
            self._index = {row[0]: row for row in self._rows()}
            self._index_total = self._cap.total
        return self._index

    def iter_rows(self) -> Iterator[tuple[int, dict[str, int]]]:
        for row in self._rows():
            yield row[0], dict(zip(self.signals, row[1:]))

    def __len__(self) -> int:
        return self._cap.occupancy

    @property
    def samples_seen(self) -> int:
        """Lifetime sample count, including samples the ring dropped."""
        return self._cap.total

    def value_at(self, cycle: int, signal: str) -> int:
        row = self._cycle_index().get(cycle)
        if row is None:
            raise SimulationError(f"cycle {cycle} not in trace")
        try:
            return row[self._pos[signal]]
        except KeyError:
            raise SimulationError(
                f"signal {signal!r} not captured") from None

    def series(self, signal: str) -> list[int]:
        try:
            index = self._pos[signal]
        except KeyError:
            raise SimulationError(
                f"signal {signal!r} not captured") from None
        return [row[index] for row in self._rows()]

    def cycles_recorded(self) -> list[int]:
        return [row[0] for row in self._rows()]


# ---------------------------------------------------------------------------
# batched capture
# ---------------------------------------------------------------------------

class BatchLaneTrace(TraceView):
    """One lane of a :class:`BatchTrace`, decoded on the fly — a normal
    :class:`TraceView`, so detectors and :func:`write_vcd` apply."""

    def __init__(self, batch_trace: "BatchTrace", lane: int):
        self.signals = list(batch_trace.signals)
        self.widths = dict(batch_trace.widths)
        self.lane = lane
        self._bt = batch_trace

    def iter_rows(self) -> Iterator[tuple[int, dict[str, int]]]:
        bt = self._bt
        shift = self.lane * bt.lane_stride
        for row in bt._rows():
            yield row[0], {
                name: (row[i + 1] >> shift) & mask(bt.widths[name])
                for i, name in enumerate(self.signals)}

    def __len__(self) -> int:
        return self._bt._cap.occupancy


class BatchTrace(TraceView):
    """Streaming capture over a :class:`~repro.rtl.batch.BatchSimulator`.

    One ring row stores the *packed* K-lane integers, so a single
    in-kernel sample covers all lanes; :meth:`series` decodes one
    lane's values and :meth:`lane_view` wraps a lane as a standalone
    :class:`TraceView` (VCD export, detectors). The default
    :meth:`iter_rows` yields lane 0.
    """

    def __init__(self, batch,
                 signals: Optional[Iterable[str]] = None,
                 domain: str = "clk",
                 depth: Optional[int] = DEFAULT_RING_DEPTH,
                 stride: int = 1):
        self.batch = batch
        if signals is None:
            signals = list(batch.netlist.signals)
        self.signals = [str(s) for s in signals]
        if not self.signals:
            raise SimulationError("batch trace needs at least one signal")
        for name in self.signals:
            if name not in batch.env:
                raise SimulationError(f"cannot trace unknown signal {name!r}")
        if depth is not None and depth < 1:
            raise SimulationError(f"ring depth must be positive, got {depth}")
        if stride < 1:
            raise SimulationError(
                f"sample stride must be positive, got {stride}")
        batch._domain(domain)
        self.domain = domain
        self.depth = depth
        self.stride = stride
        self.lane_stride = batch.stride
        widths = signal_widths(batch.netlist)
        self.widths = {name: widths.get(name, 1) for name in self.signals}
        self._cap = _CaptureBuffer(
            tuple(self.signals), domain, depth, stride,
            batch.cycles(domain))
        self._pos = {name: i + 1 for i, name in enumerate(self.signals)}
        self._stopped = False
        registry = get_registry()
        self._m_samples = registry.counter("sim.trace.samples")
        self._g_ring = registry.gauge("sim.trace.ring_occupancy")

    def run(self, cycles: int, domain: Optional[str] = None) -> None:
        """Advance all lanes ``cycles`` cycles while capturing."""
        if self._stopped:
            raise SimulationError("batch trace already stopped")
        before = self._cap.total
        self.batch.step_captured(cycles, self._cap, domain=domain)
        self._m_samples.inc((self._cap.total - before) * self.batch.lanes)
        self._g_ring.set(self._cap.occupancy)

    def stop(self) -> "BatchTrace":
        """Record the closing post-run sample (if due) and freeze."""
        if self._stopped:
            return self
        if self._cap.phase == 0:
            self.batch._settle()
            env = self.batch.env
            self._cap.push(
                (self._cap.cycle,)
                + tuple(env[s] for s in self.signals))
            self._m_samples.inc(self.batch.lanes)
            self._g_ring.set(self._cap.occupancy)
        self._stopped = True
        return self

    # -- queries -----------------------------------------------------------

    def _rows(self) -> list[tuple]:
        return self._cap.rows_in_order()

    def __len__(self) -> int:
        return self._cap.occupancy

    def series(self, signal: str, lane: int = 0) -> list[int]:
        """One lane's recorded values of ``signal``, oldest first."""
        try:
            index = self._pos[signal]
        except KeyError:
            raise SimulationError(
                f"signal {signal!r} not captured") from None
        if not 0 <= lane < self.batch.lanes:
            raise SimulationError(f"lane {lane} out of range")
        shift = lane * self.lane_stride
        signal_mask = mask(self.widths[signal])
        return [(row[index] >> shift) & signal_mask for row in self._rows()]

    def cycles_recorded(self) -> list[int]:
        return [row[0] for row in self._rows()]

    def lane_view(self, lane: int) -> BatchLaneTrace:
        """A per-lane :class:`TraceView` over the shared ring."""
        if not 0 <= lane < self.batch.lanes:
            raise SimulationError(f"lane {lane} out of range")
        return BatchLaneTrace(self, lane)

    def iter_rows(self) -> Iterator[tuple[int, dict[str, int]]]:
        return self.lane_view(0).iter_rows()


# ---------------------------------------------------------------------------
# VCD export
# ---------------------------------------------------------------------------

def _vcd_id(index: int) -> str:
    """Compact printable VCD identifier for the ``index``-th signal."""
    chars = "".join(chr(c) for c in range(33, 127))
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(chars))
        out = chars[rem] + out
    return out


def _vcd_value(value: int, width: int, ident: str) -> str:
    if width == 1:
        return f"{value}{ident}\n"
    return f"b{value:b} {ident}\n"


def write_vcd(trace: TraceView, stream: IO[str],
              timescale: str = "1ns", top: str = "top") -> None:
    """Serialize any :class:`TraceView` as a Value Change Dump file.

    Timestamps are the *recorded cycle numbers* — a depth-bounded ring
    that has wrapped starts at its oldest retained cycle, and a trace
    attached mid-run starts at the attach cycle, so the time axis always
    matches the simulation. The first timestamp carries the
    ``$dumpvars`` initial-value section; later timestamps emit changed
    signals only (timestamps with no changes are skipped entirely).
    """
    signals = list(trace.signals)
    ids = {name: _vcd_id(i) for i, name in enumerate(signals)}
    widths = getattr(trace, "widths", None) or {name: 1 for name in signals}
    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {top} $end\n")
    for name in signals:
        safe = name.replace(".", "_")
        stream.write(
            f"$var wire {widths.get(name, 1)} {ids[name]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")
    last: dict[str, int] = {}
    first = True
    for cycle, row in trace.iter_rows():
        if first:
            stream.write(f"#{cycle}\n$dumpvars\n")
            for name in signals:
                stream.write(
                    _vcd_value(row[name], widths.get(name, 1), ids[name]))
            stream.write("$end\n")
            last = dict(row)
            first = False
            continue
        changed = [name for name in signals if row[name] != last[name]]
        if not changed:
            continue
        stream.write(f"#{cycle}\n")
        for name in changed:
            stream.write(
                _vcd_value(row[name], widths.get(name, 1), ids[name]))
            last[name] = row[name]
