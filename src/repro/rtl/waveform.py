"""Waveform capture and VCD export.

A :class:`Trace` subscribes to simulator edge hooks and records selected
signals every time their domain commits. Traces back the ILA model (which
captures windows of signals), the SVA software evaluator, and debugging
sessions that want to inspect history.
"""

from __future__ import annotations

from typing import IO, Iterable, Optional

from ..errors import SimulationError
from .simulator import Simulator


class Trace:
    """Records ``(cycle, {signal: value})`` rows for a set of signals.

    Parameters
    ----------
    simulator:
        The simulator to attach to.
    signals:
        Names to record. Defaults to every named signal — fine for small
        designs, expensive for big ones.
    domain:
        Record on commits of this clock domain.
    depth:
        Optional circular-buffer depth (ILA-style capture window); older
        rows are dropped once full. ``None`` keeps everything.
    """

    def __init__(self, simulator: Simulator,
                 signals: Optional[Iterable[str]] = None,
                 domain: str = "clk",
                 depth: Optional[int] = None):
        self.simulator = simulator
        if signals is None:
            signals = list(simulator.netlist.signals)
        self.signals = [str(s) for s in signals]
        for name in self.signals:
            if name not in simulator.env:
                raise SimulationError(f"cannot trace unknown signal {name!r}")
        self.domain = domain
        self.depth = depth
        self.rows: list[tuple[int, dict[str, int]]] = []
        self._attached = False

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "Trace":
        """Start recording (records the pre-step state immediately)."""
        if self._attached:
            return self
        self._record()
        self.simulator.edge_hooks.append(self._on_edge)
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.simulator.edge_hooks.remove(self._on_edge)
            self._attached = False

    def _on_edge(self, sim: Simulator, ticked: frozenset[str]) -> None:
        if self.domain in ticked:
            self._record()

    def _record(self) -> None:
        row = {name: self.simulator.peek(name) for name in self.signals}
        self.rows.append((self.simulator.cycles(self.domain), row))
        if self.depth is not None and len(self.rows) > self.depth:
            del self.rows[0]

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def value_at(self, cycle: int, signal: str) -> int:
        """Value of ``signal`` at the recorded ``cycle``."""
        for recorded_cycle, row in self.rows:
            if recorded_cycle == cycle:
                return row[signal]
        raise SimulationError(f"cycle {cycle} not in trace")

    def series(self, signal: str) -> list[int]:
        """All recorded values of one signal, oldest first."""
        return [row[signal] for _, row in self.rows]

    def cycles_recorded(self) -> list[int]:
        return [cycle for cycle, _ in self.rows]


def _vcd_id(index: int) -> str:
    """Compact printable VCD identifier for the ``index``-th signal."""
    chars = "".join(chr(c) for c in range(33, 127))
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(chars))
        out = chars[rem] + out
    return out


def write_vcd(trace: Trace, stream: IO[str],
              timescale: str = "1ns", top: str = "top") -> None:
    """Serialize a trace as a Value Change Dump file."""
    ids = {name: _vcd_id(i) for i, name in enumerate(trace.signals)}
    widths = {
        name: trace.simulator.netlist.signals.get(name, 1)
        for name in trace.signals
    }
    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {top} $end\n")
    for name in trace.signals:
        safe = name.replace(".", "_")
        stream.write(
            f"$var wire {widths[name]} {ids[name]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")
    last: dict[str, int] = {}
    for index, (_cycle, row) in enumerate(trace.rows):
        stream.write(f"#{index}\n")
        for name in trace.signals:
            value = row[name]
            if last.get(name) == value:
                continue
            last[name] = value
            if widths[name] == 1:
                stream.write(f"{value}{ids[name]}\n")
            else:
                stream.write(f"b{value:b} {ids[name]}\n")
