"""Hierarchy elaboration: :class:`Module` tree -> flat :class:`Netlist`.

Signal names are prefixed with their instance path. Instances may carry a
``clock_map`` attribute (set via :func:`set_clock_map`) renaming the child's
clock domains — this is how the Debug Controller places the module under
test into a separate, gateable domain.
"""

from __future__ import annotations

from ..errors import ElaborationError
from .expr import Expr, Ref
from .module import Instance, Memory, MemoryReadPort, MemoryWritePort, Module, Register
from .netlist import Netlist

#: Instance attribute used to rename child clock domains.
CLOCK_MAP_ATTR = "_clock_map"


def set_clock_map(inst: Instance, mapping: dict[str, str]) -> None:
    """Rename the child's clock domains during elaboration.

    ``mapping`` maps child domain names to parent domain names, e.g.
    ``{"clk": "mut_clk"}``.
    """
    setattr(inst, CLOCK_MAP_ATTR, dict(mapping))


def _clock_map(inst: Instance) -> dict[str, str]:
    return getattr(inst, CLOCK_MAP_ATTR, {})


def elaborate(top: Module) -> Netlist:
    """Flatten ``top`` and everything below it into a :class:`Netlist`."""
    netlist = Netlist(name=top.name)
    _flatten_into(netlist, top, prefix="", clock_map={})
    # Top-level ports become the netlist interface.
    for port in top.input_ports():
        netlist.inputs.add(port.name)
    for port in top.output_ports():
        netlist.outputs.add(port.name)
    netlist.validate()
    return netlist


def _flat(prefix: str, name: str) -> str:
    return f"{prefix}.{name}" if prefix else name


def _rename_expr(expr: Expr, prefix: str) -> Expr:
    if not prefix:
        return expr
    return expr.substitute(lambda ref: Ref(_flat(prefix, ref.name), ref.width))


def _map_clock(clock: str, clock_map: dict[str, str]) -> str:
    return clock_map.get(clock, clock)


def _flatten_into(netlist: Netlist, module: Module, prefix: str,
                  clock_map: dict[str, str]) -> None:
    # Declare every signal of this module level.
    for port in module.ports.values():
        netlist.add_signal(_flat(prefix, port.name), port.width, prefix)
    for wire, width in module.wires.items():
        netlist.add_signal(_flat(prefix, wire), width, prefix)
    for reg in module.registers.values():
        netlist.add_signal(_flat(prefix, reg.name), reg.width, prefix)

    # Combinational assigns.
    for target, expr in module.assigns.items():
        netlist.assigns[_flat(prefix, target)] = _rename_expr(expr, prefix)

    # Registers.
    for reg in module.registers.values():
        flat_reg = Register(
            name=_flat(prefix, reg.name),
            width=reg.width,
            next=_rename_expr(reg.next, prefix) if reg.next else None,
            init=reg.init,
            clock=_map_clock(reg.clock, clock_map),
            enable=_rename_expr(reg.enable, prefix) if reg.enable else None,
            reset=_rename_expr(reg.reset, prefix) if reg.reset else None,
            reset_value=reg.reset_value,
        )
        netlist.registers[flat_reg.name] = flat_reg

    # Memories (read-port data wires get declared here too).
    for memory in module.memories.values():
        flat_ports_r = []
        for rport in memory.read_ports:
            # The read-data wire was already declared in the wire pass
            # (ModuleBuilder.read_port declares it as a module wire).
            flat_name = _flat(prefix, rport.name)
            flat_ports_r.append(MemoryReadPort(
                name=flat_name,
                addr=_rename_expr(rport.addr, prefix),
                sync=rport.sync,
                enable=(_rename_expr(rport.enable, prefix)
                        if rport.enable else None),
                clock=_map_clock(rport.clock, clock_map),
            ))
        flat_ports_w = [
            MemoryWritePort(
                addr=_rename_expr(wport.addr, prefix),
                data=_rename_expr(wport.data, prefix),
                enable=_rename_expr(wport.enable, prefix),
                clock=_map_clock(wport.clock, clock_map),
            )
            for wport in memory.write_ports
        ]
        flat_mem = Memory(
            name=_flat(prefix, memory.name),
            width=memory.width,
            depth=memory.depth,
            read_ports=flat_ports_r,
            write_ports=flat_ports_w,
            init=dict(memory.init),
        )
        netlist.memories[flat_mem.name] = flat_mem
        netlist.signals[flat_mem.name] = memory.width  # container marker
        netlist.owner[flat_mem.name] = prefix

    # Assertions keep their hierarchical context for name resolution.
    for text in module.assertions:
        netlist.assertions.append((prefix, text))
    for iface in module.interfaces:
        netlist.interfaces.append((prefix, iface))

    # Recurse into instances.
    for inst in module.instances.values():
        child_prefix = _flat(prefix, inst.name)
        child_clock_map = {
            child: _map_clock(parent, clock_map)
            for child, parent in _clock_map(inst).items()
        }
        merged_map = dict(clock_map)
        merged_map.update(child_clock_map)
        _flatten_into(netlist, inst.module, child_prefix, merged_map)

        # Bind child inputs: flat child port is assigned the parent expr.
        for pname, expr in inst.inputs.items():
            netlist.assigns[_flat(child_prefix, pname)] = \
                _rename_expr(expr, prefix)
        # Bind child outputs: the receiving parent wire aliases the child
        # port, unless the port is directly driven by a child register (then
        # the port itself already carries the value through its own assign).
        for pname, wire in inst.outputs.items():
            flat_wire = _flat(prefix, wire)
            flat_port = _flat(child_prefix, pname)
            if flat_wire in netlist.assigns:
                raise ElaborationError(
                    f"{flat_wire!r} driven by multiple instance outputs")
            netlist.assigns[flat_wire] = Ref(
                flat_port, inst.module.ports[pname].width)
