"""Bit-parallel batched simulation: K independent runs per kernel tick.

The fused kernels (:mod:`repro.rtl._codegen`) already evaluate a whole
design over unbounded Python integers; this module widens those integers
so that *lane* ``i`` of every value carries run ``i`` of K independent
simulations. One generated kernel tick then advances all K runs at once
— SIMD-within-a-register, with Python's big integers as the register.

Packing scheme
--------------

Every signal of width ``w`` is stored as a K-lane integer at a uniform
lane stride ``S = max(width of any signal or expression node) + 1``:
lane ``i`` of a signal occupies bits ``[i*S, i*S + w)``. The invariant
maintained by every emitted operation is that each lane's field holds a
value ``< 2**w`` and all bits between the field and the next lane base
are zero. The one spare bit per lane (the ``+1``) is the carry/borrow
guard that keeps ripple from crossing lanes:

- ``a + b``             → ``(a + b) & M(w)``
- ``a - b``             → ``((a | G(w)) - b) & M(w)``
- ``-a``                → ``(G(w) - a) & M(w)``
- per-lane nonzero      → ``((a + M(w)) >> w) & L``
- unsigned ``a >= b``   → ``(((a | G(w)) - b) >> w) & L``
- signed compares       → XOR both operands with ``repl(1 << (w-1))``
  (offset-binary), then compare unsigned
- mux                   → ``f ^ ((f ^ t) & (nz(sel) * mask(w)))``

where ``M(w)``/``G(w)``/``L`` replicate ``mask(w)``/``1 << w``/``1``
into every lane. Data-dependent shifts, multiplies, and XOR-reduces fall
back to a per-lane loop inside a generated helper — still one kernel,
just a slower op. Memory ports are inherently per-lane (addresses
differ across runs), so memories are stored lane-major (one word list
per lane) and ports loop over lanes.

When batching is sound
----------------------

Lanes are *independent runs of the same netlist under one clock
schedule*: same clock periods and phases, gating applies to all lanes,
and there are no per-lane hooks. Anything needing per-run control flow
(pause one run, hook another) belongs on a scalar
:class:`~repro.rtl.simulator.Simulator` — use :meth:`BatchSimulator
.extract_lane` to pull a run out into one. The differential suite pins
every lane of a batched run bit-identical to its scalar twin.
"""

from __future__ import annotations

from typing import Callable, Optional

from .._bits import mask, truncate
from ..errors import SimulationError, UnknownSignalError
from ..obs import get_registry
from ._codegen import (
    _SIGNED_CMP, CAPTURE_EPILOGUE, CAPTURE_PARAMS, CompiledPlan,
    _capture_body_lines, compiled_plan_for)
from .expr import BinaryOp, Concat, Const, Expr, Mux, Ref, Repl, Slice, UnaryOp
from .netlist import Netlist
from .simulator import DEFAULT_PERIOD_PS, ClockDomain


def _replicate(value: int, lanes: int, stride: int) -> int:
    """``value`` copied into every lane of a packed integer."""
    out = 0
    for i in range(lanes):
        out |= value << (i * stride)
    return out


def _plan_stride(plan: CompiledPlan) -> int:
    """Lane stride for a plan: widest signal or expression node, plus
    one guard bit. Uniform across the design so cross-signal ops line
    up lane-for-lane."""
    widest = 1
    exprs: list[Expr] = [expr for _, expr in plan.assigns]
    for width in plan.signal_widths.values():
        widest = max(widest, width)
    for reg in plan.regs.values():
        widest = max(widest, reg.width)
        exprs.extend(e for e in (reg.next, reg.enable, reg.reset) if e)
    for memory in plan.memories:
        widest = max(widest, memory.width)
        for rport in memory.read_ports:
            exprs.append(rport.addr)
            if rport.enable is not None:
                exprs.append(rport.enable)
        for wport in memory.write_ports:
            exprs.extend((wport.addr, wport.data, wport.enable))
    for expr in exprs:
        for node in expr.walk():
            widest = max(widest, node.width)
    return widest + 1


# ---------------------------------------------------------------------------
# lane-parallel code emission
# ---------------------------------------------------------------------------

class _BatchEmitter:
    """Emits one batched kernel as straight-line statements.

    Unlike the scalar tier's expression-composition (``_to_py``), every
    compound node lands in its own single-assignment temp: the mux blend
    references each arm twice, so textual composition would blow up
    exponentially on mux chains. Temps are never reassigned, so any
    ``t``/``B`` atom stays valid until the commit phase; signal locals
    (``v``) are copied before being held across commits.
    """

    def __init__(self, plan: CompiledPlan, lanes: int, stride: int):
        self.plan = plan
        self.lanes = lanes
        self.stride = stride
        #: replicated-constant value -> hoisted module-level name.
        self.consts: dict[int, str] = {}
        #: helper function name -> its source (per-lane slow paths).
        self.helpers: dict[str, str] = {}
        self.locals_of: dict[str, str] = {}
        self.mem_of: dict[str, str] = {}
        self.stores: dict[str, None] = {}
        self._tmp = 0
        self.lsb = self.repl(1)

    # -- atoms -------------------------------------------------------------

    def sym(self, name: str) -> str:
        local = self.locals_of.get(name)
        if local is None:
            local = self.locals_of[name] = f"v{len(self.locals_of)}"
        return local

    def mem(self, name: str) -> str:
        local = self.mem_of.get(name)
        if local is None:
            local = self.mem_of[name] = f"m{len(self.mem_of)}"
        return local

    def temp(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def store(self, name: str) -> str:
        self.stores[name] = None
        return self.sym(name)

    def const(self, value: int) -> str:
        name = self.consts.get(value)
        if name is None:
            name = self.consts[value] = f"B{len(self.consts)}"
        return name

    def repl(self, value: int) -> str:
        return self.const(_replicate(value, self.lanes, self.stride))

    def rmask(self, width: int) -> str:
        return self.repl(mask(width))

    def snap(self, atom: str) -> tuple[str, Optional[str]]:
        """An atom safe to hold across the commit phase. Signal locals
        get copied into a temp (commits reassign them); temps and consts
        are immutable already."""
        if atom.startswith("v"):
            t = self.temp()
            return t, f"{t} = {atom}"
        return atom, None

    # -- lane-parallel building blocks -------------------------------------

    def nz(self, atom: str, width: int, lines: list[str], ind: str) -> str:
        """Per-lane nonzero flag (one bit at each lane base)."""
        if width == 1:
            return atom
        t = self.temp()
        lines.append(f"{ind}{t} = (({atom} + {self.rmask(width)}) "
                     f">> {width}) & {self.lsb}")
        return t

    def smear(self, cond: str, width: int, lines: list[str],
              ind: str) -> str:
        """Widen per-lane condition bits to ``width``-wide lane masks
        (the big-int multiply trick: lane fields cannot overlap, so the
        product is a carry-free shifted sum)."""
        if width == 1:
            return cond
        t = self.temp()
        lines.append(f"{ind}{t} = {cond} * {hex(mask(width))}")
        return t

    def blend(self, cond_atom: str, cond_width: int, t_atom: str,
              f_atom: str, width: int, lines: list[str], ind: str) -> str:
        """Per-lane select: lanes where ``cond`` is nonzero take ``t``."""
        c = self.nz(cond_atom, cond_width, lines, ind)
        m = self.smear(c, width, lines, ind)
        out = self.temp()
        lines.append(
            f"{ind}{out} = {f_atom} ^ (({f_atom} ^ {t_atom}) & {m})")
        return out

    def ge(self, a: str, b: str, width: int, lines: list[str],
           ind: str) -> str:
        """Per-lane unsigned ``a >= b`` flag."""
        t = self.temp()
        lines.append(f"{ind}{t} = ((({a} | {self.repl(1 << width)}) - {b}) "
                     f">> {width}) & {self.lsb}")
        return t

    def lane_loop(self, lines: list[str], ind: str) -> str:
        """Open a ``for`` over lanes; returns the shift-amount variable."""
        lines.append(f"{ind}for _i in range({self.lanes}):")
        lines.append(f"{ind}    _s = _i * {self.stride}")
        return "_s"

    # -- per-lane helper functions (slow-path ops) -------------------------

    def helper(self, name: str, build: Callable[[], str]) -> str:
        if name not in self.helpers:
            self.helpers[name] = build()
        return name

    def _mul_helper(self, width: int) -> str:
        name = f"_mul{width}"
        m = hex(mask(width))

        def build() -> str:
            return "\n".join([
                f"def {name}(a, b):",
                "    r = 0",
                f"    for i in range({self.lanes}):",
                f"        s = i * {self.stride}",
                f"        r |= ((((a >> s) & {m}) * ((b >> s) & {m}))"
                f" & {m}) << s",
                "    return r",
            ])
        return self.helper(name, build)

    def _shift_helper(self, op: str, width: int, b_width: int) -> str:
        kind = {"<<": "shl", ">>": "shr"}[op]
        name = f"_{kind}{width}_{b_width}"
        m, mb = hex(mask(width)), hex(mask(b_width))
        apply = (f"(((av << bv) & {m}) << s)" if op == "<<"
                 else "((av >> bv) << s)")

        def build() -> str:
            return "\n".join([
                f"def {name}(a, b):",
                "    r = 0",
                f"    for i in range({self.lanes}):",
                f"        s = i * {self.stride}",
                f"        bv = (b >> s) & {mb}",
                f"        if bv < {width}:",
                f"            av = (a >> s) & {m}",
                f"            r |= {apply}",
                "    return r",
            ])
        return self.helper(name, build)

    def _sra_helper(self, width: int, b_width: int) -> str:
        name = f"_sra{width}_{b_width}"
        m, mb = hex(mask(width)), hex(mask(b_width))

        def build() -> str:
            return "\n".join([
                f"def {name}(a, b):",
                "    r = 0",
                f"    for i in range({self.lanes}):",
                f"        s = i * {self.stride}",
                f"        av = (a >> s) & {m}",
                f"        bv = (b >> s) & {mb}",
                f"        if av & {hex(1 << (width - 1))}:",
                f"            av -= {hex(1 << width)}",
                f"        r |= ((av >> (bv if bv < {width} else {width}))"
                f" & {m}) << s",
                "    return r",
            ])
        return self.helper(name, build)

    def _rxor_helper(self, width: int) -> str:
        name = f"_rxor{width}"
        m = hex(mask(width))

        def build() -> str:
            return "\n".join([
                f"def {name}(a):",
                "    r = 0",
                f"    for i in range({self.lanes}):",
                f"        s = i * {self.stride}",
                f"        r |= (((a >> s) & {m}).bit_count() & 1) << s",
                "    return r",
            ])
        return self.helper(name, build)

    # -- expression emission -----------------------------------------------

    def emit(self, expr: Expr, lines: list[str], ind: str) -> str:
        """Emit statements computing ``expr`` for all lanes; returns the
        atom (temp/const/local) holding the packed result."""
        if isinstance(expr, Const):
            return self.repl(expr.value)
        if isinstance(expr, Ref):
            return self.sym(expr.name)
        if isinstance(expr, UnaryOp):
            return self._emit_unary(expr, lines, ind)
        if isinstance(expr, BinaryOp):
            return self._emit_binary(expr, lines, ind)
        if isinstance(expr, Mux):
            sel = self.emit(expr.sel, lines, ind)
            t = self.emit(expr.if_true, lines, ind)
            f = self.emit(expr.if_false, lines, ind)
            return self.blend(sel, expr.sel.width, t, f, expr.width,
                              lines, ind)
        if isinstance(expr, Slice):
            a = self.emit(expr.a, lines, ind)
            out = self.temp()
            if expr.low == 0:
                lines.append(f"{ind}{out} = {a} & {self.rmask(expr.width)}")
            else:
                lines.append(f"{ind}{out} = ({a} >> {expr.low}) "
                             f"& {self.rmask(expr.width)}")
            return out
        if isinstance(expr, Concat):
            acc = None
            for part in expr.parts:
                p = self.emit(part, lines, ind)
                piece = f"({p} & {self.rmask(part.width)})"
                t = self.temp()
                if acc is None:
                    lines.append(f"{ind}{t} = {piece}")
                else:
                    lines.append(
                        f"{ind}{t} = ({acc} << {part.width}) | {piece}")
                acc = t
            return acc or "0"
        if isinstance(expr, Repl):
            a = self.emit(expr.a, lines, ind)
            piece = f"({a} & {self.rmask(expr.a.width)})"
            acc = None
            for _ in range(expr.times):
                t = self.temp()
                if acc is None:
                    lines.append(f"{ind}{t} = {piece}")
                else:
                    lines.append(
                        f"{ind}{t} = ({acc} << {expr.a.width}) | {piece}")
                acc = t
            return acc or "0"
        raise AssertionError(
            f"unhandled expression node {type(expr).__name__}")

    def _emit_unary(self, expr: UnaryOp, lines: list[str], ind: str) -> str:
        a = self.emit(expr.a, lines, ind)
        width = expr.a.width
        op = expr.op
        if op == "~":
            out = self.temp()
            lines.append(f"{ind}{out} = {a} ^ {self.rmask(width)}")
            return out
        if op == "-":
            out = self.temp()
            lines.append(f"{ind}{out} = ({self.repl(1 << width)} - {a}) "
                         f"& {self.rmask(width)}")
            return out
        if op == "!":
            flag = self.nz(a, width, lines, ind)
            out = self.temp()
            lines.append(f"{ind}{out} = {flag} ^ {self.lsb}")
            return out
        if op == "r|":
            return self.nz(a, width, lines, ind)
        if op == "r&":
            if width == 1:
                return a
            inv = self.temp()
            lines.append(f"{ind}{inv} = {a} ^ {self.rmask(width)}")
            flag = self.nz(inv, width, lines, ind)
            out = self.temp()
            lines.append(f"{ind}{out} = {flag} ^ {self.lsb}")
            return out
        # r^
        if width == 1:
            return a
        out = self.temp()
        lines.append(f"{ind}{out} = {self._rxor_helper(width)}({a})")
        return out

    def _emit_binary(self, expr: BinaryOp, lines: list[str],
                     ind: str) -> str:
        op = expr.op
        width = expr.width
        in_width = expr.a.width
        # Constant shift amounts keep the fast carry-free path; anything
        # data-dependent goes through a per-lane helper.
        if op in ("<<", ">>") and isinstance(expr.b, Const):
            shift = expr.b.value
            a = self.emit(expr.a, lines, ind)
            if shift == 0:
                return a
            out = self.temp()
            if shift >= width:
                lines.append(f"{ind}{out} = 0")
            elif op == "<<":
                lines.append(f"{ind}{out} = ({a} "
                             f"& {self.rmask(width - shift)}) << {shift}")
            else:
                lines.append(f"{ind}{out} = ({a} >> {shift}) "
                             f"& {self.rmask(width - shift)}")
            return out
        a = self.emit(expr.a, lines, ind)
        b = self.emit(expr.b, lines, ind)
        if op in ("&", "|", "^"):
            out = self.temp()
            lines.append(f"{ind}{out} = {a} {op} {b}")
            return out
        if op == "&&":  # 1-bit operands by construction (expr.py)
            out = self.temp()
            lines.append(f"{ind}{out} = {a} & {b}")
            return out
        if op == "||":
            out = self.temp()
            lines.append(f"{ind}{out} = {a} | {b}")
            return out
        if op == "+":
            out = self.temp()
            lines.append(f"{ind}{out} = ({a} + {b}) & {self.rmask(width)}")
            return out
        if op == "-":
            out = self.temp()
            lines.append(f"{ind}{out} = (({a} | {self.repl(1 << width)}) "
                         f"- {b}) & {self.rmask(width)}")
            return out
        if op == "*":
            out = self.temp()
            lines.append(f"{ind}{out} = {self._mul_helper(width)}"
                         f"({a}, {b})")
            return out
        if op in ("<<", ">>"):
            helper = self._shift_helper(op, width, expr.b.width)
            out = self.temp()
            lines.append(f"{ind}{out} = {helper}({a}, {b})")
            return out
        if op == ">>>":
            helper = self._sra_helper(in_width, expr.b.width)
            out = self.temp()
            lines.append(f"{ind}{out} = {helper}({a}, {b})")
            return out
        if op == "==":
            diff = self.temp()
            lines.append(f"{ind}{diff} = {a} ^ {b}")
            flag = self.nz(diff, in_width, lines, ind)
            out = self.temp()
            lines.append(f"{ind}{out} = {flag} ^ {self.lsb}")
            return out
        if op == "!=":
            diff = self.temp()
            lines.append(f"{ind}{diff} = {a} ^ {b}")
            return self.nz(diff, in_width, lines, ind)
        if op in _SIGNED_CMP:
            sign = self.repl(1 << (in_width - 1))
            sa, sb = self.temp(), self.temp()
            lines.append(f"{ind}{sa} = {a} ^ {sign}")
            lines.append(f"{ind}{sb} = {b} ^ {sign}")
            a, b = sa, sb
            op = _SIGNED_CMP[op]
        if op == ">=":
            return self.ge(a, b, in_width, lines, ind)
        if op == "<=":
            return self.ge(b, a, in_width, lines, ind)
        if op == "<":
            flag = self.ge(a, b, in_width, lines, ind)
            out = self.temp()
            lines.append(f"{ind}{out} = {flag} ^ {self.lsb}")
            return out
        if op == ">":
            flag = self.ge(b, a, in_width, lines, ind)
            out = self.temp()
            lines.append(f"{ind}{out} = {flag} ^ {self.lsb}")
            return out
        raise AssertionError(f"unhandled binary op {op!r}")

    # -- kernel body fragments ---------------------------------------------

    def emit_async_reads(self, lines: list[str], ind: str) -> None:
        """Combinational read ports: per-lane gather (addresses differ
        across lanes), same memory/port order as the scalar tiers."""
        for memory in self.plan.memories:
            for port in memory.read_ports:
                if port.sync:
                    continue
                addr = self.emit(port.addr, lines, ind)
                out = self.store(port.name)
                lines.append(f"{ind}{out} = 0")
                sh = self.lane_loop(lines, ind)
                inner = ind + "    "
                lines.append(f"{inner}_a = ({addr} >> {sh}) "
                             f"& {hex(mask(port.addr.width))}")
                lines.append(
                    f"{inner}if _a < {memory.depth}:")
                lines.append(f"{inner}    {out} |= "
                             f"{self.mem(memory.name)}[_i][_a] << {sh}")

    def emit_settle(self, lines: list[str], ind: str) -> None:
        self.emit_async_reads(lines, ind)
        for name, expr in self.plan.assigns:
            atom = self.emit(expr, lines, ind)
            lines.append(f"{ind}{self.store(name)} = {atom}")
        self.emit_async_reads(lines, ind)

    def emit_edge(self, lines: list[str], ind: str,
                  active: tuple[str, ...]) -> None:
        """Sample-and-commit for one edge, lane-parallel.

        Group ordering matches the scalar tiers exactly — register
        samples, write-port samples, sync-read samples (read-before-
        write), then the three commit groups — so cross-checking a lane
        against a scalar run is bit-exact.
        """
        reg_commits: list[tuple[str, str]] = []
        for domain in active:
            for reg_name in self.plan.regs_by_domain.get(domain, ()):
                reg = self.plan.regs[reg_name]
                if reg.next is None and reg.reset is None:
                    continue
                value = self.sym(reg_name)
                if reg.next is not None:
                    nxt = self.emit(reg.next, lines, ind)
                    if reg.next.width != reg.width:
                        masked = self.temp()
                        lines.append(f"{ind}{masked} = {nxt} "
                                     f"& {self.rmask(reg.width)}")
                        nxt = masked
                else:
                    nxt = value
                if reg.reset is not None:
                    rv = self.repl(truncate(reg.reset_value, reg.width))
                    rst = self.emit(reg.reset, lines, ind)
                    nxt = self.blend(rst, reg.reset.width, rv, nxt,
                                     reg.width, lines, ind)
                if reg.enable is not None:
                    en = self.emit(reg.enable, lines, ind)
                    sample = self.blend(en, reg.enable.width, nxt, value,
                                        reg.width, lines, ind)
                else:
                    sample, copy = self.snap(nxt)
                    if copy is not None:
                        lines.append(f"{ind}{copy}")
                self.stores[reg_name] = None
                reg_commits.append((value, sample))

        write_commits: list[tuple] = []
        read_commits: list[tuple[str, str]] = []
        for domain in active:
            for kind, memory, port in self.plan.port_plans.get(domain, ()):
                if kind == "w":
                    en = self.emit(port.enable, lines, ind)
                    addr = self.emit(port.addr, lines, ind)
                    data = self.emit(port.data, lines, ind)
                    write_commits.append(
                        (self.mem(memory.name),
                         self.snap_now(en, lines, ind),
                         port.enable.width,
                         self.snap_now(addr, lines, ind), port.addr.width,
                         self.snap_now(data, lines, ind),
                         memory.width, memory.depth))
                else:
                    out = self.store(port.name)
                    en = (self.emit(port.enable, lines, ind)
                          if port.enable is not None else None)
                    addr = self.emit(port.addr, lines, ind)
                    sample = self.temp()
                    lines.append(f"{ind}{sample} = {out}")
                    sh = self.lane_loop(lines, ind)
                    inner = ind + "    "
                    if en is not None:
                        lines.append(f"{inner}if ({en} >> {sh}) "
                                     f"& {hex(mask(port.enable.width))}:")
                        inner += "    "
                    lines.append(f"{inner}_a = ({addr} >> {sh}) "
                                 f"& {hex(mask(port.addr.width))}")
                    lines.append(
                        f"{inner}_v = {self.mem(memory.name)}[_i][_a] "
                        f"if _a < {memory.depth} else 0")
                    lines.append(
                        f"{inner}{sample} = ({sample} "
                        f"& ~({hex(mask(memory.width))} << {sh})) "
                        f"| (_v << {sh})")
                    read_commits.append((out, sample))

        for value, sample in reg_commits:
            lines.append(f"{ind}{value} = {sample}")
        for (mem_local, en, en_w, addr, addr_w, data,
             mem_w, depth) in write_commits:
            sh = self.lane_loop(lines, ind)
            inner = ind + "    "
            lines.append(f"{inner}if ({en} >> {sh}) & {hex(mask(en_w))}:")
            lines.append(f"{inner}    _a = ({addr} >> {sh}) "
                         f"& {hex(mask(addr_w))}")
            lines.append(f"{inner}    if _a < {depth}:")
            lines.append(f"{inner}        {mem_local}[_i][_a] = "
                         f"({data} >> {sh}) & {hex(mask(mem_w))}")
        for out, sample in read_commits:
            lines.append(f"{ind}{out} = {sample}")

    def snap_now(self, atom: str, lines: list[str], ind: str) -> str:
        atom, copy = self.snap(atom)
        if copy is not None:
            lines.append(f"{ind}{copy}")
        return atom

    # -- kernel module assembly --------------------------------------------

    def module_source(self, name: str, params: str, body: list[str],
                      loop: bool, prologue: tuple[str, ...] = (),
                      epilogue: tuple[str, ...] = ()) -> str:
        """A self-contained module: hoisted lane constants, per-lane
        helper functions, then the kernel wrapped in loads/stores.
        ``prologue``/``epilogue`` bracket the function body the same way
        the scalar ``_kernel_source`` does (capture kernels only)."""
        lines: list[str] = []
        for value, const_name in self.consts.items():
            lines.append(f"{const_name} = {hex(value)}")
        for helper_source in self.helpers.values():
            lines.append(helper_source)
        lines.append(f"def {name}({params}):")
        lines.extend(prologue)
        for mem_name, local in self.mem_of.items():
            lines.append(f"    {local} = mems[{mem_name!r}]")
        for sig_name, local in self.locals_of.items():
            lines.append(f"    {local} = e[{sig_name!r}]")
        if loop:
            lines.append("    for _ in range(n):")
            lines.extend(body if body else ["        pass"])
        else:
            lines.extend(body if body else ["    pass"])
        for sig_name in self.stores:
            lines.append(f"    e[{sig_name!r}] = {self.locals_of[sig_name]}")
        lines.extend(epilogue)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# batch plans
# ---------------------------------------------------------------------------

class BatchPlan:
    """K-lane kernels of one :class:`CompiledPlan`.

    Reached through :meth:`CompiledPlan.batch_plan`, so batch kernels
    share the plan's fingerprint-keyed memory cache and disk store
    (source keys ``b<K>:settle``, ``b<K>:tick:<domains>``, ...).
    """

    def __init__(self, plan: CompiledPlan, lanes: int):
        if lanes < 1:
            raise SimulationError(
                f"batch lane count must be positive, got {lanes}")
        self.plan = plan
        self.lanes = lanes
        self.stride = _plan_stride(plan)
        self._tick_kernels: dict[tuple[str, ...], Callable] = {}
        self._run_kernels: dict[tuple[str, ...], Callable] = {}
        self._capture_kernels: dict[str, Callable] = {}
        self.settle: Callable = plan.kernel_from_source(
            f"b{lanes}:settle", "_settle",
            lambda: self._source("_settle", "e, mems", None, loop=False))

    def _source(self, name: str, params: str,
                active: Optional[tuple[str, ...]], loop: bool) -> str:
        em = _BatchEmitter(self.plan, self.lanes, self.stride)
        body: list[str] = []
        ind = "        " if loop else "    "
        em.emit_settle(body, ind)
        if active is not None:
            em.emit_edge(body, ind, active)
        return em.module_source(name, params, body, loop)

    def tick_kernel(self, active: tuple[str, ...]) -> Callable:
        kernel = self._tick_kernels.get(active)
        if kernel is None:
            kernel = self.plan.kernel_from_source(
                f"b{self.lanes}:tick:" + "+".join(active), "_tick",
                lambda: self._source("_tick", "e, mems", active,
                                     loop=False))
            self._tick_kernels[active] = kernel
        return kernel

    def run_kernel(self, active: tuple[str, ...]) -> Callable:
        kernel = self._run_kernels.get(active)
        if kernel is None:
            kernel = self.plan.kernel_from_source(
                f"b{self.lanes}:run:" + "+".join(active), "_run",
                lambda: self._source("_run", "e, mems, n", active,
                                     loop=True))
            self._run_kernels[active] = kernel
        return kernel

    def capture_run_kernel(self, active: tuple[str, ...],
                           signals: tuple[str, ...],
                           bounded: bool) -> Callable:
        """The batched twin of :meth:`CompiledPlan.capture_run_kernel`:
        each ring row stores the *packed* K-lane integers, so one row
        samples all lanes at once (decoded by ``BatchTrace``)."""
        key = (f"b{self.lanes}:crun:" + "+".join(active)
               + (":ring:" if bounded else ":grow:") + ",".join(signals))
        kernel = self._capture_kernels.get(key)
        if kernel is None:
            def build() -> str:
                em = _BatchEmitter(self.plan, self.lanes, self.stride)
                body: list[str] = []
                em.emit_settle(body, "        ")
                body.extend(_capture_body_lines(
                    em.sym, signals, bounded, "        "))
                em.emit_edge(body, "        ", active)
                body.append("        cyc += 1")
                prologue = ("    _rl = len(ring)",) if bounded else ()
                return em.module_source(
                    "_crun", CAPTURE_PARAMS, body, loop=True,
                    prologue=prologue, epilogue=CAPTURE_EPILOGUE)
            kernel = self.plan.kernel_from_source(key, "_crun", build)
            self._capture_kernels[key] = kernel
        return kernel


# ---------------------------------------------------------------------------
# the batched simulator
# ---------------------------------------------------------------------------

class BatchSimulator:
    """Advances K independent runs of one netlist per kernel tick.

    The clock schedule (periods, phases, gating) is shared by all lanes;
    stimuli, state, and memories are per-lane. There are no hooks and no
    engine choice — batch always runs generated kernels; anything that
    needs per-edge observability belongs on a scalar simulator.

    Lanes interoperate with :class:`~repro.rtl.simulator.Simulator`
    snapshots in both directions: :meth:`extract_lane` produces a dict
    ``Simulator.restore`` accepts, and :meth:`inject_lane` loads one.
    """

    def __init__(self, netlist: Netlist, lanes: int,
                 clocks: Optional[dict[str, int]] = None):
        plan = compiled_plan_for(netlist)
        self._bplan = plan.batch_plan(lanes)
        self._plan = plan
        self.netlist = netlist
        self.lanes = lanes
        self.stride = self._bplan.stride
        clocks = dict(clocks or {})
        self.domains: dict[str, ClockDomain] = {}
        for domain in sorted(netlist.clock_domains() | set(clocks)):
            self.domains[domain] = ClockDomain(
                name=domain, period_ps=clocks.get(domain, DEFAULT_PERIOD_PS))
        self.time_ps = 0

        self.env: dict[str, int] = {}
        for name in netlist.signals:
            self.env[name] = 0
        for name, reg in netlist.registers.items():
            self.env[name] = _replicate(
                truncate(reg.init, reg.width), lanes, self.stride)
        self.memories: dict[str, list[list[int]]] = {}
        for name, memory in netlist.memories.items():
            words = [0] * memory.depth
            for addr, value in memory.init.items():
                words[addr] = truncate(value, memory.width)
            self.memories[name] = [list(words) for _ in range(lanes)]

        registry = get_registry()
        registry.gauge("sim.batch_lanes").set(lanes)
        self._m_runs = registry.counter("sim.batch.runs")
        self._m_lane_ticks = registry.counter("sim.batch.lane_ticks")
        self._dirty = True

    # -- lane addressing ---------------------------------------------------

    def _check_lane(self, lane: int) -> None:
        if not 0 <= lane < self.lanes:
            raise SimulationError(
                f"lane {lane} out of range 0..{self.lanes - 1}")

    def _get_lane(self, name: str, lane: int) -> int:
        return (self.env[name] >> (lane * self.stride)) \
            & mask(self.netlist.width(name))

    def _set_lane(self, name: str, lane: int, value: int) -> None:
        width = self.netlist.width(name)
        shift = lane * self.stride
        self.env[name] = ((self.env[name] & ~(mask(width) << shift))
                          | (truncate(value, width) << shift))

    # -- value access ------------------------------------------------------

    def poke(self, name: str, value: int,
             lane: Optional[int] = None) -> None:
        """Drive a top-level input on one lane, or on all lanes."""
        if name not in self.netlist.inputs:
            raise SimulationError(
                f"{name!r} is not a top-level input; use force() for state")
        width = self.netlist.width(name)
        if lane is None:
            self.env[name] = _replicate(
                truncate(value, width), self.lanes, self.stride)
        else:
            self._check_lane(lane)
            self._set_lane(name, lane, value)
        self._dirty = True

    def peek(self, name: str, lane: Optional[int] = None):
        """A signal's settled value on one lane, or a list across all."""
        if name not in self.env:
            raise UnknownSignalError(f"unknown signal {name!r}")
        self._settle()
        if lane is None:
            return [self._get_lane(name, i) for i in range(self.lanes)]
        self._check_lane(lane)
        return self._get_lane(name, lane)

    def force(self, name: str, value: int,
              lane: Optional[int] = None) -> None:
        """Overwrite a register (or sync read-port latch) value."""
        if name not in self.netlist.registers \
                and name not in self.netlist.sync_read_outputs():
            raise SimulationError(
                f"{name!r} is not a register; poke() inputs, "
                f"write_memory() memories")
        width = self.netlist.width(name)
        if lane is None:
            self.env[name] = _replicate(
                truncate(value, width), self.lanes, self.stride)
        else:
            self._check_lane(lane)
            self._set_lane(name, lane, value)
        self._dirty = True

    def read_memory(self, name: str, addr: int, lane: int) -> int:
        self._check_lane(lane)
        self._check_addr(name, addr)
        return self.memories[name][lane][addr]

    def write_memory(self, name: str, addr: int, value: int,
                     lane: Optional[int] = None) -> None:
        self._check_addr(name, addr)
        value = truncate(value, self.netlist.memories[name].width)
        if lane is None:
            for words in self.memories[name]:
                words[addr] = value
        else:
            self._check_lane(lane)
            self.memories[name][lane][addr] = value
        self._dirty = True

    def _check_addr(self, name: str, addr: int) -> None:
        memory = self.netlist.memories.get(name)
        if memory is None:
            raise UnknownSignalError(f"unknown memory {name!r}")
        if not 0 <= addr < memory.depth:
            raise SimulationError(
                f"memory {name!r}: address {addr} out of range "
                f"0..{memory.depth - 1}")

    # -- clocking ----------------------------------------------------------

    def set_clock_gate(self, domain: str, gated: bool) -> None:
        """Gate a domain — for *all* lanes; lanes share one schedule."""
        self._domain(domain).gated = gated

    def is_gated(self, domain: str) -> bool:
        return self._domain(domain).gated

    def cycles(self, domain: str = "clk") -> int:
        return self._domain(domain).cycles

    def _domain(self, name: str) -> ClockDomain:
        try:
            return self.domains[name]
        except KeyError:
            raise SimulationError(f"unknown clock domain {name!r}") from None

    # -- stepping ----------------------------------------------------------

    def _settle(self) -> None:
        if self._dirty:
            self._bplan.settle(self.env, self.memories)
            self._dirty = False

    def step(self, cycles: int = 1, domain: Optional[str] = None) -> None:
        """Advance all lanes; same stepping semantics as the scalar
        :meth:`Simulator.step`, minus hooks."""
        if cycles < 0:
            raise SimulationError("cannot step a negative number of cycles")
        self._m_runs.inc()
        self._m_lane_ticks.inc(cycles * self.lanes)
        if domain is not None:
            dom = self._domain(domain)
            if cycles and not dom.gated:
                self._run((domain,), cycles, advance_time=False)
                return
            for _ in range(cycles):
                self._tick(frozenset({domain}))
            return
        if cycles and not any(d.gated for d in self.domains.values()) \
                and len({(d.period_ps, d.next_edge_ps)
                         for d in self.domains.values()}) == 1:
            self._run(tuple(self.domains), cycles, advance_time=True)
            return
        for _ in range(cycles):
            self._advance_one_event()

    def step_captured(self, cycles: int, capture,
                      domain: Optional[str] = None) -> None:
        """Advance all lanes like :meth:`step` while streaming packed
        samples of ``capture.signals`` into its ring (the capture side
        of :class:`~repro.rtl.waveform.BatchTrace`)."""
        if cycles < 0:
            raise SimulationError("cannot step a negative number of cycles")
        self._domain(capture.domain)
        self._m_runs.inc()
        self._m_lane_ticks.inc(cycles * self.lanes)
        if domain is not None:
            dom = self._domain(domain)
            if domain != capture.domain:
                raise SimulationError(
                    f"capture samples domain {capture.domain!r}; "
                    f"cannot step domain {domain!r} alone")
            if cycles and not dom.gated:
                self._captured_run((domain,), cycles, capture,
                                   advance_time=False)
                return
            for _ in range(cycles):
                self._capture_event(frozenset({domain}), capture)
            return
        if cycles and not any(d.gated for d in self.domains.values()) \
                and len({(d.period_ps, d.next_edge_ps)
                         for d in self.domains.values()}) == 1:
            self._captured_run(tuple(self.domains), cycles, capture,
                               advance_time=True)
            return
        for _ in range(cycles):
            self._advance_one_event(capture)

    def run_to_time(self, time_ps: int) -> None:
        if not self.domains:
            raise SimulationError(
                "design has no clock domains; nothing can advance time")
        while min(d.next_edge_ps for d in self.domains.values()) <= time_ps:
            self._advance_one_event()

    def _run(self, active: tuple[str, ...], cycles: int,
             advance_time: bool) -> None:
        self._bplan.run_kernel(tuple(sorted(active)))(
            self.env, self.memories, cycles)
        for name in active:
            dom = self.domains[name]
            dom.cycles += cycles
            dom.edges_seen += cycles
            if advance_time:
                dom.next_edge_ps += cycles * dom.period_ps
        if advance_time:
            dom = next(iter(self.domains.values()))
            self.time_ps = dom.next_edge_ps - dom.period_ps
        self._dirty = True

    def _captured_run(self, active: tuple[str, ...], cycles: int,
                      capture, advance_time: bool) -> None:
        kernel = self._bplan.capture_run_kernel(
            tuple(sorted(active)), capture.signals, capture.bounded)
        (capture.head, capture.total, capture.phase,
         capture.cycle) = kernel(
            self.env, self.memories, cycles, capture.ring, capture.head,
            capture.total, capture.stride, capture.phase, capture.cycle)
        for name in active:
            dom = self.domains[name]
            dom.cycles += cycles
            dom.edges_seen += cycles
            if advance_time:
                dom.next_edge_ps += cycles * dom.period_ps
        if advance_time:
            dom = next(iter(self.domains.values()))
            self.time_ps = dom.next_edge_ps - dom.period_ps
        self._dirty = True

    def _capture_event(self, ticking: frozenset[str], capture) -> None:
        dom = self.domains[capture.domain]
        if capture.domain in ticking and not dom.gated:
            self._settle()
            capture.sample_scalar(self.env)
        self._tick(ticking)

    def _advance_one_event(self, capture=None) -> None:
        if not self.domains:
            raise SimulationError(
                "design has no clock domains; nothing can advance time")
        event_time = min(d.next_edge_ps for d in self.domains.values())
        ticking = frozenset(
            name for name, d in self.domains.items()
            if d.next_edge_ps == event_time)
        self.time_ps = event_time
        for name in ticking:
            dom = self.domains[name]
            dom.next_edge_ps += dom.period_ps
        if capture is not None:
            self._capture_event(ticking, capture)
        else:
            self._tick(ticking)

    def _tick(self, ticking: frozenset[str]) -> None:
        active = []
        for name in sorted(ticking):
            dom = self._domain(name)
            dom.edges_seen += 1
            if not dom.gated:
                active.append(name)
                dom.cycles += 1
        if not active:
            return
        self._bplan.tick_kernel(tuple(active))(self.env, self.memories)
        self._dirty = True

    # -- snapshot / lane interop -------------------------------------------

    def _clock_state(self) -> dict:
        return {
            name: {
                "cycles": d.cycles,
                "edges_seen": d.edges_seen,
                "next_edge_ps": d.next_edge_ps,
                "gated": d.gated,
            }
            for name, d in self.domains.items()}

    def snapshot(self) -> dict:
        """All lanes' architectural state, packed (batch-native)."""
        self._settle()
        sync_outs = list(self.netlist.sync_read_outputs())
        return {
            "lanes": self.lanes,
            "stride": self.stride,
            "registers": {
                name: self.env[name] for name in self.netlist.registers},
            "memories": {
                name: [list(words) for words in per_lane]
                for name, per_lane in self.memories.items()},
            "inputs": {name: self.env[name] for name in self.netlist.inputs},
            "read_ports": {name: self.env[name] for name in sync_outs},
            "time_ps": self.time_ps,
            "cycles": {name: d.cycles for name, d in self.domains.items()},
            "clocks": self._clock_state(),
        }

    def restore(self, snapshot: dict) -> None:
        if snapshot.get("lanes") != self.lanes \
                or snapshot.get("stride") != self.stride:
            raise SimulationError(
                f"snapshot shape {snapshot.get('lanes')}x"
                f"{snapshot.get('stride')} does not match this simulator "
                f"({self.lanes}x{self.stride})")
        for name, value in snapshot["registers"].items():
            if name not in self.netlist.registers:
                raise SimulationError(
                    f"snapshot register {name!r} not in design")
            self.env[name] = value
        for name, per_lane in snapshot["memories"].items():
            if name not in self.memories:
                raise SimulationError(
                    f"snapshot memory {name!r} not in design")
            for lane, words in enumerate(per_lane):
                self.memories[name][lane][:] = words
        for name, value in snapshot["inputs"].items():
            self.env[name] = value
        for name, value in snapshot.get("read_ports", {}).items():
            if name in self.env:
                self.env[name] = value
        self.time_ps = snapshot["time_ps"]
        for name, state in snapshot["clocks"].items():
            if name not in self.domains:
                continue
            dom = self.domains[name]
            dom.cycles = state["cycles"]
            dom.edges_seen = state["edges_seen"]
            dom.next_edge_ps = state["next_edge_ps"]
            dom.gated = state["gated"]
        self._dirty = True

    def extract_lane(self, lane: int) -> dict:
        """One lane's state as a *scalar* snapshot — the exact dict
        :meth:`Simulator.snapshot` produces, so ``Simulator.restore``
        can resume this run on a scalar simulator."""
        self._check_lane(lane)
        self._settle()
        return {
            "registers": {
                name: self._get_lane(name, lane)
                for name in self.netlist.registers},
            "memories": {
                name: list(per_lane[lane])
                for name, per_lane in self.memories.items()},
            "inputs": {
                name: self._get_lane(name, lane)
                for name in self.netlist.inputs},
            "read_ports": {
                name: self._get_lane(name, lane)
                for name in self.netlist.sync_read_outputs()},
            "time_ps": self.time_ps,
            "cycles": {name: d.cycles for name, d in self.domains.items()},
            "clocks": self._clock_state(),
        }

    def inject_lane(self, lane: int, snapshot: dict) -> None:
        """Load a scalar snapshot into one lane. Per-lane state only:
        clock bookkeeping is shared and left untouched (all lanes must
        already follow the same schedule)."""
        self._check_lane(lane)
        for name, value in snapshot["registers"].items():
            if name not in self.netlist.registers:
                raise SimulationError(
                    f"snapshot register {name!r} not in design")
            self._set_lane(name, lane, value)
        for name, words in snapshot["memories"].items():
            if name not in self.memories:
                raise SimulationError(
                    f"snapshot memory {name!r} not in design")
            self.memories[name][lane][:] = words
        for name, value in snapshot["inputs"].items():
            if name in self.netlist.inputs:
                self._set_lane(name, lane, value)
        for name, value in snapshot.get("read_ports", {}).items():
            if name in self.env:
                self._set_lane(name, lane, value)
        self._dirty = True
