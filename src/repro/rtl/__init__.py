"""RTL intermediate representation and cycle-accurate simulator.

This package is the hardware-description substrate for the Zoomie
reproduction. Designs are built as :class:`~repro.rtl.module.Module`
hierarchies using :class:`~repro.rtl.builder.ModuleBuilder`, elaborated to a
flat :class:`~repro.rtl.netlist.Netlist`, and executed by
:class:`~repro.rtl.simulator.Simulator` — a multi-clock-domain, gateable
cycle simulator (clock gating is what lets the Debug Controller pause a
module under test).
"""

from .expr import (
    BinaryOp,
    Concat,
    Const,
    Expr,
    Mux,
    Ref,
    Repl,
    Slice,
    UnaryOp,
    cat,
    mux,
    reduce_and,
    reduce_or,
    reduce_xor,
)
from .module import Instance, Memory, Module, Port, Register
from .builder import ModuleBuilder
from .flatten import elaborate
from .netlist import Netlist
from ._codegen import clear_plan_cache, plan_cache_stats
from .mutate import (
    OPERATORS,
    Divergence,
    Mutant,
    MutationSite,
    apply_mutation,
    default_stimulus,
    differential_probe,
    enumerate_sites,
    generate_mutants,
)
from .plan_store import set_plan_cache_dir
from .batch import BatchSimulator
from .simulator import (
    ENGINE_CLOSURES,
    ENGINE_FUSED,
    ENGINE_INTERPRETED,
    ENGINES,
    Simulator,
)
from .waveform import (
    BatchTrace,
    StreamingTrace,
    Trace,
    TraceView,
    write_vcd,
)
from .detectors import (
    Detector,
    Finding,
    PatternDetector,
    StuckSignalDetector,
    render_timeline,
    run_detectors,
    write_during_stall,
)

__all__ = [
    "ENGINE_CLOSURES",
    "ENGINE_FUSED",
    "ENGINE_INTERPRETED",
    "ENGINES",
    "BatchSimulator",
    "BatchTrace",
    "BinaryOp",
    "Concat",
    "Const",
    "Detector",
    "Divergence",
    "Expr",
    "Finding",
    "Instance",
    "Memory",
    "Module",
    "ModuleBuilder",
    "Mutant",
    "MutationSite",
    "Mux",
    "Netlist",
    "OPERATORS",
    "PatternDetector",
    "Port",
    "Ref",
    "Register",
    "Repl",
    "Simulator",
    "Slice",
    "StreamingTrace",
    "StuckSignalDetector",
    "Trace",
    "TraceView",
    "UnaryOp",
    "apply_mutation",
    "cat",
    "clear_plan_cache",
    "default_stimulus",
    "differential_probe",
    "elaborate",
    "enumerate_sites",
    "generate_mutants",
    "mux",
    "plan_cache_stats",
    "reduce_and",
    "reduce_or",
    "reduce_xor",
    "render_timeline",
    "run_detectors",
    "set_plan_cache_dir",
    "write_during_stall",
    "write_vcd",
]
