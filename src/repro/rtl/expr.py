"""Typed combinational expression AST.

Expressions are immutable trees over named signals. Every node carries an
explicit bit width; arithmetic is unsigned two's complement truncated to the
node width, matching the synthesizable Verilog semantics the paper's designs
rely on. Python operators are overloaded so design code reads naturally::

    ack = (tlb_sel_r == i) & (req_id == i)

Evaluation takes an environment mapping signal names to ints and is used by
the RTL simulator, the SVA software evaluator, and the bounded model checker.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .._bits import bits as _slice_bits
from .._bits import mask, replicate, to_signed, truncate
from ..errors import WidthError

# Operators where both operands must share a width.
_SAME_WIDTH_BINOPS = frozenset({
    "+", "-", "*", "&", "|", "^",
    "==", "!=", "<", ">", "<=", ">=",
    "<s", ">s", "<=s", ">=s",
})
_SHIFT_BINOPS = frozenset({"<<", ">>", ">>>"})
_BOOL_BINOPS = frozenset({"&&", "||"})
_COMPARE_BINOPS = frozenset({
    "==", "!=", "<", ">", "<=", ">=", "<s", ">s", "<=s", ">=s",
})


class Expr:
    """Base class for all expression nodes.

    Subclasses define ``width`` (int), :meth:`eval`, and
    :meth:`children`. The base class provides operator overloading, free
    signal collection, and structural substitution.
    """

    width: int

    # -- interface -------------------------------------------------------

    def eval(self, env: dict[str, int]) -> int:
        """Evaluate against ``env`` (signal name -> unsigned value)."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    def rebuild(self, children: tuple["Expr", ...]) -> "Expr":
        """Recreate this node with replaced children."""
        raise NotImplementedError

    # -- generic tree utilities -------------------------------------------

    def signals(self) -> set[str]:
        """Names of all signals referenced anywhere in the tree."""
        out: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Ref):
                out.add(node.name)
            stack.extend(node.children())
        return out

    def substitute(self, fn: Callable[["Ref"], "Expr | None"]) -> "Expr":
        """Return a copy with each :class:`Ref` replaced via ``fn``.

        ``fn`` returns the replacement expression or ``None`` to keep the
        reference untouched. Used by hierarchy flattening to rename signals
        into their elaborated paths.
        """
        if isinstance(self, Ref):
            replacement = fn(self)
            return self if replacement is None else replacement
        kids = self.children()
        new_kids = tuple(kid.substitute(fn) for kid in kids)
        if all(a is b for a, b in zip(kids, new_kids)):
            return self
        return self.rebuild(new_kids)

    def walk(self) -> Iterator["Expr"]:
        """Yield every node in the tree (pre-order)."""
        stack: list[Expr] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children())

    def node_count(self) -> int:
        """Number of AST nodes; a proxy for logic size in cost models."""
        return sum(1 for _ in self.walk())

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other) -> "Expr":
        return BinaryOp("+", self, _coerce(other, self.width))

    def __sub__(self, other) -> "Expr":
        return BinaryOp("-", self, _coerce(other, self.width))

    def __mul__(self, other) -> "Expr":
        return BinaryOp("*", self, _coerce(other, self.width))

    def __and__(self, other) -> "Expr":
        return BinaryOp("&", self, _coerce(other, self.width))

    def __or__(self, other) -> "Expr":
        return BinaryOp("|", self, _coerce(other, self.width))

    def __xor__(self, other) -> "Expr":
        return BinaryOp("^", self, _coerce(other, self.width))

    def __lshift__(self, other) -> "Expr":
        return BinaryOp("<<", self, _coerce_shift(other))

    def __rshift__(self, other) -> "Expr":
        return BinaryOp(">>", self, _coerce_shift(other))

    def __invert__(self) -> "Expr":
        return UnaryOp("~", self)

    def eq(self, other) -> "Expr":
        return BinaryOp("==", self, _coerce(other, self.width))

    def ne(self, other) -> "Expr":
        return BinaryOp("!=", self, _coerce(other, self.width))

    def lt(self, other) -> "Expr":
        return BinaryOp("<", self, _coerce(other, self.width))

    def gt(self, other) -> "Expr":
        return BinaryOp(">", self, _coerce(other, self.width))

    def le(self, other) -> "Expr":
        return BinaryOp("<=", self, _coerce(other, self.width))

    def ge(self, other) -> "Expr":
        return BinaryOp(">=", self, _coerce(other, self.width))

    def slt(self, other) -> "Expr":
        return BinaryOp("<s", self, _coerce(other, self.width))

    def sgt(self, other) -> "Expr":
        return BinaryOp(">s", self, _coerce(other, self.width))

    def logical_and(self, other) -> "Expr":
        return BinaryOp("&&", self, _coerce(other, 1))

    def logical_or(self, other) -> "Expr":
        return BinaryOp("||", self, _coerce(other, 1))

    def logical_not(self) -> "Expr":
        return UnaryOp("!", self)

    def bit(self, index: int) -> "Expr":
        """Single-bit select ``self[index]``."""
        return Slice(self, index, index)

    def __getitem__(self, item) -> "Expr":
        if isinstance(item, slice):
            if item.step is not None:
                raise WidthError("strided slices are not supported")
            high, low = item.start, item.stop
            return Slice(self, high, low)
        return Slice(self, item, item)

    def as_bool(self) -> "Expr":
        """Reduce to a 1-bit truth value (``|self`` unless already 1 bit)."""
        return self if self.width == 1 else reduce_or(self)


class Const(Expr):
    """A literal ``width``-bit constant."""

    __slots__ = ("value", "width")

    def __init__(self, value: int, width: int):
        if width <= 0:
            raise WidthError(f"constant width must be positive, got {width}")
        self.width = width
        self.value = truncate(value, width)

    def eval(self, env: dict[str, int]) -> int:
        return self.value

    def children(self) -> tuple[Expr, ...]:
        return ()

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return self

    def __repr__(self) -> str:
        return f"{self.width}'d{self.value}"


class Ref(Expr):
    """A reference to a named signal."""

    __slots__ = ("name", "width")

    def __init__(self, name: str, width: int):
        if width <= 0:
            raise WidthError(f"signal width must be positive, got {width}")
        self.name = name
        self.width = width

    def eval(self, env: dict[str, int]) -> int:
        return env[self.name]

    def children(self) -> tuple[Expr, ...]:
        return ()

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return self

    def __repr__(self) -> str:
        return self.name


class UnaryOp(Expr):
    """Unary operators: ``~`` ``!`` ``-`` and reductions ``&`` ``|`` ``^``."""

    __slots__ = ("op", "a", "width")

    _OPS = frozenset({"~", "!", "-", "r&", "r|", "r^"})

    def __init__(self, op: str, a: Expr):
        if op not in self._OPS:
            raise WidthError(f"unknown unary operator {op!r}")
        self.op = op
        self.a = a
        self.width = a.width if op in ("~", "-") else 1

    def eval(self, env: dict[str, int]) -> int:
        value = self.a.eval(env)
        op = self.op
        if op == "~":
            return value ^ mask(self.a.width)
        if op == "!":
            return 0 if value else 1
        if op == "-":
            return truncate(-value, self.a.width)
        if op == "r&":
            return 1 if value == mask(self.a.width) else 0
        if op == "r|":
            return 1 if value else 0
        # r^
        return value.bit_count() & 1

    def children(self) -> tuple[Expr, ...]:
        return (self.a,)

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return UnaryOp(self.op, children[0])

    def __repr__(self) -> str:
        return f"({self.op}{self.a!r})"


class BinaryOp(Expr):
    """Binary operators over same-width operands (plus shifts/logicals)."""

    __slots__ = ("op", "a", "b", "width")

    def __init__(self, op: str, a: Expr, b: Expr):
        if op in _SAME_WIDTH_BINOPS:
            if a.width != b.width:
                raise WidthError(
                    f"operator {op!r} requires equal widths, "
                    f"got {a.width} and {b.width}")
        elif op in _SHIFT_BINOPS:
            pass  # shift amount width is independent
        elif op in _BOOL_BINOPS:
            if a.width != 1 or b.width != 1:
                raise WidthError(
                    f"operator {op!r} requires 1-bit operands, "
                    f"got {a.width} and {b.width}")
        else:
            raise WidthError(f"unknown binary operator {op!r}")
        self.op = op
        self.a = a
        self.b = b
        if op in _COMPARE_BINOPS or op in _BOOL_BINOPS:
            self.width = 1
        else:
            self.width = a.width

    def eval(self, env: dict[str, int]) -> int:
        op = self.op
        lhs = self.a.eval(env)
        rhs = self.b.eval(env)
        if op == "+":
            return truncate(lhs + rhs, self.width)
        if op == "-":
            return truncate(lhs - rhs, self.width)
        if op == "*":
            return truncate(lhs * rhs, self.width)
        if op == "&":
            return lhs & rhs
        if op == "|":
            return lhs | rhs
        if op == "^":
            return lhs ^ rhs
        if op == "<<":
            return truncate(lhs << rhs, self.width) if rhs < self.width else 0
        if op == ">>":
            return lhs >> rhs if rhs < self.width else 0
        if op == ">>>":
            signed = to_signed(lhs, self.a.width)
            return truncate(signed >> min(rhs, self.a.width), self.width)
        if op == "==":
            return 1 if lhs == rhs else 0
        if op == "!=":
            return 1 if lhs != rhs else 0
        if op == "<":
            return 1 if lhs < rhs else 0
        if op == ">":
            return 1 if lhs > rhs else 0
        if op == "<=":
            return 1 if lhs <= rhs else 0
        if op == ">=":
            return 1 if lhs >= rhs else 0
        if op == "&&":
            return 1 if lhs and rhs else 0
        if op == "||":
            return 1 if lhs or rhs else 0
        width = self.a.width
        if op == "<s":
            return 1 if to_signed(lhs, width) < to_signed(rhs, width) else 0
        if op == ">s":
            return 1 if to_signed(lhs, width) > to_signed(rhs, width) else 0
        if op == "<=s":
            return 1 if to_signed(lhs, width) <= to_signed(rhs, width) else 0
        # >=s
        return 1 if to_signed(lhs, width) >= to_signed(rhs, width) else 0

    def children(self) -> tuple[Expr, ...]:
        return (self.a, self.b)

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return BinaryOp(self.op, children[0], children[1])

    def __repr__(self) -> str:
        return f"({self.a!r} {self.op} {self.b!r})"


class Mux(Expr):
    """2:1 multiplexer: ``sel ? if_true : if_false``."""

    __slots__ = ("sel", "if_true", "if_false", "width")

    def __init__(self, sel: Expr, if_true: Expr, if_false: Expr):
        if if_true.width != if_false.width:
            raise WidthError(
                f"mux arms must share a width, got {if_true.width} "
                f"and {if_false.width}")
        self.sel = sel
        self.if_true = if_true
        self.if_false = if_false
        self.width = if_true.width

    def eval(self, env: dict[str, int]) -> int:
        if self.sel.eval(env):
            return self.if_true.eval(env)
        return self.if_false.eval(env)

    def children(self) -> tuple[Expr, ...]:
        return (self.sel, self.if_true, self.if_false)

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return Mux(children[0], children[1], children[2])

    def __repr__(self) -> str:
        return f"({self.sel!r} ? {self.if_true!r} : {self.if_false!r})"


class Slice(Expr):
    """Inclusive bit slice ``a[high:low]`` (Verilog part-select order)."""

    __slots__ = ("a", "high", "low", "width")

    def __init__(self, a: Expr, high: int, low: int):
        if not 0 <= low <= high < a.width:
            raise WidthError(
                f"slice [{high}:{low}] out of range for width {a.width}")
        self.a = a
        self.high = high
        self.low = low
        self.width = high - low + 1

    def eval(self, env: dict[str, int]) -> int:
        return _slice_bits(self.a.eval(env), self.high, self.low)

    def children(self) -> tuple[Expr, ...]:
        return (self.a,)

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return Slice(children[0], self.high, self.low)

    def __repr__(self) -> str:
        return f"{self.a!r}[{self.high}:{self.low}]"


class Concat(Expr):
    """Concatenation ``{parts[0], parts[1], ...}`` (first part is MSB)."""

    __slots__ = ("parts", "width")

    def __init__(self, parts: tuple[Expr, ...]):
        if not parts:
            raise WidthError("cannot concatenate zero parts")
        self.parts = tuple(parts)
        self.width = sum(p.width for p in parts)

    def eval(self, env: dict[str, int]) -> int:
        out = 0
        for part in self.parts:
            out = (out << part.width) | part.eval(env)
        return out

    def children(self) -> tuple[Expr, ...]:
        return self.parts

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return Concat(children)

    def __repr__(self) -> str:
        return "{" + ", ".join(repr(p) for p in self.parts) + "}"


class Repl(Expr):
    """Replication ``{times{a}}``."""

    __slots__ = ("a", "times", "width")

    def __init__(self, a: Expr, times: int):
        if times <= 0:
            raise WidthError(f"replication count must be positive: {times}")
        self.a = a
        self.times = times
        self.width = a.width * times

    def eval(self, env: dict[str, int]) -> int:
        return replicate(self.a.eval(env), self.a.width, self.times)

    def children(self) -> tuple[Expr, ...]:
        return (self.a,)

    def rebuild(self, children: tuple[Expr, ...]) -> Expr:
        return Repl(children[0], self.times)

    def __repr__(self) -> str:
        return f"{{{self.times}{{{self.a!r}}}}}"


# --------------------------------------------------------------------------
# Convenience constructors
# --------------------------------------------------------------------------

def _coerce(value, width: int) -> Expr:
    """Turn a Python int into a :class:`Const` of the expected width."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), 1 if width <= 0 else width)
    if isinstance(value, int):
        return Const(value, width)
    raise WidthError(f"cannot use {value!r} as an expression")


def _coerce_shift(value) -> Expr:
    """Coerce a shift amount, sizing constants minimally."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value, max(1, value.bit_length()))
    raise WidthError(f"cannot use {value!r} as a shift amount")


def mux(sel: Expr, if_true, if_false) -> Expr:
    """Functional 2:1 mux helper accepting int literals for the arms."""
    if isinstance(if_true, Expr):
        width = if_true.width
    elif isinstance(if_false, Expr):
        width = if_false.width
    else:
        raise WidthError("at least one mux arm must be an expression")
    return Mux(sel.as_bool(), _coerce(if_true, width), _coerce(if_false, width))


def cat(*parts: Expr) -> Expr:
    """Concatenate expressions, first argument most significant."""
    return Concat(tuple(parts))


def reduce_and(a: Expr) -> Expr:
    """AND-reduce to one bit."""
    return UnaryOp("r&", a)


def reduce_or(a: Expr) -> Expr:
    """OR-reduce to one bit."""
    return UnaryOp("r|", a)


def reduce_xor(a: Expr) -> Expr:
    """XOR-reduce (parity) to one bit."""
    return UnaryOp("r^", a)
